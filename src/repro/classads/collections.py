"""Queryable collections of ClassAds.

NeST's access-control framework is "built on top of collections of
ClassAds" (paper, section 5): each ACL entry is an ad, and permission
checks are queries over the collection.  The collection supports
constraint queries (an expression evaluated with each member bound as
``my``) and simple views.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.classads.ast import ClassAd, Expr
from repro.classads.evaluator import EvalContext, evaluate
from repro.classads.parser import parse_expression


class ClassAdCollection:
    """An ordered collection of ClassAds with constraint queries."""

    def __init__(self, ads: Iterable[ClassAd] = ()):
        self._ads: list[ClassAd] = list(ads)

    def __len__(self) -> int:
        return len(self._ads)

    def __iter__(self) -> Iterator[ClassAd]:
        return iter(self._ads)

    def add(self, ad: ClassAd) -> None:
        """Append an ad to the collection."""
        self._ads.append(ad)

    def remove(self, ad: ClassAd) -> bool:
        """Remove ``ad`` by identity; returns True if it was present."""
        for i, member in enumerate(self._ads):
            if member is ad:
                del self._ads[i]
                return True
        return False

    def remove_if(self, predicate: Callable[[ClassAd], bool]) -> int:
        """Remove every ad satisfying ``predicate``; returns count removed."""
        before = len(self._ads)
        self._ads = [a for a in self._ads if not predicate(a)]
        return before - len(self._ads)

    def query(self, constraint: str | Expr, other: ClassAd | None = None) -> list[ClassAd]:
        """All ads for which ``constraint`` evaluates to ``true``.

        The constraint is evaluated with the member ad as ``my`` and an
        optional ``other`` ad bound to the ``other`` scope (so ACL
        queries can reference the requesting client's ad).
        """
        expr = parse_expression(constraint) if isinstance(constraint, str) else constraint
        return [
            ad
            for ad in self._ads
            if evaluate(expr, EvalContext(my=ad, other=other)) is True
        ]

    def first(self, constraint: str | Expr, other: ClassAd | None = None) -> ClassAd | None:
        """First ad matching ``constraint`` or ``None``."""
        matches = self.query(constraint, other=other)
        return matches[0] if matches else None
