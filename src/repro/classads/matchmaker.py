"""ClassAd matchmaking: symmetric Requirements/Rank evaluation.

Matchmaking follows the Condor model [Raman, Livny, Solomon HPDC'98]:
two ads *match* when each ad's ``Requirements`` expression evaluates to
``true`` with the other ad bound to the ``other``/``TARGET`` scope.
Among matching candidates, ``Rank`` orders preference (higher is
better; UNDEFINED/ERROR rank counts as 0.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classads.ast import ClassAd, Error, Undefined, Value
from repro.classads.evaluator import EvalContext, evaluate


def _eval_with_other(ad: ClassAd, name: str, other: ClassAd) -> Value:
    expr = ad.get_expr(name)
    if expr is None:
        from repro.classads.ast import UNDEFINED

        return UNDEFINED
    return evaluate(expr, EvalContext(my=ad, other=other))


def requirements_met(ad: ClassAd, other: ClassAd) -> bool:
    """True iff ``ad.Requirements`` evaluates to ``true`` against ``other``.

    A missing ``Requirements`` attribute counts as ``true`` (an ad with
    no constraints accepts anything); UNDEFINED or ERROR count as no
    match.
    """
    if "requirements" not in ad:
        return True
    value = _eval_with_other(ad, "Requirements", other)
    return value is True


def symmetric_match(left: ClassAd, right: ClassAd) -> bool:
    """True iff both ads' Requirements accept each other."""
    return requirements_met(left, right) and requirements_met(right, left)


def match_rank(ad: ClassAd, other: ClassAd) -> float:
    """Evaluate ``ad.Rank`` against ``other`` as a float (default 0.0)."""
    value = _eval_with_other(ad, "Rank", other)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (Undefined, Error)):
        return 0.0
    return 0.0


@dataclass
class MatchResult:
    """One candidate that matched, with the requester's rank for it."""

    ad: ClassAd
    rank: float


class MatchMaker:
    """Matches a request ad against a pool of candidate ads.

    This is the piece a global scheduling system runs: NeST servers
    publish availability ads (:mod:`repro.nest.advertise`) and a
    request ad from an execution manager is matched against them.
    """

    def __init__(self, candidates: list[ClassAd] | None = None):
        self._candidates: list[ClassAd] = list(candidates or [])

    def add(self, ad: ClassAd) -> None:
        """Add a candidate ad to the pool."""
        self._candidates.append(ad)

    def remove(self, ad: ClassAd) -> None:
        """Remove a candidate ad from the pool (identity-based)."""
        self._candidates = [c for c in self._candidates if c is not ad]

    def __len__(self) -> int:
        return len(self._candidates)

    def matches(self, request: ClassAd) -> list[MatchResult]:
        """All candidates that symmetrically match ``request``.

        Results are sorted by the *request's* rank of the candidate,
        descending, with pool insertion order as the tiebreak.
        """
        out = [
            MatchResult(ad=c, rank=match_rank(request, c))
            for c in self._candidates
            if symmetric_match(request, c)
        ]
        out.sort(key=lambda m: -m.rank)
        return out

    def best_match(self, request: ClassAd) -> ClassAd | None:
        """The highest-ranked matching candidate, or ``None``."""
        results = self.matches(request)
        return results[0].ad if results else None
