"""Value model and expression AST for the ClassAd language.

A ClassAd value is one of:

* ``int`` / ``float`` -- numbers,
* ``str`` -- strings,
* ``bool`` -- booleans,
* :data:`UNDEFINED` -- the "attribute not present" value,
* :data:`ERROR` -- the "evaluation failed" value,
* :class:`ExprList` -- a list of values/expressions,
* :class:`ClassAd` -- a nested record.

Expressions are immutable trees of :class:`Expr` nodes; a
:class:`ClassAd` maps case-insensitive attribute names to expressions.
Evaluation lives in :mod:`repro.classads.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence, Union


class Undefined:
    """The ClassAd UNDEFINED value (singleton :data:`UNDEFINED`)."""

    _instance = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


class Error:
    """The ClassAd ERROR value (singleton :data:`ERROR`)."""

    _instance = None

    def __new__(cls) -> "Error":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "error"

    def __bool__(self) -> bool:
        return False


UNDEFINED = Undefined()
ERROR = Error()

#: A fully-evaluated ClassAd value.
Value = Union[int, float, str, bool, Undefined, Error, "ExprList", "ClassAd"]


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def external_repr(self) -> str:
        """Render this expression in ClassAd text syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.external_repr()}>"


@dataclass(frozen=True)
class Literal(Expr):
    """A literal constant (number, string, boolean, undefined, error)."""

    value: Value

    def external_repr(self) -> str:
        v = self.value
        if isinstance(v, bool):
            return "true" if v else "false"
        if isinstance(v, str):
            escaped = v.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(v, Undefined):
            return "undefined"
        if isinstance(v, Error):
            return "error"
        return repr(v)


@dataclass(frozen=True)
class AttrRef(Expr):
    """Reference to an attribute, optionally scoped.

    ``scope`` is ``None`` for a bare name, or one of ``"my"``,
    ``"other"``, ``"target"``, ``"self"``, ``"parent"`` (case folded).
    ``target`` is an alias for ``other``; ``self`` for ``my``.
    """

    name: str
    scope: str | None = None

    def external_repr(self) -> str:
        if self.scope:
            return f"{self.scope}.{self.name}"
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``-``, ``+``, ``!``, ``~``."""

    op: str
    operand: Expr

    def external_repr(self) -> str:
        return f"{self.op}({self.operand.external_repr()})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator node.

    Supported operators: arithmetic ``+ - * / %``, comparison
    ``< <= > >= == !=``, meta-comparison ``=?= =!=``, logical
    ``&& ||``, bitwise ``& | ^ << >>``.
    """

    op: str
    left: Expr
    right: Expr

    def external_repr(self) -> str:
        return f"({self.left.external_repr()} {self.op} {self.right.external_repr()})"


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional expression ``cond ? then : else``."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def external_repr(self) -> str:
        return (
            f"({self.cond.external_repr()} ? {self.then.external_repr()}"
            f" : {self.otherwise.external_repr()})"
        )


@dataclass(frozen=True)
class FuncCall(Expr):
    """Builtin function call, e.g. ``strcat("a", "b")``."""

    name: str
    args: tuple[Expr, ...]

    def external_repr(self) -> str:
        inner = ", ".join(a.external_repr() for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ListExpr(Expr):
    """List-valued expression ``{ e1, e2, ... }``."""

    items: tuple[Expr, ...]

    def external_repr(self) -> str:
        inner = ", ".join(i.external_repr() for i in self.items)
        return "{" + inner + "}"


@dataclass(frozen=True)
class RecordExpr(Expr):
    """Nested record expression ``[ a = 1; b = 2 ]`` used inside expressions."""

    items: tuple[tuple[str, Expr], ...]

    def external_repr(self) -> str:
        inner = "; ".join(f"{k} = {v.external_repr()}" for k, v in self.items)
        return "[ " + inner + " ]"


@dataclass(frozen=True)
class Subscript(Expr):
    """List subscript ``expr[index]``."""

    base: Expr
    index: Expr

    def external_repr(self) -> str:
        return f"{self.base.external_repr()}[{self.index.external_repr()}]"


@dataclass(frozen=True)
class Select(Expr):
    """Record attribute selection ``expr.attr`` on a non-scope base."""

    base: Expr
    attr: str

    def external_repr(self) -> str:
        return f"{self.base.external_repr()}.{self.attr}"


# ---------------------------------------------------------------------------
# Runtime containers
# ---------------------------------------------------------------------------


class ExprList(Sequence):
    """An evaluated ClassAd list.

    Items may be plain values or unevaluated :class:`Expr` nodes; the
    evaluator resolves them lazily so that ``member()`` and subscripts
    work either way.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable = ()):  # noqa: D107
        self._items = tuple(items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, i):
        return self._items[i]

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExprList):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return "ExprList(" + ", ".join(repr(i) for i in self._items) + ")"


class ClassAd(Mapping):
    """A ClassAd: an ordered, case-insensitive mapping of names to expressions.

    Values assigned through :meth:`__setitem__` may be plain Python
    values (automatically wrapped in :class:`Literal`) or :class:`Expr`
    trees (stored as-is and evaluated on demand through
    :func:`repro.classads.evaluator.evaluate`).
    """

    __slots__ = ("_attrs",)

    def __init__(self, attrs: Mapping[str, object] | Iterable[tuple[str, object]] = ()):
        self._attrs: dict[str, tuple[str, Expr]] = {}
        items = attrs.items() if isinstance(attrs, Mapping) else attrs
        for name, value in items:
            self[name] = value

    # -- mapping interface ------------------------------------------------
    def __getitem__(self, name: str) -> Expr:
        return self._attrs[name.lower()][1]

    def __setitem__(self, name: str, value: object) -> None:
        expr = value if isinstance(value, Expr) else _wrap_value(value)
        self._attrs[name.lower()] = (name, expr)

    def __delitem__(self, name: str) -> None:
        del self._attrs[name.lower()]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return (orig for orig, _ in self._attrs.values())

    def get_expr(self, name: str) -> Expr | None:
        """Return the expression bound to ``name``, or ``None``."""
        entry = self._attrs.get(name.lower())
        return entry[1] if entry else None

    # -- evaluation helpers ------------------------------------------------
    def eval(self, name: str, default: Value = UNDEFINED) -> Value:
        """Evaluate attribute ``name`` in this ad's own scope."""
        from repro.classads.evaluator import EvalContext, evaluate

        expr = self.get_expr(name)
        if expr is None:
            return default
        return evaluate(expr, EvalContext(my=self))

    def copy(self) -> "ClassAd":
        """Shallow copy preserving attribute order and original casing."""
        out = ClassAd()
        out._attrs = dict(self._attrs)
        return out

    def update(self, other: Mapping[str, object]) -> None:
        """Merge ``other``'s attributes into this ad (case-insensitive)."""
        for name in other:
            value = other[name]
            self[name] = value

    # -- rendering ----------------------------------------------------------
    def external_repr(self) -> str:
        """Render in ClassAd text syntax (round-trips through the parser)."""
        inner = "; ".join(
            f"{orig} = {expr.external_repr()}" for orig, expr in self._attrs.values()
        )
        return "[ " + inner + " ]"

    def __repr__(self) -> str:
        return f"ClassAd({self.external_repr()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClassAd):
            return NotImplemented
        return self._attrs == other._attrs

    def __hash__(self) -> int:
        # ClassAds are technically mutable; hash by identity like most
        # container types used as collection members.
        return id(self)


def _wrap_value(value: object) -> Expr:
    """Wrap a plain Python value as an expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, ClassAd):
        return RecordExpr(tuple((k, value.get_expr(k)) for k in value))
    if isinstance(value, ExprList):
        return ListExpr(tuple(_wrap_value(i) for i in value))
    if isinstance(value, (list, tuple)):
        return ListExpr(tuple(_wrap_value(i) for i in value))
    if isinstance(value, (bool, int, float, str, Undefined, Error)):
        return Literal(value)
    raise TypeError(f"cannot store {type(value).__name__} in a ClassAd")
