"""Tokenizer for the ClassAd text syntax."""

from __future__ import annotations

from dataclasses import dataclass


class LexError(ValueError):
    """Raised on malformed ClassAd input."""


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``INT``, ``REAL``, ``STRING``, ``IDENT``, ``OP``,
    or ``EOF``; ``value`` carries the decoded payload and ``pos`` the
    character offset for error messages.
    """

    kind: str
    value: object
    pos: int


# Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "=?=", "=!=",
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "=", "<", ">", "+", "-", "*", "/", "%", "!", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":", ".", "&", "|", "^",
]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("//", i):
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated comment at {i}")
            i = end + 2
            continue
        if ch == '"':
            value, i = _scan_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
            tok, i = _scan_number(text, i)
            tokens.append(tok)
            continue
        if ch in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            tokens.append(Token("IDENT", text[start:i], start))
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", None, n))
    return tokens


def _scan_string(text: str, i: int) -> tuple[str, int]:
    """Scan a double-quoted string starting at ``i``; returns (value, next)."""
    out: list[str] = []
    j = i + 1
    n = len(text)
    while j < n:
        ch = text[j]
        if ch == '"':
            return "".join(out), j + 1
        if ch == "\\":
            if j + 1 >= n:
                break
            esc = text[j + 1]
            mapped = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(esc)
            if mapped is None:
                raise LexError(f"bad escape \\{esc} at {j}")
            out.append(mapped)
            j += 2
            continue
        out.append(ch)
        j += 1
    raise LexError(f"unterminated string at {i}")


def _scan_number(text: str, i: int) -> tuple[Token, int]:
    """Scan an integer or real literal starting at ``i``."""
    start = i
    n = len(text)
    while i < n and text[i] in _DIGITS:
        i += 1
    is_real = False
    if i < n and text[i] == "." and i + 1 < n and text[i + 1] in _DIGITS:
        is_real = True
        i += 1
        while i < n and text[i] in _DIGITS:
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j] in _DIGITS:
            is_real = True
            i = j
            while i < n and text[i] in _DIGITS:
                i += 1
    lexeme = text[start:i]
    if is_real:
        return Token("REAL", float(lexeme), start), i
    return Token("INT", int(lexeme), start), i
