"""Evaluation of ClassAd expressions.

The evaluator implements the ClassAd three-valued semantics:

* referencing a missing attribute yields :data:`UNDEFINED`;
* type-mismatched operations yield :data:`ERROR`;
* ``&&`` and ``||`` are lazy and absorb UNDEFINED where the other
  operand decides the result (``false && undefined == false``);
* the meta-comparison operators ``=?=`` ("is identical to") and
  ``=!=`` never yield UNDEFINED/ERROR.

Circular attribute references evaluate to ERROR rather than recursing
forever, matching the Condor implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.classads.ast import (
    ERROR,
    UNDEFINED,
    AttrRef,
    BinaryOp,
    ClassAd,
    Error,
    Expr,
    ExprList,
    FuncCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    Ternary,
    UnaryOp,
    Undefined,
    Value,
)


@dataclass
class EvalContext:
    """Evaluation scopes for one expression evaluation.

    ``my`` is the ad the expression came from; ``other`` the candidate
    ad during matchmaking.  ``_active`` tracks in-flight attribute
    lookups for cycle detection.
    """

    my: ClassAd | None = None
    other: ClassAd | None = None
    _active: set[tuple[int, str]] = field(default_factory=set)

    def flipped(self) -> "EvalContext":
        """Context with ``my`` and ``other`` exchanged (for ``other.x``)."""
        return EvalContext(my=self.other, other=self.my, _active=self._active)


def evaluate(expr: Expr, ctx: EvalContext | None = None) -> Value:
    """Evaluate ``expr`` to a ClassAd value under ``ctx``."""
    ctx = ctx or EvalContext()
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, AttrRef):
        return _eval_attr(expr, ctx)
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr.op, evaluate(expr.operand, ctx))
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, ctx)
    if isinstance(expr, Ternary):
        cond = evaluate(expr.cond, ctx)
        if isinstance(cond, (Undefined, Error)):
            return cond if isinstance(cond, Error) else UNDEFINED
        if not isinstance(cond, bool):
            return ERROR
        return evaluate(expr.then if cond else expr.otherwise, ctx)
    if isinstance(expr, FuncCall):
        return _eval_func(expr, ctx)
    if isinstance(expr, ListExpr):
        return ExprList(evaluate(item, ctx) for item in expr.items)
    if isinstance(expr, RecordExpr):
        ad = ClassAd()
        for name, sub in expr.items:
            ad[name] = sub
        return ad
    if isinstance(expr, Subscript):
        return _eval_subscript(expr, ctx)
    if isinstance(expr, Select):
        base = evaluate(expr.base, ctx)
        if isinstance(base, ClassAd):
            sub = base.get_expr(expr.attr)
            if sub is None:
                return UNDEFINED
            return evaluate(sub, EvalContext(my=base, other=ctx.other, _active=ctx._active))
        if isinstance(base, Undefined):
            return UNDEFINED
        return ERROR
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def _eval_subscript(expr: Subscript, ctx: EvalContext) -> Value:
    base = evaluate(expr.base, ctx)
    index = evaluate(expr.index, ctx)
    if isinstance(base, Error) or isinstance(index, Error):
        return ERROR
    if isinstance(base, Undefined) or isinstance(index, Undefined):
        return UNDEFINED
    if not isinstance(base, ExprList) or not _is_int(index):
        return ERROR
    if not (0 <= index < len(base)):
        return ERROR
    item = base[index]
    return evaluate(item, ctx) if isinstance(item, Expr) else item


# ---------------------------------------------------------------------------
# attribute resolution
# ---------------------------------------------------------------------------


def _eval_attr(ref: AttrRef, ctx: EvalContext) -> Value:
    if ref.scope == "other":
        if ctx.other is None:
            return UNDEFINED
        sub = ctx.other.get_expr(ref.name)
        if sub is None:
            return UNDEFINED
        return _eval_in_ad(sub, ctx.other, ref.name, ctx.flipped())
    # "my" scope or bare name: look in my, then (bare names only) in other.
    if ctx.my is not None:
        sub = ctx.my.get_expr(ref.name)
        if sub is not None:
            return _eval_in_ad(sub, ctx.my, ref.name, ctx)
    if ref.scope is None and ctx.other is not None:
        sub = ctx.other.get_expr(ref.name)
        if sub is not None:
            return _eval_in_ad(sub, ctx.other, ref.name, ctx.flipped())
    return UNDEFINED


def _eval_in_ad(expr: Expr, ad: ClassAd, name: str, ctx: EvalContext) -> Value:
    key = (id(ad), name.lower())
    if key in ctx._active:
        return ERROR  # circular reference
    ctx._active.add(key)
    try:
        return evaluate(expr, ctx)
    finally:
        ctx._active.discard(key)


# ---------------------------------------------------------------------------
# operators
# ---------------------------------------------------------------------------

_NUMERIC = (int, float)


def _eval_unary(op: str, v: Value) -> Value:
    if isinstance(v, Error):
        return ERROR
    if isinstance(v, Undefined):
        return UNDEFINED
    if op == "-":
        return -v if isinstance(v, _NUMERIC) and not isinstance(v, bool) else ERROR
    if op == "+":
        return v if isinstance(v, _NUMERIC) and not isinstance(v, bool) else ERROR
    if op == "!":
        return (not v) if isinstance(v, bool) else ERROR
    if op == "~":
        return ~v if isinstance(v, int) and not isinstance(v, bool) else ERROR
    raise ValueError(f"unknown unary operator {op!r}")


def _eval_binary(expr: BinaryOp, ctx: EvalContext) -> Value:
    op = expr.op
    if op in ("&&", "||"):
        return _eval_logical(op, expr, ctx)
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op == "=?=":
        return _is_identical(left, right)
    if op == "=!=":
        return not _is_identical(left, right)
    if isinstance(left, Error) or isinstance(right, Error):
        return ERROR
    if isinstance(left, Undefined) or isinstance(right, Undefined):
        return UNDEFINED
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return _eval_comparison(op, left, right)
    if op in ("+", "-", "*", "/", "%"):
        return _eval_arith(op, left, right)
    if op in ("&", "|", "^", "<<", ">>"):
        if _is_int(left) and _is_int(right):
            return {
                "&": left & right,
                "|": left | right,
                "^": left ^ right,
                "<<": left << right,
                ">>": left >> right,
            }[op]
        return ERROR
    raise ValueError(f"unknown binary operator {op!r}")


def _eval_logical(op: str, expr: BinaryOp, ctx: EvalContext) -> Value:
    left = evaluate(expr.left, ctx)
    left_b = _as_logic(left)
    if op == "&&":
        if left_b is False:
            return False
        right_b = _as_logic(evaluate(expr.right, ctx))
        if right_b is False:
            return False
        if left_b is ERROR or right_b is ERROR:
            return ERROR
        if left_b is UNDEFINED or right_b is UNDEFINED:
            return UNDEFINED
        return True
    # "||"
    if left_b is True:
        return True
    right_b = _as_logic(evaluate(expr.right, ctx))
    if right_b is True:
        return True
    if left_b is ERROR or right_b is ERROR:
        return ERROR
    if left_b is UNDEFINED or right_b is UNDEFINED:
        return UNDEFINED
    return False


def _as_logic(v: Value):
    """Coerce a value for logical operators: bool, UNDEFINED, or ERROR."""
    if isinstance(v, bool):
        return v
    if isinstance(v, Undefined):
        return UNDEFINED
    return ERROR


def _is_int(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v: Value) -> bool:
    return isinstance(v, _NUMERIC) and not isinstance(v, bool)


def _eval_comparison(op: str, left: Value, right: Value) -> Value:
    if _is_num(left) and _is_num(right):
        pass  # numeric comparison
    elif isinstance(left, str) and isinstance(right, str):
        # ClassAd string comparison is case-insensitive.
        left, right = left.lower(), right.lower()
    elif isinstance(left, bool) and isinstance(right, bool):
        if op not in ("==", "!="):
            return ERROR
    else:
        return ERROR
    return {
        "==": left == right,
        "!=": left != right,
        "<": left < right,
        "<=": left <= right,
        ">": left > right,
        ">=": left >= right,
    }[op]


def _eval_arith(op: str, left: Value, right: Value) -> Value:
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not (_is_num(left) and _is_num(right)):
        return ERROR
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return ERROR
        if isinstance(left, int) and isinstance(right, int):
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        return left / right
    if op == "%":
        if right == 0 or not (_is_int(left) and _is_int(right)):
            return ERROR
        r = abs(left) % abs(right)
        return r if left >= 0 else -r
    raise ValueError(op)


def _is_identical(left: Value, right: Value) -> bool:
    """The ``=?=`` meta-equality: same type and same value, never UNDEFINED."""
    if isinstance(left, Undefined) or isinstance(right, Undefined):
        return isinstance(left, Undefined) and isinstance(right, Undefined)
    if isinstance(left, Error) or isinstance(right, Error):
        return isinstance(left, Error) and isinstance(right, Error)
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if type(left) is not type(right) and not (_is_num(left) and _is_num(right)):
        return False
    return left == right


# ---------------------------------------------------------------------------
# builtin functions
# ---------------------------------------------------------------------------


def _eval_func(expr: FuncCall, ctx: EvalContext) -> Value:
    fn = _BUILTINS.get(expr.name)
    if fn is None:
        return ERROR
    return fn(expr, ctx)


def _strict(fn: Callable[..., Value]) -> Callable[[FuncCall, EvalContext], Value]:
    """Wrap a function of evaluated args with UNDEFINED/ERROR propagation."""

    def wrapper(call: FuncCall, ctx: EvalContext) -> Value:
        args = [evaluate(a, ctx) for a in call.args]
        for a in args:
            if isinstance(a, Error):
                return ERROR
            if isinstance(a, Undefined):
                return UNDEFINED
        try:
            return fn(*args)
        except (TypeError, ValueError, IndexError, ZeroDivisionError):
            return ERROR

    return wrapper


def _fn_strcat(*args: Value) -> Value:
    out = []
    for a in args:
        if isinstance(a, str):
            out.append(a)
        elif isinstance(a, bool):
            out.append("true" if a else "false")
        elif isinstance(a, _NUMERIC):
            out.append(str(a))
        else:
            raise TypeError
    return "".join(out)


def _fn_size(v: Value) -> Value:
    if isinstance(v, str) or isinstance(v, ExprList) or isinstance(v, ClassAd):
        return len(v)
    raise TypeError


def _fn_int(v: Value) -> Value:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, _NUMERIC):
        return int(v)
    if isinstance(v, str):
        return int(float(v))
    raise TypeError


def _fn_real(v: Value) -> Value:
    if isinstance(v, bool):
        return float(v)
    if isinstance(v, _NUMERIC):
        return float(v)
    if isinstance(v, str):
        return float(v)
    raise TypeError


def _fn_floor(v: Value) -> Value:
    import math

    if _is_num(v):
        return int(math.floor(v))
    raise TypeError


def _fn_ceiling(v: Value) -> Value:
    import math

    if _is_num(v):
        return int(math.ceil(v))
    raise TypeError


def _fn_round(v: Value) -> Value:
    import math

    if _is_num(v):
        return int(math.floor(v + 0.5))
    raise TypeError


def _member(call: FuncCall, ctx: EvalContext) -> Value:
    if len(call.args) != 2:
        return ERROR
    needle = evaluate(call.args[0], ctx)
    haystack = evaluate(call.args[1], ctx)
    if isinstance(needle, Error) or isinstance(haystack, Error):
        return ERROR
    if isinstance(needle, Undefined) or isinstance(haystack, Undefined):
        return UNDEFINED
    if not isinstance(haystack, ExprList):
        return ERROR
    for item in haystack:
        value = evaluate(item, ctx) if isinstance(item, Expr) else item
        if _is_identical(value, needle):
            return True
    return False


def _ifthenelse(call: FuncCall, ctx: EvalContext) -> Value:
    if len(call.args) != 3:
        return ERROR
    cond = evaluate(call.args[0], ctx)
    logic = _as_logic(cond)
    if logic is ERROR:
        return ERROR
    if logic is UNDEFINED:
        return UNDEFINED
    return evaluate(call.args[1] if logic else call.args[2], ctx)


def _is_undefined(call: FuncCall, ctx: EvalContext) -> Value:
    if len(call.args) != 1:
        return ERROR
    return isinstance(evaluate(call.args[0], ctx), Undefined)


def _is_error(call: FuncCall, ctx: EvalContext) -> Value:
    if len(call.args) != 1:
        return ERROR
    return isinstance(evaluate(call.args[0], ctx), Error)


def _fn_regexp(pattern: Value, target: Value) -> Value:
    import re

    if not (isinstance(pattern, str) and isinstance(target, str)):
        raise TypeError
    try:
        return re.search(pattern, target) is not None
    except re.error:
        raise ValueError from None


_BUILTINS: dict[str, Callable[[FuncCall, EvalContext], Value]] = {
    "strcat": _strict(_fn_strcat),
    "tolower": _strict(lambda s: s.lower() if isinstance(s, str) else ERROR),
    "toupper": _strict(lambda s: s.upper() if isinstance(s, str) else ERROR),
    "size": _strict(_fn_size),
    "int": _strict(_fn_int),
    "real": _strict(_fn_real),
    "string": _strict(_fn_strcat),
    "floor": _strict(_fn_floor),
    "ceiling": _strict(_fn_ceiling),
    "round": _strict(_fn_round),
    "member": _member,
    "ifthenelse": _ifthenelse,
    "isundefined": _is_undefined,
    "iserror": _is_error,
    "regexp": _strict(_fn_regexp),
}
