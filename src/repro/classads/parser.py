"""Recursive-descent parser for the ClassAd text syntax.

Grammar (precedence low to high)::

    classad     := '[' [ assignment (';' assignment)* [';'] ] ']'
    assignment  := IDENT '=' expr
    expr        := ternary
    ternary     := or_expr [ '?' expr ':' expr ]
    or_expr     := and_expr ( '||' and_expr )*
    and_expr    := bitor ( '&&' bitor )*
    bitor       := bitxor ( '|' bitxor )*
    bitxor      := bitand ( '^' bitand )*
    bitand      := equality ( '&' equality )*
    equality    := relational ( ('==' | '!=' | '=?=' | '=!=') relational )*
    relational  := shift ( ('<' | '<=' | '>' | '>=') shift )*
    shift       := additive ( ('<<' | '>>') additive )*
    additive    := multiplicative ( ('+' | '-') multiplicative )*
    multiplicative := unary ( ('*' | '/' | '%') unary )*
    unary       := ('-' | '+' | '!' | '~') unary | postfix
    postfix     := primary ( '[' expr ']' | '.' IDENT )*
    primary     := literal | list | classad | '(' expr ')'
                 | IDENT '(' args ')' | scoped-or-bare attr ref
"""

from __future__ import annotations

from repro.classads.ast import (
    ERROR,
    UNDEFINED,
    AttrRef,
    BinaryOp,
    ClassAd,
    Expr,
    FuncCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    Ternary,
    UnaryOp,
)
from repro.classads.lexer import LexError, Token, tokenize


class ParseError(ValueError):
    """Raised on syntactically invalid ClassAd text."""


_SCOPES = {"my": "my", "self": "my", "other": "other", "target": "other", "parent": "parent"}
_KEYWORD_LITERALS = {
    "true": True,
    "false": False,
    "undefined": UNDEFINED,
    "error": ERROR,
}


def parse(text: str) -> ClassAd:
    """Parse a full ClassAd (``[ name = expr; ... ]``) from ``text``."""
    parser = _Parser(text)
    ad = parser.parse_classad()
    parser.expect_eof()
    return ad


def parse_expression(text: str) -> Expr:
    """Parse a single ClassAd expression from ``text``."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str):
        try:
            self._tokens = tokenize(text)
        except LexError as exc:
            raise ParseError(str(exc)) from exc
        self._pos = 0

    # -- token plumbing ----------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        self._pos += 1
        return tok

    def _accept_op(self, *ops: str) -> str | None:
        if self._cur.kind == "OP" and self._cur.value in ops:
            return self._advance().value  # type: ignore[return-value]
        return None

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise ParseError(f"expected {op!r} at {self._cur.pos}, got {self._cur.value!r}")

    def expect_eof(self) -> None:
        if self._cur.kind != "EOF":
            raise ParseError(f"trailing input at {self._cur.pos}: {self._cur.value!r}")

    # -- grammar -------------------------------------------------------------
    def parse_classad(self) -> ClassAd:
        self._expect_op("[")
        ad = ClassAd()
        while not self._accept_op("]"):
            if self._cur.kind != "IDENT":
                raise ParseError(f"expected attribute name at {self._cur.pos}")
            name = self._advance().value
            self._expect_op("=")
            ad[name] = self.parse_expr()
            if not self._accept_op(";"):
                self._expect_op("]")
                break
        return ad

    def parse_expr(self) -> Expr:
        return self._ternary()

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        if self._accept_op("?"):
            then = self.parse_expr()
            self._expect_op(":")
            otherwise = self.parse_expr()
            return Ternary(cond, then, otherwise)
        return cond

    _LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!=", "=?=", "=!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._unary()
        ops = self._LEVELS[level]
        left = self._binary(level + 1)
        while True:
            op = self._accept_op(*ops)
            if op is None:
                return left
            right = self._binary(level + 1)
            left = BinaryOp(op, left, right)

    def _unary(self) -> Expr:
        op = self._accept_op("-", "+", "!", "~")
        if op is not None:
            return UnaryOp(op, self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self._accept_op("["):
                index = self.parse_expr()
                self._expect_op("]")
                expr = Subscript(expr, index)
            elif (
                self._cur.kind == "OP"
                and self._cur.value == "."
                and self._tokens[self._pos + 1].kind == "IDENT"
            ):
                self._advance()
                attr = self._advance().value
                expr = Select(expr, attr)
            else:
                return expr

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.kind in ("INT", "REAL", "STRING"):
            self._advance()
            return Literal(tok.value)
        if tok.kind == "IDENT":
            lowered = tok.value.lower()
            if lowered in _KEYWORD_LITERALS:
                self._advance()
                return Literal(_KEYWORD_LITERALS[lowered])
            self._advance()
            # function call?
            if self._cur.kind == "OP" and self._cur.value == "(":
                self._advance()
                args: list[Expr] = []
                if not self._accept_op(")"):
                    args.append(self.parse_expr())
                    while self._accept_op(","):
                        args.append(self.parse_expr())
                    self._expect_op(")")
                return FuncCall(lowered, tuple(args))
            # scoped attribute reference?
            if lowered in _SCOPES and self._cur.kind == "OP" and self._cur.value == ".":
                if self._tokens[self._pos + 1].kind == "IDENT":
                    self._advance()  # '.'
                    name = self._advance().value
                    return AttrRef(name, scope=_SCOPES[lowered])
            return AttrRef(tok.value)
        if tok.kind == "OP" and tok.value == "(":
            self._advance()
            inner = self.parse_expr()
            self._expect_op(")")
            return inner
        if tok.kind == "OP" and tok.value == "{":
            self._advance()
            items: list[Expr] = []
            if not self._accept_op("}"):
                items.append(self.parse_expr())
                while self._accept_op(","):
                    items.append(self.parse_expr())
                self._expect_op("}")
            return ListExpr(tuple(items))
        if tok.kind == "OP" and tok.value == "[":
            ad = self.parse_classad()
            return RecordExpr(tuple((name, ad.get_expr(name)) for name in ad))
        raise ParseError(f"unexpected token {tok.value!r} at {tok.pos}")
