"""ClassAd (classified advertisement) language.

ClassAds are Condor's schema-free policy and matchmaking language
[Raman 2000].  NeST uses them in two roles:

* the access-control framework is "built on top of collections of
  ClassAds" (paper, section 5), and
* the dispatcher "periodically consolidates information about resource
  and data availability ... and can publish this information as a
  ClassAd into a global scheduling system" (paper, section 2.1).

This package is a from-scratch implementation of the core language:

* :mod:`repro.classads.ast` -- value model and expression nodes,
* :mod:`repro.classads.lexer` / :mod:`repro.classads.parser` -- text
  syntax (``[ attr = expr; ... ]``),
* :mod:`repro.classads.evaluator` -- evaluation with the three-valued
  UNDEFINED / ERROR semantics and the builtin function library,
* :mod:`repro.classads.matchmaker` -- symmetric two-ad matchmaking via
  ``Requirements`` / ``Rank`` and ``other.attr`` scoping,
* :mod:`repro.classads.collections` -- queryable collections of ads.

Example
-------
>>> from repro.classads import ClassAd, parse, symmetric_match
>>> server = parse('[ Type = "Storage"; FreeSpace = 100; '
...                'Requirements = other.RequestedSpace <= my.FreeSpace ]')
>>> job = parse('[ Type = "Request"; RequestedSpace = 50; '
...             'Requirements = other.Type == "Storage" ]')
>>> symmetric_match(server, job)
True
"""

from repro.classads.ast import (
    ClassAd,
    ExprList,
    Undefined,
    Error,
    UNDEFINED,
    ERROR,
    Value,
)
from repro.classads.parser import parse, parse_expression, ParseError
from repro.classads.evaluator import evaluate, EvalContext
from repro.classads.matchmaker import symmetric_match, match_rank, MatchMaker
from repro.classads.collections import ClassAdCollection

__all__ = [
    "ClassAd",
    "ExprList",
    "Undefined",
    "Error",
    "UNDEFINED",
    "ERROR",
    "Value",
    "parse",
    "parse_expression",
    "ParseError",
    "evaluate",
    "EvalContext",
    "symmetric_match",
    "match_rank",
    "MatchMaker",
    "ClassAdCollection",
]
