"""Prometheus text exposition (version 0.0.4) for a MetricsRegistry.

The management endpoint serves this at ``/metrics`` and the
``repro stats`` CLI prints it; the format is the plain-text scrape
format every Prometheus-compatible collector understands::

    # HELP nest_requests_total Requests served.
    # TYPE nest_requests_total counter
    nest_requests_total{protocol="chirp",op="get",outcome="ok"} 12

Rendering reads one consistent snapshot per metric (the registry's
per-metric locks), escapes label values, and emits histograms as
cumulative ``_bucket`` series plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus"]


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(names: tuple[str, ...], key: tuple[str, ...],
            extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape(v)}"' for n, v in zip(names, key)]
    pairs.extend(f'{n}="{_escape(v)}"' for n, v in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines: list[str] = []
    for metric in registry.metrics():
        name = metric.name
        lines.append(f"# HELP {name} {metric.help or name}")
        lines.append(f"# TYPE {name} {metric.kind}")
        series = metric.series()
        if isinstance(metric, Histogram):
            for key, data in sorted(series.items()):
                bounds = [*metric.buckets, float("inf")]
                for bound, cumulative in zip(bounds, data["buckets"]):
                    le = "+Inf" if bound == float("inf") else _format_value(
                        float(bound))
                    labels = _labels(metric.labelnames, key, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                base = _labels(metric.labelnames, key)
                lines.append(f"{name}_sum{base} {_format_value(data['sum'])}")
                lines.append(f"{name}_count{base} {data['count']}")
            continue
        if isinstance(metric, Gauge) and metric.callback is not None:
            lines.append(f"{name} {_format_value(metric.value())}")
            continue
        if not series and not metric.labelnames:
            lines.append(f"{name} 0")
            continue
        for key, value in sorted(series.items()):
            labels = _labels(metric.labelnames, key)
            lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"
