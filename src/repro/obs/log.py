"""Structured logging for the appliance: one ``repro.*`` namespace.

Every module logs through :func:`get_logger`, which pins the logger
into the ``repro.`` hierarchy so an operator can dial the whole
appliance (or one subsystem: ``repro.nest``, ``repro.client``...) with
a single ``logging`` configuration.  The lint lane
(``scripts/lint_obs.py``) rejects bare ``print(`` and non-namespaced
``logging.getLogger()`` calls under ``src/repro`` outside the CLI, so
this module is the only supported way to emit diagnostics.

:func:`console` is the user-facing output channel for script entry
points (``python -m repro.bench.fig3``, the perf smoke...): a logger
whose handler writes to *the current* ``sys.stdout`` (resolved per
record, so pytest's capture and shell redirection both see it), with
no level gate and no propagation into the root logger.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "console"]


def get_logger(name: str) -> logging.Logger:
    """A logger guaranteed to live under the ``repro.`` namespace."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


class _CurrentStdoutHandler(logging.StreamHandler):
    """A StreamHandler that re-resolves ``sys.stdout`` per record."""

    def __init__(self) -> None:
        super().__init__(sys.stdout)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:  # the base __init__ assigns; ignore
        pass


def _console_logger() -> logging.Logger:
    logger = get_logger("repro.console")
    if not logger.handlers:
        handler = _CurrentStdoutHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
    return logger


def console(message: str = "") -> None:
    """Emit user-facing CLI output through the structured logger."""
    _console_logger().info("%s", message)
