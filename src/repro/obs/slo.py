"""Declarative service-level objectives evaluated from metric snapshots.

The paper's manageability thesis is that an appliance must tell its
operator *whether it is meeting its job*, not just emit raw counters.
This module closes that gap: a handful of declarative
:class:`SloObjective` records (99% of requests under a latency bound,
99% of requests succeeding, replica repair lag bounded) are evaluated
periodically against :meth:`MetricsRegistry.snapshot` data, and the
engine reports the three numbers SRE practice actually uses:

* **compliance** -- is the objective currently met;
* **error budget remaining** -- what fraction of the allowed badness
  (``1 - target``) is still unspent over the long window;
* **burn rate** per window -- how many times faster than "exactly
  spending the budget" we are currently failing; a burn rate of 1.0
  spends the budget precisely at window expiry, >1 is trouble.

Everything is event-based: each objective reduces a snapshot to
cumulative ``(good, bad)`` event counts, windows are computed by
differencing the sample ring, and multi-window burn rates fall out of
the same arithmetic.  The engine publishes ``slo_compliant``,
``slo_error_budget_remaining`` and ``slo_burn_rate`` gauges back onto
the registry (so ``/metrics`` carries them), serves a JSON report for
the ``/slo`` endpoint, and exposes an ``SloDegraded`` attribute block
for the ClassAd advertisement -- which is how the Collector and the
ServerModelSwitcher get to react to *degradation* instead of raw
queue depth.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, Mapping

__all__ = [
    "SloEngine",
    "SloObjective",
    "default_objectives",
]


@dataclasses.dataclass(frozen=True)
class SloObjective:
    """One declarative objective.

    ``kind`` selects the reduction from a metrics snapshot:

    * ``"latency"`` -- of the requests observed by histogram
      ``metric``, at least ``target`` (fraction) must complete within
      ``threshold`` seconds.  (Equivalently: p-``target`` latency is
      at most ``threshold``.)
    * ``"error_rate"`` -- of the requests counted by ``metric`` (a
      counter with an ``outcome`` label), at least ``target`` must
      have outcome ``ok``.
    * ``"value_under"`` -- the gauge ``metric`` (replica repair lag,
      say) must read at most ``threshold``; each evaluation is one
      good/bad event against ``target``.
    """

    name: str
    kind: str
    metric: str
    target: float = 0.99
    threshold: float = 0.0

    def __post_init__(self):
        if self.kind not in ("latency", "error_rate", "value_under"):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be a fraction in (0, 1)")


def default_objectives() -> tuple[SloObjective, ...]:
    """The stock appliance objectives.

    The repair-lag objective only activates on appliances that run a
    replicator (the gauge is absent elsewhere, which reads as
    no-data = compliant).
    """
    return (
        SloObjective("request_latency_p99", kind="latency",
                     metric="nest_request_seconds",
                     target=0.99, threshold=1.0),
        SloObjective("request_error_rate", kind="error_rate",
                     metric="nest_requests_total", target=0.99),
        SloObjective("replica_repair_lag", kind="value_under",
                     metric="replica_repair_lag_seconds",
                     target=0.99, threshold=300.0),
    )


def _histogram_good_bad(entry: Mapping[str, Any],
                        threshold: float) -> tuple[float, float]:
    """Cumulative (within-threshold, over-threshold) event counts
    across every label series of a snapshot histogram entry."""
    bounds = list(entry.get("buckets") or ())
    # index of the tightest bucket bound that still covers threshold;
    # everything in buckets [0..idx] completed fast enough.
    idx = len(bounds)  # +Inf: threshold above every bound counts all
    for i, bound in enumerate(bounds):
        if bound >= threshold:
            idx = i
            break
    good = bad = 0.0
    for data in (entry.get("series") or {}).values():
        if not isinstance(data, Mapping):
            continue
        cumulative = data.get("buckets") or []
        count = data.get("count", 0)
        within = cumulative[min(idx, len(cumulative) - 1)] \
            if cumulative else 0
        good += within
        bad += max(count - within, 0)
    return good, bad


def _outcome_good_bad(entry: Mapping[str, Any]) -> tuple[float, float]:
    """Cumulative (ok, not-ok) totals of an outcome-labelled counter."""
    labels = tuple(entry.get("labels") or ())
    try:
        pos = labels.index("outcome")
    except ValueError:
        pos = len(labels) - 1 if labels else -1
    good = bad = 0.0
    for flat, value in (entry.get("series") or {}).items():
        parts = flat.split(",") if flat else []
        outcome = parts[pos] if 0 <= pos < len(parts) else "ok"
        if outcome == "ok":
            good += value
        else:
            bad += value
    return good, bad


def _gauge_value(entry: Mapping[str, Any]) -> float | None:
    """The largest series value of a snapshot gauge entry (fleet
    merges key gauge series per shard; worst shard governs)."""
    series = entry.get("series")
    if not series:
        return None
    try:
        return max(float(v) for v in series.values())
    except (TypeError, ValueError):
        return None


class SloEngine:
    """Evaluates objectives over a ring of snapshot-derived samples."""

    def __init__(self, registry=None,
                 objectives: tuple[SloObjective, ...] | None = None,
                 windows: tuple[float, ...] = (60.0, 600.0),
                 degraded_burn: float = 2.0,
                 clock: Callable[[], float] = time.time):
        self.objectives = tuple(objectives if objectives is not None
                                else default_objectives())
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.windows = tuple(sorted(windows))
        if not self.windows:
            raise ValueError("need at least one window")
        self.degraded_burn = degraded_burn
        self.clock = clock
        self.registry = registry
        self._lock = threading.Lock()
        #: ring of (ts, {objective: (cumulative_good, cumulative_bad)})
        self._samples: list[tuple[float, dict[str, tuple[float, float]]]] = []
        #: running event counts for value objectives (one event/sample)
        self._value_events: dict[str, tuple[float, float]] = {}
        self._g_compliant = None
        self._g_budget = None
        self._g_burn = None
        if registry is not None:
            self._g_compliant = registry.gauge(
                "slo_compliant",
                "1 when the objective currently meets its target.",
                labelnames=("objective",))
            self._g_budget = registry.gauge(
                "slo_error_budget_remaining",
                "Fraction of the long-window error budget unspent.",
                labelnames=("objective",))
            self._g_burn = registry.gauge(
                "slo_burn_rate",
                "Error-budget burn rate per evaluation window.",
                labelnames=("objective", "window"),
                max_series=64)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _reduce(self, objective: SloObjective,
                snapshot: Mapping[str, Any]) -> tuple[float, float] | None:
        entry = snapshot.get(objective.metric)
        if not isinstance(entry, Mapping):
            return None
        if objective.kind == "latency":
            return _histogram_good_bad(entry, objective.threshold)
        if objective.kind == "error_rate":
            return _outcome_good_bad(entry)
        value = _gauge_value(entry)
        if value is None:
            return None
        good, bad = self._value_events.get(objective.name, (0.0, 0.0))
        if value <= objective.threshold:
            good += 1
        else:
            bad += 1
        self._value_events[objective.name] = (good, bad)
        return good, bad

    def sample(self, snapshot: Mapping[str, Any] | None = None) -> None:
        """Record one observation of every objective's event counts."""
        if snapshot is None:
            if self.registry is None:
                raise ValueError("no registry and no snapshot given")
            snapshot = self.registry.snapshot()
        now = self.clock()
        counts: dict[str, tuple[float, float]] = {}
        with self._lock:
            for objective in self.objectives:
                reduced = self._reduce(objective, snapshot)
                if reduced is not None:
                    counts[objective.name] = reduced
            self._samples.append((now, counts))
            horizon = now - self.windows[-1] * 2
            while len(self._samples) > 2 and self._samples[1][0] < horizon:
                self._samples.pop(0)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _window_bad_fraction(self, name: str,
                             window: float) -> tuple[float, float]:
        """(bad_fraction, events) for ``name`` over the trailing window."""
        newest_ts, newest = self._samples[-1]
        if name not in newest:
            return 0.0, 0.0
        base: tuple[float, float] | None = None
        for ts, counts in self._samples:
            if ts < newest_ts - window:
                if name in counts:
                    base = counts[name]
                continue
            break
        good1, bad1 = newest[name]
        good0, bad0 = base if base is not None else (0.0, 0.0)
        good = max(good1 - good0, 0.0)
        bad = max(bad1 - bad0, 0.0)
        events = good + bad
        return (bad / events if events else 0.0), events

    def evaluate(self, snapshot: Mapping[str, Any] | None = None
                 ) -> list[dict[str, Any]]:
        """Take a sample, score every objective, publish the gauges."""
        self.sample(snapshot)
        statuses: list[dict[str, Any]] = []
        with self._lock:
            for objective in self.objectives:
                budget = 1.0 - objective.target
                burn: dict[str, float] = {}
                for window in self.windows:
                    bad_frac, _ = self._window_bad_fraction(
                        objective.name, window)
                    burn[f"{window:g}s"] = bad_frac / budget if budget else 0.0
                long_bad, events = self._window_bad_fraction(
                    objective.name, self.windows[-1])
                remaining = max(0.0, 1.0 - (long_bad / budget)) \
                    if budget else 0.0
                no_data = objective.name not in self._samples[-1][1]
                compliant = no_data or long_bad <= budget
                fast_burn = burn[f"{self.windows[0]:g}s"]
                degraded = (not no_data) and (
                    remaining <= 0.0 or fast_burn >= self.degraded_burn)
                statuses.append({
                    "objective": objective.name,
                    "kind": objective.kind,
                    "metric": objective.metric,
                    "target": objective.target,
                    "threshold": objective.threshold,
                    "events": events,
                    "no_data": no_data,
                    "compliant": compliant,
                    "degraded": degraded,
                    "error_budget_remaining": round(remaining, 6),
                    "burn_rate": {k: round(v, 6) for k, v in burn.items()},
                })
        if self._g_compliant is not None:
            for status in statuses:
                name = status["objective"]
                self._g_compliant.set(
                    1.0 if status["compliant"] else 0.0, objective=name)
                self._g_budget.set(
                    status["error_budget_remaining"], objective=name)
                for window, rate in status["burn_rate"].items():
                    self._g_burn.set(rate, objective=name, window=window)
        return statuses

    def report(self, snapshot: Mapping[str, Any] | None = None
               ) -> dict[str, Any]:
        """The ``/slo`` endpoint document."""
        statuses = self.evaluate(snapshot)
        return {
            "degraded": any(s["degraded"] for s in statuses),
            "windows": [f"{w:g}s" for w in self.windows],
            "objectives": statuses,
        }

    def degraded(self) -> bool:
        """Whether any objective is burning budget dangerously fast
        (or has exhausted it).  Cheap enough for per-accept polling --
        one snapshot walk -- but callers on a hot path should rate-
        limit themselves."""
        return any(s["degraded"] for s in self.evaluate())

    def attributes(self) -> dict[str, Any]:
        """ClassAd attribute block for the advertisement."""
        statuses = self.evaluate()
        worst = min((s["error_budget_remaining"] for s in statuses
                     if not s["no_data"]), default=1.0)
        return {
            "SloDegraded": any(s["degraded"] for s in statuses),
            "SloWorstBudgetRemaining": round(worst, 6),
        }
