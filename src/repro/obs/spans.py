"""Request spans: a per-connection trace context for the live stack.

A :class:`Tracer` mints one trace per accepted connection; handlers
open a child span per request, and the layers a request crosses --
parse, authorize, queue-wait, transfer, storage commit -- each record
a timed child span.  The result is a span *tree* that answers "why was
this request slow?" with the same vocabulary across all five wire
protocols.

Propagation is deliberately low-tech: the active span is kept on a
thread-local stack (one handler thread owns one connection, so this is
exact for the synchronous layers), and layers that hop threads -- the
transfer manager's worker pool -- are handed the parent span
explicitly and attach retroactive children with measured start and
duration.  Code deep in the stack (storage, ACL, lots) does not need a
tracer reference at all: :func:`maybe_span` opens a child of whatever
span is active, and is a no-op costing one thread-local read when
nothing is being traced.

Finished spans land in a bounded :class:`SpanRecorder` ring; the
management endpoint and the Chrome trace exporter read from there.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from typing import Any, Iterable, Optional

__all__ = [
    "Span",
    "SpanRecorder",
    "Tracer",
    "annotate",
    "current_span",
    "current_trace_context",
    "format_trace_context",
    "maybe_span",
    "parse_trace_context",
    "spans_from_dicts",
]


class Span:
    """One timed operation inside a trace.

    ``start`` is epoch seconds (for cross-host correlation), while the
    duration is measured with ``perf_counter`` so it is monotonic and
    sub-millisecond accurate.  Attributes are a small flat dict --
    protocol, op, user class, outcome, byte counts, fault and retry
    annotations.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "duration", "attributes", "status", "_recorder", "_t0")

    def __init__(self, trace_id: str, span_id: str, name: str,
                 parent_id: str | None = None,
                 recorder: "SpanRecorder | None" = None,
                 attributes: dict[str, Any] | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.time()
        self.duration: float | None = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self._recorder = recorder
        self._t0 = time.perf_counter()

    # -- annotation --------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        self.attributes.update(attrs)
        return self

    def add(self, key: str, amount: float = 1) -> "Span":
        """Increment a numeric attribute (retry counts, fault counts)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount
        return self

    # -- lifecycle ---------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.duration is not None

    def end(self, status: str | None = None) -> "Span":
        """Close the span (idempotent) and hand it to the recorder."""
        if self.duration is not None:
            return self
        self.duration = time.perf_counter() - self._t0
        if status is not None:
            self.status = status
        if self._recorder is not None:
            self._recorder.record(self)
        return self

    def child(self, name: str, **attrs: Any) -> "Span":
        """Open a child span in the same trace."""
        return Span(self.trace_id, _next_span_id(), name,
                    parent_id=self.span_id, recorder=self._recorder,
                    attributes=attrs)

    def child_at(self, name: str, start: float, duration: float,
                 **attrs: Any) -> "Span":
        """Record a retroactive child whose timing was measured
        elsewhere (e.g. queue-wait measured by the transfer manager's
        worker threads)."""
        span = Span(self.trace_id, _next_span_id(), name,
                    parent_id=self.span_id, recorder=self._recorder,
                    attributes=attrs)
        span.start = start
        span.duration = duration
        if self._recorder is not None:
            self._recorder.record(span)
        return span

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        _push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _pop(self)
        self.end(status="error" if exc_type is not None else None)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.2f}ms" if self.ended else "open"
        return f"<Span {self.name!r} trace={self.trace_id} {state}>"


class _NullSpan:
    """The do-nothing span :func:`maybe_span` yields when no trace is
    active; every annotation method is a cheap no-op."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add(self, key: str, amount: float = 1) -> "_NullSpan":
        return self

    def end(self, status: str | None = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Bounded ring of finished spans (newest last), thread-safe."""

    def __init__(self, limit: int = 4096):
        self.limit = limit
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.limit:
                overflow = len(self._spans) - self.limit
                del self._spans[:overflow]
                self.dropped += overflow

    def spans(self) -> list[Span]:
        """Snapshot of recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """Every recorded span of one trace, oldest first."""
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# id generation and thread-local propagation
# ----------------------------------------------------------------------
_ids = itertools.count(1)
_id_lock = threading.Lock()


def _next_span_id() -> str:
    with _id_lock:
        return f"{next(_ids):08x}"


_active = threading.local()


def _stack() -> list[Span]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    return stack


def _push(span: Span) -> None:
    _stack().append(span)


def _pop(span: Span) -> None:
    stack = _stack()
    if stack and stack[-1] is span:
        stack.pop()
    elif span in stack:  # unbalanced exit; drop it anyway
        stack.remove(span)


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, or None."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


def maybe_span(name: str, **attrs: Any):
    """A child span of the active span, or a shared no-op.

    This is the instrumentation point for layers without a tracer
    reference (storage manager, ACL checks, lot accounting): inside a
    traced request it yields a real child span; outside one it costs a
    thread-local read and returns the null span.
    """
    parent = current_span()
    if parent is None:
        return NULL_SPAN
    return parent.child(name, **attrs)


def annotate(key: str, amount: float = 1) -> None:
    """Increment a numeric attribute on the active span, if any.

    Used by the retry and fault layers to stamp "this request saw N
    retries / M injected faults" onto whatever is being traced.
    """
    span = current_span()
    if span is not None:
        span.add(key, amount)


class Tracer:
    """Mints traces and root spans bound to one recorder."""

    def __init__(self, recorder: SpanRecorder | None = None,
                 service: str = "nest"):
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self.service = service
        self._trace_ids = itertools.count(1)
        self._lock = threading.Lock()

    def _next_trace_id(self) -> str:
        with self._lock:
            return f"{self.service}-{next(self._trace_ids):06d}"

    def start_trace(self, name: str, **attrs: Any) -> Span:
        """A new root span beginning a fresh trace."""
        return Span(self._next_trace_id(), _next_span_id(), name,
                    recorder=self.recorder, attributes=attrs)

    def span(self, name: str, parent: Span | None = None,
             **attrs: Any) -> Span:
        """A span under ``parent`` (or the thread's active span, or a
        fresh trace when neither exists)."""
        parent = parent or current_span()
        if parent is not None:
            return parent.child(name, **attrs)
        return self.start_trace(name, **attrs)

    def adopt(self, name: str, trace_id: str, parent_span_id: str,
              **attrs: Any) -> Span:
        """A span continuing a trace started in *another* process.

        The remote caller's span becomes the parent: the trace_id is
        theirs, the span id is freshly minted here, and the resulting
        tree stitches across the wire when traces from both processes
        are merged.
        """
        return Span(trace_id, _next_span_id(), name,
                    parent_id=parent_span_id, recorder=self.recorder,
                    attributes=attrs)


# ----------------------------------------------------------------------
# wire-format trace context
# ----------------------------------------------------------------------
#: The one serialized form of a trace context: ``<trace_id>:<span_id>``.
#: Chirp carries it as a tagged trailing argument (``tc=<token>``) and
#: HTTP as the ``X-Repro-Trace`` header.  The grammar is deliberately
#: tight so a garbled or foreign token is ignored rather than adopted.
_TRACE_CONTEXT_RE = re.compile(
    r"^(?P<trace>[A-Za-z0-9][A-Za-z0-9._-]{0,127})"
    r":(?P<span>[A-Za-z0-9]{1,32})$")


def format_trace_context(span: Span) -> str:
    """Serialize ``span`` as the wire trace-context token."""
    return f"{span.trace_id}:{span.span_id}"


def parse_trace_context(token: Any) -> tuple[str, str] | None:
    """Parse a wire token into ``(trace_id, parent_span_id)``.

    Returns None for anything malformed -- old peers, proxies, or
    hand-typed requests must degrade to an untraced request, never to
    an error.
    """
    if not isinstance(token, str):
        return None
    match = _TRACE_CONTEXT_RE.match(token)
    if match is None:
        return None
    return match.group("trace"), match.group("span")


def current_trace_context() -> str | None:
    """The active span's wire token, or None when nothing is traced.

    Protocol clients call this right before serializing a request; the
    one thread-local read keeps untraced hot paths free of overhead.
    """
    span = current_span()
    if span is None:
        return None
    return format_trace_context(span)


def spans_from_dicts(records: Iterable[dict]) -> list[Span]:
    """Rebuild :class:`Span` objects from :meth:`Span.to_dict` records.

    The shard control plane ships spans between processes as plain
    dicts (picklable, version-tolerant); the parent rebuilds them here
    so the merged-trace exporter can treat local and shipped spans
    uniformly.  Unfinished or malformed records are skipped.
    """
    spans: list[Span] = []
    for rec in records:
        if not isinstance(rec, dict):
            continue
        trace_id = rec.get("trace_id")
        span_id = rec.get("span_id")
        duration = rec.get("duration")
        if not trace_id or not span_id or duration is None:
            continue
        span = Span(str(trace_id), str(span_id), str(rec.get("name", "?")),
                    parent_id=rec.get("parent_id"),
                    attributes=rec.get("attributes") or {})
        span.start = float(rec.get("start", 0.0))
        span.duration = float(duration)
        span.status = str(rec.get("status", "ok"))
        spans.append(span)
    return spans
