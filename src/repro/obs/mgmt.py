"""The management endpoint: HTTP scrape surface of a live appliance.

A tiny HTTP/1.0 server (raw sockets, thread-per-request, in the same
idiom as the rest of the live stack) bound next to the protocol
listeners, serving:

* ``GET /metrics``  -- Prometheus text exposition of the registry;
* ``GET /healthz``  -- the JSON health document (rolling throughput,
  per-protocol error rates, probe samples);
* ``GET /trace``    -- recent request spans as a Chrome trace-event
  JSON document (load it in ``chrome://tracing`` / Perfetto);
* ``GET /ad``       -- the live-health ClassAd attribute block.

Scrapes are read-only and cheap: each handler takes one consistent
snapshot (the registry's per-metric locks, the recorder's ring lock)
so a scrape concurrent with 32 in-flight transfers, an active fault
plan, or a draining ``stop()`` still returns an internally consistent
document.  ``stop()`` closes the listener and joins every scrape
thread -- the endpoint never leaks.
"""

from __future__ import annotations

import json
import os
import socket
import threading

from repro.obs.export_chrome import spans_to_chrome
from repro.obs.export_prom import render_prometheus
from repro.obs.health import HealthMonitor
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = ["ManagementEndpoint"]

logger = get_logger(__name__)


class ManagementEndpoint:
    """Serves observability documents for one appliance over HTTP."""

    def __init__(self, registry: MetricsRegistry,
                 health: HealthMonitor | None = None,
                 recorder: SpanRecorder | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 service: str = "nest",
                 ad_attributes=None, slo=None, refresh=None):
        self.registry = registry
        self.health = health
        self.recorder = recorder
        self.host = host
        self.service = service
        self._requested_port = port
        self.port: int | None = None
        #: optional callable returning the live-health ClassAd attrs.
        self.ad_attributes = ad_attributes
        #: optional callable returning the SLO report document.
        self.slo = slo
        #: optional hook run before /metrics and /slo scrapes, so
        #: derived gauges (the SLO engine's) are fresh at read time.
        self.refresh = refresh
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._conn_lock = threading.Lock()
        self._threads: dict[threading.Thread, socket.socket] = {}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ManagementEndpoint":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="obs-mgmt-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and join every scrape thread."""
        self._running = False
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
        with self._conn_lock:
            pending = list(self._threads.items())
        for thread, conn in pending:
            thread.join(timeout=2)
            if thread.is_alive():  # wedged scrape: cut the socket
                try:
                    conn.close()
                except OSError:
                    pass
                thread.join(timeout=1)
        with self._conn_lock:
            self._threads.clear()

    def active_scrapes(self) -> int:
        with self._conn_lock:
            return len(self._threads)

    # -- serving -----------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if not self._running:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            thread = threading.Thread(
                target=self._serve_one, name="obs-mgmt-scrape", daemon=True
            )
            with self._conn_lock:
                self._threads[thread] = conn
            thread._mgmt_conn = conn  # type: ignore[attr-defined]
            thread.start()

    def _serve_one(self) -> None:
        thread = threading.current_thread()
        conn: socket.socket = thread._mgmt_conn  # type: ignore[attr-defined]
        try:
            conn.settimeout(5.0)
            request = conn.recv(4096).decode("latin-1", "replace")
            path = "/"
            parts = request.split()
            if len(parts) >= 2 and parts[0] == "GET":
                path = parts[1]
            status, ctype, body = self._respond(path)
            head = (f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            conn.sendall(head.encode("latin-1") + body)
        except OSError:
            pass
        except Exception:  # noqa: BLE001 - a broken scrape must not leak
            logger.exception("management scrape failed")
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._conn_lock:
                self._threads.pop(thread, None)

    def _refresh(self) -> None:
        if self.refresh is None:
            return
        try:
            self.refresh()
        except Exception:  # noqa: BLE001 - a broken probe must not 500
            logger.exception("management refresh hook failed")

    def _respond(self, path: str) -> tuple[str, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            self._refresh()
            body = render_prometheus(self.registry).encode()
            return "200 OK", "text/plain; version=0.0.4", body
        if path == "/healthz":
            doc = self.health.snapshot() if self.health else {}
            return "200 OK", "application/json", json.dumps(
                doc, sort_keys=True).encode()
        if path == "/trace":
            recorder = self.recorder
            # The real OS pid keeps this document mergeable with other
            # workers' documents (distinct pid per process row).
            doc = spans_to_chrome(recorder, service=self.service,
                                  pid=os.getpid()) \
                if recorder else {"traceEvents": []}
            return "200 OK", "application/json", json.dumps(doc).encode()
        if path == "/slo":
            if self.slo is None:
                return "404 Not Found", "text/plain", b"no slo engine\n"
            self._refresh()
            return "200 OK", "application/json", json.dumps(
                self.slo(), sort_keys=True).encode()
        if path == "/ad":
            attrs = self.ad_attributes() if self.ad_attributes else {}
            return "200 OK", "application/json", json.dumps(
                attrs, sort_keys=True).encode()
        if path == "/":
            return ("200 OK", "text/plain",
                    b"repro management endpoint\n"
                    b"/metrics /healthz /trace /ad /slo\n")
        return "404 Not Found", "text/plain", b"not found\n"
