"""Live-health consolidation: measured performance for the ClassAd feed.

The paper's dispatcher "periodically consolidates information about
resource and data availability" (section 2.1); related replica-selection
work ranks storage servers by *observed* transfer performance rather
than static capacity.  :class:`HealthMonitor` is that consolidation
point for one appliance: it keeps a rolling-window throughput estimate,
per-protocol request/error tallies, and probes (queue depth, failure
ring size, fault/retry totals), and renders them both as ClassAd
attributes for :func:`repro.nest.advertise.build_advertisement` and as
a JSON health document for the management endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["HealthMonitor"]


class _RollingBytes:
    """Bytes-per-second over a sliding time window (bucketed)."""

    def __init__(self, window: float = 30.0, buckets: int = 30,
                 clock: Callable[[], float] = time.monotonic):
        self.window = window
        self.bucket_span = window / buckets
        self.clock = clock
        self._lock = threading.Lock()
        #: (bucket_index, bytes) pairs, oldest first.
        self._buckets: deque[tuple[int, float]] = deque()

    def record(self, nbytes: float) -> None:
        index = int(self.clock() / self.bucket_span)
        with self._lock:
            if self._buckets and self._buckets[-1][0] == index:
                old_index, total = self._buckets[-1]
                self._buckets[-1] = (old_index, total + nbytes)
            else:
                self._buckets.append((index, nbytes))
            self._trim(index)

    def _trim(self, now_index: int) -> None:
        horizon = now_index - int(self.window / self.bucket_span)
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    def per_second(self) -> float:
        index = int(self.clock() / self.bucket_span)
        with self._lock:
            self._trim(index)
            total = sum(b for _i, b in self._buckets)
        return total / self.window


class HealthMonitor:
    """One appliance's measured-performance consolidation point."""

    def __init__(self, registry: MetricsRegistry,
                 window: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.registry = registry
        self._throughput = _RollingBytes(window=window, clock=clock)
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        #: named probes sampled at snapshot time (queue depth...).
        self._probes: dict[str, Callable[[], float]] = {}

    # -- feed --------------------------------------------------------------
    def record_bytes(self, nbytes: float) -> None:
        """Feed data-path bytes into the rolling throughput window."""
        self._throughput.record(nbytes)

    def record_request(self, protocol: str, ok: bool) -> None:
        with self._lock:
            self._requests[protocol] = self._requests.get(protocol, 0) + 1
            if not ok:
                self._errors[protocol] = self._errors.get(protocol, 0) + 1

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        """Register a live probe sampled at every snapshot."""
        with self._lock:
            self._probes[name] = probe

    # -- read --------------------------------------------------------------
    def throughput_bps(self) -> float:
        return self._throughput.per_second()

    def error_rate(self, protocol: str) -> float:
        with self._lock:
            total = self._requests.get(protocol, 0)
            if not total:
                return 0.0
            return self._errors.get(protocol, 0) / total

    def snapshot(self) -> dict[str, Any]:
        """One consistent health document (JSON-able)."""
        with self._lock:
            requests = dict(self._requests)
            errors = dict(self._errors)
            probes = dict(self._probes)
        sampled: dict[str, float] = {}
        for name, probe in probes.items():
            try:
                sampled[name] = float(probe())
            except Exception:  # noqa: BLE001 - one dead probe != no health
                sampled[name] = 0.0
        return {
            "throughput_bps": self.throughput_bps(),
            "requests": requests,
            "errors": errors,
            "error_rates": {
                proto: errors.get(proto, 0) / count
                for proto, count in requests.items() if count
            },
            "probes": sampled,
        }

    def ad_attributes(self) -> dict[str, Any]:
        """Health rendered as ClassAd attributes (§2.1's consolidation).

        ``ThroughputMBps`` is the measured rolling data-path rate the
        discovery layer ranks on; queue depth, error rates, and
        fault/retry totals give matchmakers (and operators) the "what
        is it doing right now" picture static space numbers cannot.
        """
        doc = self.snapshot()
        attrs: dict[str, Any] = {
            "ThroughputMBps": round(doc["throughput_bps"] / 1e6, 6),
            "QueueDepth": int(doc["probes"].get("queue_depth", 0)),
            "TransferFailures": int(doc["probes"].get("transfer_failures", 0)),
            "FaultsInjected": int(doc["probes"].get("faults_injected", 0)),
            "RetriesObserved": int(doc["probes"].get("retries", 0)),
            "RequestsServed": int(sum(doc["requests"].values())),
        }
        for proto, rate in sorted(doc["error_rates"].items()):
            attrs[f"{proto.capitalize()}ErrorRate"] = round(rate, 6)
        return attrs
