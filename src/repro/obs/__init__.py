"""``repro.obs``: one telemetry layer for the whole appliance.

Everything measured in the reproduction flows through this package:

* :mod:`repro.obs.metrics` -- the thread-safe registry (counters,
  gauges, histograms with bounded label sets);
* :mod:`repro.obs.spans` -- per-connection request traces with timed
  child spans (parse, authorize, queue-wait, transfer, commit);
* :mod:`repro.obs.log` -- the structured ``repro.*`` logger namespace
  and the CLI console channel;
* :mod:`repro.obs.export_prom` / :mod:`repro.obs.export_chrome` --
  Prometheus text exposition and Chrome trace-event JSON;
* :mod:`repro.obs.health` -- rolling throughput, queue depth, and
  error rates consolidated for the live-health ClassAd feed;
* :mod:`repro.obs.mgmt` -- the HTTP management endpoint.

:class:`Observability` bundles one appliance's registry, tracer, span
recorder, and health monitor so the server wires a single object
through its layers.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export_chrome import (
    merge_chrome_traces,
    sim_trace_to_chrome,
    spans_to_chrome,
    validate_trace,
    write_trace,
)
from repro.obs.export_prom import render_prometheus
from repro.obs.health import HealthMonitor
from repro.obs.log import console, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.slo import SloEngine, SloObjective, default_objectives
from repro.obs.spans import (
    Span,
    SpanRecorder,
    Tracer,
    annotate,
    current_span,
    current_trace_context,
    format_trace_context,
    maybe_span,
    parse_trace_context,
    spans_from_dicts,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HealthMonitor",
    "MetricsRegistry",
    "Observability",
    "SloEngine",
    "SloObjective",
    "Span",
    "SpanRecorder",
    "Tracer",
    "annotate",
    "console",
    "current_span",
    "current_trace_context",
    "default_objectives",
    "format_trace_context",
    "get_logger",
    "global_registry",
    "maybe_span",
    "merge_chrome_traces",
    "parse_trace_context",
    "render_prometheus",
    "reset_global_registry",
    "sim_trace_to_chrome",
    "spans_from_dicts",
    "spans_to_chrome",
    "validate_trace",
    "write_trace",
]


class Observability:
    """One appliance's telemetry: registry + tracer + health, bundled."""

    def __init__(self, service: str = "nest", span_limit: int = 4096,
                 health_window: float = 30.0):
        self.service = service
        self.registry = MetricsRegistry(namespace=service)
        self.recorder = SpanRecorder(limit=span_limit)
        self.tracer = Tracer(self.recorder, service=service)
        self.health = HealthMonitor(self.registry, window=health_window)

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition."""
        return render_prometheus(self.registry)

    def chrome_trace(self) -> dict:
        """Recorded spans as a Chrome trace-event document."""
        return spans_to_chrome(self.recorder, service=self.service)

    def health_attributes(self) -> dict[str, Any]:
        """Live-health ClassAd attributes (measured, not static)."""
        return self.health.ad_attributes()
