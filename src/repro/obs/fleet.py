"""Fleet-wide telemetry merging for the multi-process shard layer.

PR 7's shard layer split one appliance into N worker processes, which
fragmented observability: each worker has its own MetricsRegistry and
SpanRecorder, so ``/metrics`` became N per-shard silos and no single
``/trace`` document could explain a request the kernel routed to an
arbitrary worker.  This module is the parent-side half of the repair:
workers periodically ship :meth:`MetricsRegistry.snapshot` dicts and
``Span.to_dict`` lists over the existing control pipe, and the
functions here merge them into one operator-facing view:

* :func:`render_fleet_prometheus` -- one Prometheus exposition where
  **counters are summed** across shards (a request is a request no
  matter which worker served it), **gauges keep one series per shard**
  labeled ``shard="N"`` (point-in-time values like active connections
  are meaningless summed without attribution), and **histograms are
  bucket-merged** (cumulative bucket arrays, sums, and counts add
  element-wise because every worker shares the same bucket bounds).
* :func:`merge_fleet_trace` -- one Chrome trace document with a
  distinct ``pid`` (the worker's real OS pid) and ``process_name``
  per worker, so a trace that crossed shards renders as one timeline
  spanning several process rows.
* :class:`FleetManagementEndpoint` -- the parent's ManagementEndpoint
  subclass serving the merged documents (plus ``/slo`` evaluated over
  the merged counters) from the shipped snapshots.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

from repro.obs.export_chrome import spans_to_chrome, merge_chrome_traces
from repro.obs.export_prom import _format_value, _labels
from repro.obs.mgmt import ManagementEndpoint
from repro.obs.spans import spans_from_dicts

__all__ = [
    "FleetManagementEndpoint",
    "merge_fleet_trace",
    "merge_snapshots",
    "render_fleet_prometheus",
]


def _split_key(flat: str, labelnames: tuple[str, ...]) -> tuple[str, ...]:
    """Invert the ``",".join(key)`` flattening snapshot() applies."""
    if not labelnames:
        return ()
    return tuple(flat.split(",", len(labelnames) - 1))


def merge_snapshots(
        snapshots: Mapping[str, Mapping[str, Any]]) -> dict[str, dict]:
    """Merge per-shard registry snapshots into one fleet snapshot.

    ``snapshots`` maps a shard label (``"0"``, ``"1"``, ...) to that
    worker's :meth:`MetricsRegistry.snapshot`.  Counters and histogram
    series merge by summing; gauge series are kept per-shard under a
    synthetic trailing ``shard`` label.  Metric schema (kind, help,
    buckets) is taken from the first shard that reports the metric;
    a shard shipping an incompatible shape for the same name (bucket
    count mismatch after a rolling upgrade, say) is skipped for that
    metric rather than corrupting the merge.
    """
    fleet: dict[str, dict] = {}
    for shard in sorted(snapshots):
        snap = snapshots[shard]
        if not isinstance(snap, Mapping):
            continue
        for name, entry in snap.items():
            if not isinstance(entry, Mapping):
                continue
            kind = entry.get("kind", "untyped")
            labelnames = tuple(entry.get("labels") or ())
            merged = fleet.get(name)
            if merged is None:
                merged = fleet[name] = {
                    "kind": kind,
                    "labels": labelnames,
                    "help": entry.get("help", ""),
                    "series": {},
                }
                if kind == "histogram":
                    merged["buckets"] = list(entry.get("buckets") or ())
            elif merged["kind"] != kind or merged["labels"] != labelnames:
                continue
            series = entry.get("series") or {}
            if kind == "gauge":
                # one series per shard: attribution beats a meaningless sum
                for key, value in series.items():
                    merged["series"][(key, shard)] = value
                continue
            for key, value in series.items():
                have = merged["series"].get(key)
                if kind == "histogram":
                    if not isinstance(value, Mapping):
                        continue
                    if have is None:
                        merged["series"][key] = {
                            "count": value.get("count", 0),
                            "sum": value.get("sum", 0.0),
                            "buckets": list(value.get("buckets") or ()),
                        }
                    elif len(have["buckets"]) == len(value.get("buckets", ())):
                        have["count"] += value.get("count", 0)
                        have["sum"] += value.get("sum", 0.0)
                        have["buckets"] = [a + b for a, b in
                                           zip(have["buckets"],
                                               value["buckets"])]
                else:
                    merged["series"][key] = (have or 0) + value
    return fleet


def render_fleet_prometheus(
        snapshots: Mapping[str, Mapping[str, Any]]) -> str:
    """Render merged per-shard snapshots as one Prometheus exposition."""
    fleet = merge_snapshots(snapshots)
    lines: list[str] = []
    for name in fleet:
        entry = fleet[name]
        kind = entry["kind"]
        labelnames = entry["labels"]
        lines.append(f"# HELP {name} {entry['help'] or name}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = [*entry.get("buckets", ()), float("inf")]
            for flat, data in sorted(entry["series"].items()):
                key = _split_key(flat, labelnames)
                for bound, cumulative in zip(bounds, data["buckets"]):
                    le = "+Inf" if bound == float("inf") \
                        else _format_value(float(bound))
                    labels = _labels(labelnames, key, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                base = _labels(labelnames, key)
                lines.append(f"{name}_sum{base} {_format_value(data['sum'])}")
                lines.append(f"{name}_count{base} {data['count']}")
            continue
        if kind == "gauge":
            for (flat, shard), value in sorted(entry["series"].items()):
                key = _split_key(flat, labelnames)
                labels = _labels(labelnames, key, (("shard", shard),))
                lines.append(f"{name}{labels} {_format_value(value)}")
            continue
        for flat, value in sorted(entry["series"].items()):
            key = _split_key(flat, labelnames)
            labels = _labels(labelnames, key)
            lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def merge_fleet_trace(
        worker_spans: Mapping[str, tuple[str, int, list[dict]]]) -> dict:
    """One Chrome trace document from per-worker shipped span dicts.

    ``worker_spans`` maps a shard label to ``(service, pid, spans)``
    where ``spans`` is a list of ``Span.to_dict`` records; each worker
    renders under its own pid with its own ``process_name`` row.
    """
    docs = []
    for shard in sorted(worker_spans):
        service, pid, records = worker_spans[shard]
        docs.append(spans_to_chrome(spans_from_dicts(records),
                                    service=service, pid=pid))
    return merge_chrome_traces(docs)


class FleetManagementEndpoint(ManagementEndpoint):
    """The shard parent's management endpoint.

    Serves the same paths as a single appliance's endpoint, but every
    document is computed from the workers' shipped telemetry:

    * ``/metrics`` -- :func:`render_fleet_prometheus` over the latest
      snapshot from each worker;
    * ``/trace`` -- :func:`merge_fleet_trace`, one pid per worker;
    * ``/healthz`` and ``/slo`` -- provider callables supplied by the
      ShardGroup (pipe-health reports; SLO evaluation over the merged
      counters).
    """

    def __init__(self, *,
                 snapshots: Callable[[], Mapping[str, Mapping[str, Any]]],
                 spans: Callable[[], Mapping[str, tuple[str, int,
                                                        list[dict]]]],
                 health: Callable[[], dict] | None = None,
                 slo: Callable[[], dict] | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 service: str = "nest-fleet"):
        super().__init__(registry=None, host=host, port=port,
                         service=service)
        self._snapshots = snapshots
        self._span_source = spans
        self._fleet_health = health
        self._fleet_slo = slo

    def _respond(self, path: str) -> tuple[str, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            body = render_fleet_prometheus(self._snapshots()).encode()
            return "200 OK", "text/plain; version=0.0.4", body
        if path == "/trace":
            doc = merge_fleet_trace(self._span_source())
            return "200 OK", "application/json", json.dumps(doc).encode()
        if path == "/healthz":
            body = self._fleet_health() if self._fleet_health else {"ok": True}
            return "200 OK", "application/json", json.dumps(
                body, sort_keys=True).encode()
        if path == "/slo":
            if self._fleet_slo is None:
                return "404 Not Found", "text/plain", b"no slo engine\n"
            return "200 OK", "application/json", json.dumps(
                self._fleet_slo(), sort_keys=True).encode()
        return super()._respond(path)
