"""Thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` is the single source of truth for every
measured quantity in an appliance -- request counts, bytes moved,
queue depth, fault and retry totals, and the re-homed ``repro.perf``
kernel counters all land here.  The paper's manageability argument
("the NeST periodically consolidates information about resource and
data availability", section 2.1) needs exactly this: one place an
operator, the management endpoint, and the ClassAd advertisement can
all read consistently.

Design points:

* **Bounded label sets.**  Every labelled metric caps how many
  distinct label combinations it will track (``max_series``); beyond
  the cap, updates collapse into a single ``{"...": "overflow"}``
  series instead of growing without bound.  Labels are things like
  protocol, operation, user-class, and outcome -- all low-cardinality
  by construction; the cap is a backstop against a bug (or an
  attacker) minting series from unbounded input.
* **Cheap hot path.**  An unlabelled counter increment is one lock
  acquire and one integer add; the lock is per-metric so unrelated
  instruments never contend.
* **Consistent snapshots.**  :meth:`MetricsRegistry.snapshot` walks
  every metric under its lock and returns plain dictionaries, so a
  scrape concurrent with updates sees each series at a single point
  in time (never a torn half-update).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

#: Default histogram buckets: latencies in seconds (and doubles nicely
#: for byte counts when scaled by the caller).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Series key used once a metric exceeds its label-set bound.
OVERFLOW = ("overflow",)


def _series_key(labelnames: tuple[str, ...],
                labels: Mapping[str, str]) -> tuple[str, ...]:
    try:
        return tuple(str(labels[name]) for name in labelnames)
    except KeyError as exc:
        raise ValueError(f"missing label {exc.args[0]!r}; "
                         f"expected {labelnames!r}") from exc


class _Metric:
    """Base: name, help text, label schema, bounded series map."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = (), max_series: int = 64):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.max_series = max_series
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], Any] = {}
        self.dropped_series = 0

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if not self.labelnames:
            if labels:
                raise ValueError(f"metric {self.name!r} takes no labels")
            return ()
        key = _series_key(self.labelnames, labels)
        if key not in self._series and len(self._series) >= self.max_series:
            self.dropped_series += 1
            return ("overflow",) * len(self.labelnames)
        return key

    def series(self) -> dict[tuple[str, ...], Any]:
        """Point-in-time copy of every series value."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._series.values())


class Gauge(_Metric):
    """A value that can go up and down; optionally callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = (), max_series: int = 64,
                 callback: Optional[Callable[[], float]] = None):
        super().__init__(name, help_text, labelnames, max_series)
        if callback is not None and self.labelnames:
            raise ValueError("callback gauges cannot take labels")
        self.callback = callback

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        with self._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if self.callback is not None:
            try:
                return float(self.callback())
            except Exception:  # noqa: BLE001 - a broken probe reads as 0
                return 0.0
        with self._lock:
            return self._series.get(self._key(labels), 0)

    def series(self) -> dict[tuple[str, ...], Any]:
        if self.callback is not None:
            return {(): self.value()}
        return super().series()


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.count = 0
        self.total = 0.0


class Histogram(_Metric):
    """Bucketed distribution (durations, sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Iterable[str] = (), max_series: int = 64,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, max_series)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def observe(self, value: float, **labels: str) -> None:
        with self._lock:
            key = self._key(labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.count += 1
            series.total += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    return
            series.bucket_counts[-1] += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.count if series else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.total if series else 0.0

    def series(self) -> dict[tuple[str, ...], Any]:
        """Snapshot as {labels: {"count", "sum", "buckets"}} dicts."""
        with self._lock:
            out = {}
            for key, s in self._series.items():
                cumulative, acc = [], 0
                for c in s.bucket_counts:
                    acc += c
                    cumulative.append(acc)
                out[key] = {"count": s.count, "sum": s.total,
                            "buckets": cumulative}
            return out


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics."""

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = (),
                max_series: int = 64) -> Counter:
        return self._register(Counter, name, help_text,
                              labelnames=labelnames, max_series=max_series)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = (),
              max_series: int = 64) -> Gauge:
        return self._register(Gauge, name, help_text,
                              labelnames=labelnames, max_series=max_series)

    def gauge_callback(self, name: str, callback: Callable[[], float],
                       help_text: str = "") -> Gauge:
        """A gauge whose value is probed at read time (queue depth...)."""
        with self._lock:
            existing = self._metrics.get(name)
            if isinstance(existing, Gauge):
                existing.callback = callback
                return existing
            if existing is not None:
                raise ValueError(f"metric {name!r} already registered as "
                                 f"{existing.kind}, not gauge")
            metric = Gauge(name, help_text, callback=callback)
            self._metrics[name] = metric
            return metric

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (), max_series: int = 64,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help_text,
                              labelnames=labelnames, max_series=max_series,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every metric's series as plain data, one point in time.

        The dict is picklable and self-describing (kind, label schema,
        help text, histogram bucket bounds), so shard workers can ship
        it over the control pipe and the parent can merge and re-render
        it without access to the live metric objects.
        """
        out: dict[str, dict[str, Any]] = {}
        for metric in self.metrics():
            entry: dict[str, Any] = {
                "kind": metric.kind,
                "labels": metric.labelnames,
                "help": metric.help,
                "series": {",".join(k) if k else "": v
                           for k, v in metric.series().items()},
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)


# ----------------------------------------------------------------------
# process-wide default registry
# ----------------------------------------------------------------------
#
# Components with no server context (the client retry layer, fault
# plans constructed in tests, the sim-kernel snapshot helpers) publish
# here; a NestServer owns its own private registry so side-by-side
# appliances stay isolated.
_global_lock = threading.Lock()
_global: MetricsRegistry | None = None


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _global
    with _global_lock:
        if _global is None:
            _global = MetricsRegistry(namespace="repro")
        return _global


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh process-wide registry (test isolation)."""
    global _global
    with _global_lock:
        _global = MetricsRegistry(namespace="repro")
        return _global
