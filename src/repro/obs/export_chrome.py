"""Chrome trace-event JSON export for live spans and sim timelines.

Writes the `Trace Event Format`_ consumed by ``chrome://tracing`` and
Perfetto: a JSON object whose ``traceEvents`` list holds complete
("ph": "X") events with microsecond timestamps.  Two sources feed it:

* **live spans** from a :class:`~repro.obs.spans.SpanRecorder` --
  every request's span tree becomes a nested flame row, one track
  (``tid``) per trace so concurrent connections render side by side;
* **sim-kernel timelines** from
  :class:`~repro.sim.trace.KernelTrace` -- simulated seconds map to
  microseconds, processes become duration events and individual event
  dispatches become instant events.

:func:`validate_trace` is the schema check the tests (and any future
tooling) assert exported documents against.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "merge_chrome_traces",
    "spans_to_chrome",
    "sim_trace_to_chrome",
    "validate_trace",
    "write_trace",
]

#: Phases this exporter emits (complete, instant, metadata).
_KNOWN_PHASES = {"X", "i", "M"}


def _span_event(span: Span, pid: int, tid_of: dict[str, int]) -> dict:
    tid = tid_of.setdefault(span.trace_id, len(tid_of) + 1)
    args = {"trace_id": span.trace_id, "span_id": span.span_id,
            "status": span.status}
    if span.parent_id:
        args["parent_id"] = span.parent_id
    args.update({k: v for k, v in span.attributes.items()
                 if isinstance(v, (str, int, float, bool))})
    return {
        "name": span.name,
        "cat": "span",
        "ph": "X",
        "ts": round(span.start * 1e6, 3),
        "dur": round((span.duration or 0.0) * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def spans_to_chrome(spans: Iterable[Span] | SpanRecorder,
                    service: str = "nest", pid: int = 1) -> dict:
    """Convert finished spans into a Chrome trace document.

    ``pid`` identifies the emitting process: single-process exports can
    keep the default, but anything destined for a fleet merge must pass
    a distinct pid per worker (the real OS pid works well) or the
    merged document's rows collide.  The per-pid ``process_name``
    metadata keeps each worker labeled in the merged view.
    """
    if isinstance(spans, SpanRecorder):
        spans = spans.spans()
    tid_of: dict[str, int] = {}
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": service},
    }]
    for span in spans:
        if span.ended:
            events.append(_span_event(span, pid, tid_of))
    for trace_id, tid in tid_of.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": trace_id},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_chrome_traces(docs: Iterable[dict],
                        trace_id: str | None = None) -> dict:
    """Stitch per-process trace documents into one fleet document.

    Each input doc must already carry its own distinct ``pid`` (see
    :func:`spans_to_chrome`); merging concatenates their events,
    dropping exact duplicates -- the same span scraped from two
    endpoints, or shipped twice by the shard control plane -- keyed by
    (pid, tid, ts, name, ph).  With ``trace_id`` given, span events of
    other traces are filtered out while metadata rows survive, which is
    how ``repro trace collect`` isolates one federated GET.
    """
    events: list[dict] = []
    seen: set[tuple] = set()
    for doc in docs:
        if not isinstance(doc, dict):
            continue
        for ev in doc.get("traceEvents", []):
            if not isinstance(ev, dict):
                continue
            if trace_id is not None and ev.get("ph") in ("X", "i"):
                args = ev.get("args", {})
                if not isinstance(args, dict) \
                        or args.get("trace_id") != trace_id:
                    continue
            key = (ev.get("pid"), ev.get("tid"), ev.get("ts"),
                   ev.get("name"), ev.get("ph"))
            if key in seen:
                continue
            seen.add(key)
            events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def sim_trace_to_chrome(trace: Any, service: str = "sim", pid: int = 2) -> dict:
    """Convert a :class:`~repro.sim.trace.KernelTrace` to Chrome form.

    Simulated seconds become trace microseconds.  Process lifetimes
    (``proc`` records carrying start and end times) render as duration
    events on per-process tracks; bare event dispatches render as
    instant events on track 0.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": service},
    }]
    tids: dict[str, int] = {}
    for record in trace.records():
        kind, name, t0, t1 = record
        if kind == "proc":
            tid = tids.setdefault(name, len(tids) + 1)
            events.append({
                "name": name, "cat": "process", "ph": "X",
                "ts": round(t0 * 1e6, 3),
                "dur": round(max(t1 - t0, 0.0) * 1e6, 3),
                "pid": pid, "tid": tid, "args": {},
            })
        else:
            events.append({
                "name": name, "cat": "event", "ph": "i",
                "ts": round(t0 * 1e6, 3), "pid": pid, "tid": 0,
                "s": "t", "args": {},
            })
    for name, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_trace(doc: Any) -> list[str]:
    """Check a document against the trace-event schema.

    Returns a list of problems (empty = valid): the top-level shape,
    required per-event keys, known phases, numeric non-negative
    timestamps, JSON-serializability of ``args``, and -- because a
    botched fleet merge manifests exactly this way -- no two span/
    instant events sharing the same (pid, tid, ts, name).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    seen: set[tuple] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if not isinstance(ev.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        args = ev.get("args", {})
        if not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
        if ph in ("X", "i"):
            key = (ev.get("pid"), ev.get("tid"), ev.get("ts"),
                   ev.get("name"))
            if key in seen:
                problems.append(
                    f"{where}: duplicate event (pid, tid, ts, name)={key}")
            seen.add(key)
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems


def write_trace(path: str, doc: dict) -> None:
    """Write a trace document (refusing to write an invalid one)."""
    problems = validate_trace(doc)
    if problems:
        raise ValueError(f"invalid trace document: {problems[0]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
