"""Deterministic fault injection for the live stack.

A :class:`FaultPlan` is a seedable, thread-safe schedule of connection
faults.  Servers (:class:`repro.nest.server.NestServer`,
:class:`repro.jbos.base.NativeServer`) and every protocol client accept
an optional ``faults=`` hook; when present, each accepted or dialled
socket is wrapped so the plan can inject

* **resets** -- the connection dies with ``ECONNRESET`` mid-transfer;
* **short reads** -- the stream ends early (the peer sees a clean EOF
  with bytes still owed);
* **stalls** -- I/O freezes for a configured interval, long enough to
  trip the peer's socket timeout or a retry deadline;
* **accept failures** -- the server tears a connection down immediately
  after ``accept()``;
* **connect failures** -- the client's dial fails outright.

Faults are matched per *connection ordinal* (1st, 2nd, ... socket the
plan sees) and per byte threshold within a connection, so a plan like
``FaultPlan.reset_once()`` is fully deterministic: the first connection
resets after N bytes, every later connection is clean.  That is the
substrate the retry layer (:mod:`repro.client.retry`) is tested
against, and the seed only matters for rules with ``probability < 1``.

The plan records every fault it fires in :attr:`FaultPlan.events` so
tests can assert not just the outcome but that the intended fault
actually happened.
"""

from __future__ import annotations

import itertools
import random
import socket as _socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.obs import spans as _spans
from repro.obs.metrics import global_registry

__all__ = [
    "FaultAction",
    "FaultEvent",
    "FaultRule",
    "FaultPlan",
    "FaultInjected",
    "FaultySocket",
    "FaultyStream",
]

# Fault actions understood by :class:`FaultRule`.
RESET = "reset"
SHORT = "short"
STALL = "stall"
DROP = "drop"  # accept/connect-time: kill the connection outright


class FaultAction:
    """Namespace of action names (strings, so plans serialise trivially)."""

    RESET = RESET
    SHORT = SHORT
    STALL = STALL
    DROP = DROP


def _observe_fault(op: str, action: str) -> None:
    """Publish one fired fault: a process-wide counter (fault plans
    have no server context) plus an annotation on whatever request
    span the victim I/O is running under."""
    global_registry().counter(
        "repro_faults_injected_total",
        "Faults fired by fault plans, by I/O op and action.",
        labelnames=("op", "action"),
    ).inc(op=op, action=action)
    _spans.annotate("faults", 1)


class FaultInjected(ConnectionResetError):
    """A reset injected by a :class:`FaultPlan` (subclass of the real
    thing so victim code cannot tell it from a genuine peer reset)."""


@dataclass
class FaultEvent:
    """One fault the plan actually fired (for test assertions)."""

    conn: int  #: connection ordinal (1-based)
    op: str  #: "accept", "connect", "read", or "write"
    action: str  #: RESET / SHORT / STALL / DROP
    at_bytes: int  #: bytes moved in that direction before the fault


@dataclass
class FaultRule:
    """One deterministic fault trigger.

    ``op`` selects the I/O direction the rule watches: ``"read"`` and
    ``"write"`` fire inside data movement, ``"accept"`` fires as the
    server takes the connection, ``"connect"`` as the client dials.
    ``connections`` names the connection ordinals (1-based) the rule
    applies to -- an iterable, or ``None`` for "every connection".
    ``after_bytes`` delays a read/write fault until that many bytes
    have moved in the watched direction on that connection.  ``times``
    bounds how often the rule fires across the whole plan (``None`` =
    unlimited, at most once per connection either way).
    ``probability`` gates each candidate firing through the plan's
    seeded RNG, so anything below 1.0 is still reproducible per seed.
    """

    op: str
    action: str
    connections: Optional[frozenset[int]] = None
    after_bytes: int = 0
    times: Optional[int] = 1
    stall_seconds: float = 0.5
    probability: float = 1.0
    fired: int = field(default=0, compare=False)
    #: connections this rule already fired on (one fault per conn).
    _done_conns: set[int] = field(default_factory=set, compare=False)

    def __post_init__(self) -> None:
        if self.op not in ("read", "write", "accept", "connect"):
            raise ValueError(f"unknown fault op {self.op!r}")
        if self.action not in (RESET, SHORT, STALL, DROP):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.connections is not None:
            self.connections = frozenset(self.connections)

    def wants(self, conn: int, op: str, moved: int) -> bool:
        """Would this rule fire for this conn/op/byte-count? (no RNG)"""
        if op != self.op:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if conn in self._done_conns:
            return False
        if self.connections is not None and conn not in self.connections:
            return False
        return moved >= self.after_bytes

    def mark_fired(self, conn: int) -> None:
        self.fired += 1
        self._done_conns.add(conn)


class FaultPlan:
    """A seeded, shareable schedule of injected connection faults."""

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        self.rules: list[FaultRule] = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._conn_ids = itertools.count(1)
        self.events: list[FaultEvent] = []

    # -- convenience constructors -----------------------------------------
    @classmethod
    def clean(cls) -> "FaultPlan":
        """A plan that never injects anything (useful as a default)."""
        return cls()

    @classmethod
    def reset_once(cls, after_bytes: int = 0, connection: int = 1,
                   op: str = "read", seed: int = 0) -> "FaultPlan":
        """Reset exactly one connection (the ``connection``-th one the
        plan sees), leaving retries on fresh connections clean."""
        return cls([FaultRule(op=op, action=RESET,
                              connections=frozenset({connection}),
                              after_bytes=after_bytes, times=1)], seed=seed)

    @classmethod
    def reset_each_first_attempt(cls, count: int = 1, after_bytes: int = 0,
                                 seed: int = 0) -> "FaultPlan":
        """Reset the first ``count`` connections once each -- the
        "reset-once-per-connection" plan of the acceptance criteria:
        each initial attempt dies, each retry (a later connection)
        succeeds."""
        conns = frozenset(range(1, count + 1))
        return cls([
            FaultRule(op="read", action=RESET, connections=conns,
                      after_bytes=after_bytes, times=count),
            FaultRule(op="write", action=RESET, connections=conns,
                      after_bytes=after_bytes, times=count),
        ], seed=seed)

    @classmethod
    def short_read(cls, after_bytes: int, connection: int | None = 1,
                   seed: int = 0) -> "FaultPlan":
        """End the stream early after ``after_bytes`` (a short read for
        whoever is receiving)."""
        conns = frozenset({connection}) if connection is not None else None
        return cls([FaultRule(op="write", action=SHORT, connections=conns,
                              after_bytes=after_bytes, times=1)], seed=seed)

    @classmethod
    def stall(cls, seconds: float, op: str = "write",
              connections: Iterable[int] | None = None,
              times: Optional[int] = None, seed: int = 0) -> "FaultPlan":
        """Freeze I/O for ``seconds`` on matching connections."""
        conns = frozenset(connections) if connections is not None else None
        return cls([FaultRule(op=op, action=STALL, connections=conns,
                              stall_seconds=seconds, times=times)], seed=seed)

    @classmethod
    def fail_accept(cls, count: int = 1, seed: int = 0) -> "FaultPlan":
        """Kill the first ``count`` accepted connections immediately."""
        return cls([FaultRule(op="accept", action=DROP,
                              connections=frozenset(range(1, count + 1)),
                              times=count)], seed=seed)

    @classmethod
    def fail_connect(cls, count: int = 1, seed: int = 0) -> "FaultPlan":
        """Refuse the first ``count`` client dials."""
        return cls([FaultRule(op="connect", action=DROP,
                              connections=frozenset(range(1, count + 1)),
                              times=count)], seed=seed)

    # -- wiring ------------------------------------------------------------
    #
    # Every connection attempt the plan sees -- an accept, a dial, or a
    # bare wrap -- consumes exactly one ordinal, so rules addressed to
    # "connection 1" mean the first attempt regardless of which side
    # created it or whether it survived its accept/connect gate.

    def wrap_socket(self, sock, label: str = "") -> "FaultySocket":
        """Wrap an established socket (no accept/connect gating); all
        I/O through the wrapper is subject to the read/write rules."""
        return FaultySocket(sock, self, self._next_conn(), label=label)

    def wrap_accept(self, sock, label: str = "") -> "FaultySocket | None":
        """Gate + wrap a just-accepted socket.  Returns None when an
        accept fault fires -- the socket is already closed and the
        caller must not hand it to a handler."""
        conn = self._next_conn()
        if self._fire_conn_event(conn, "accept"):
            try:
                sock.close()
            except OSError:
                pass
            return None
        return FaultySocket(sock, self, conn, label=label)

    def wrap_connect(self, dial: Callable[[], Any], label: str = "") -> "FaultySocket":
        """Gate + dial + wrap an outbound connection.  ``dial`` is only
        invoked when no connect fault fires; otherwise
        :exc:`FaultInjected` is raised (a ``ConnectionResetError``)."""
        conn = self._next_conn()
        if self._fire_conn_event(conn, "connect"):
            raise FaultInjected(f"connect refused by fault plan (conn {conn})")
        return FaultySocket(dial(), self, conn, label=label)

    def _next_conn(self) -> int:
        with self._lock:
            return next(self._conn_ids)

    def _fire_conn_event(self, conn: int, op: str) -> bool:
        with self._lock:
            for rule in self.rules:
                if rule.wants(conn, op, 0) and self._roll(rule):
                    rule.mark_fired(conn)
                    self.events.append(FaultEvent(conn, op, rule.action, 0))
                    _observe_fault(op, rule.action)
                    return True
        return False

    def _roll(self, rule: FaultRule) -> bool:
        return rule.probability >= 1.0 or self._rng.random() < rule.probability

    # -- wrapper callbacks --------------------------------------------------
    def before_io(self, conn: int, op: str, moved: int) -> str | None:
        """The wrapper asks, before each read/write, whether a fault
        fires.  Returns the action (handled by the wrapper) or None.
        Stalls sleep *here* (outside the lock) and then let the I/O
        proceed."""
        with self._lock:
            for rule in self.rules:
                if rule.wants(conn, op, moved) and self._roll(rule):
                    rule.mark_fired(conn)
                    self.events.append(FaultEvent(conn, op, rule.action, moved))
                    action = rule.action
                    stall = rule.stall_seconds
                    break
            else:
                return None
        _observe_fault(op, action)
        if action == STALL:
            self._sleep(stall)
            return None
        return action

    # -- introspection -----------------------------------------------------
    def fired(self, action: str | None = None) -> int:
        """How many faults fired (optionally of one action)."""
        with self._lock:
            if action is None:
                return len(self.events)
            return sum(1 for e in self.events if e.action == action)

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary (for logs and failure reports)."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [
                    {"op": r.op, "action": r.action,
                     "connections": sorted(r.connections) if r.connections else None,
                     "after_bytes": r.after_bytes, "times": r.times,
                     "fired": r.fired}
                    for r in self.rules
                ],
                "events": len(self.events),
            }


#: Fault-accounting granularity for stream writes.  Large writes are
#: guarded and accounted in slices of this size so an ``after_bytes``
#: threshold *inside* a big write still fires (a real kernel accepts
#: part of a large write before the connection dies); without slicing,
#: a data path that moves a whole payload in one ``write`` would jump
#: over every mid-stream threshold.
_WRITE_SLICE = 16 * 1024


class FaultyStream:
    """A file-object wrapper (the ``makefile`` side of a FaultySocket)."""

    def __init__(self, raw, fsock: "FaultySocket", direction: str):
        self._raw = raw
        self._fsock = fsock
        self._direction = direction  # "read" or "write"

    # -- reads -------------------------------------------------------------
    def read(self, n: int = -1) -> bytes:
        data = self._fsock._guard_read(lambda: self._raw.read(n))
        self._fsock._account("read", len(data))
        return data

    def readline(self, limit: int = -1) -> bytes:
        data = self._fsock._guard_read(lambda: self._raw.readline(limit))
        self._fsock._account("read", len(data))
        return data

    # -- writes ------------------------------------------------------------
    def write(self, data) -> int:
        view = memoryview(data)
        total = len(view)
        done = 0
        while True:
            chunk = view[done:done + _WRITE_SLICE]
            self._fsock._guard_write(len(chunk))
            self._raw.write(chunk)
            self._fsock._account("write", len(chunk))
            done += len(chunk)
            if done >= total:
                return total

    def flush(self) -> None:
        self._raw.flush()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)


class FaultySocket:
    """A socket proxy that consults a :class:`FaultPlan` on every I/O.

    Covers both access styles the stack uses: raw ``recv``/``sendall``
    (FTP data channels) and buffered ``makefile`` streams (everything
    else).  Byte counters are shared across both so ``after_bytes``
    thresholds see the connection's true totals.
    """

    def __init__(self, sock, plan: FaultPlan, conn: int, label: str = ""):
        self._sock = sock
        self._plan = plan
        self.conn = conn
        self.label = label
        self._moved = {"read": 0, "write": 0}
        self._io_lock = threading.Lock()
        self._forced_eof = False

    # -- fault machinery ---------------------------------------------------
    def _account(self, op: str, n: int) -> None:
        with self._io_lock:
            self._moved[op] += n

    def _check(self, op: str) -> None:
        with self._io_lock:
            moved = self._moved[op]
        action = self._plan.before_io(self.conn, op, moved)
        if action is None:
            return
        if action == RESET:
            self._hard_close()
            raise FaultInjected(
                f"connection reset by fault plan (conn {self.conn}, {op})")
        if action == SHORT:
            # End of stream: the peer (and we) see clean EOF early.
            self._forced_eof = True
            self._hard_close()

    def _guard_read(self, do_read):
        self._check("read")
        if self._forced_eof:
            return b""
        try:
            return do_read()
        except (ValueError, OSError):
            if self._forced_eof:
                return b""
            raise

    def _guard_write(self, nbytes: int) -> None:
        self._check("write")
        if self._forced_eof:
            raise FaultInjected(
                f"stream shorted by fault plan (conn {self.conn})")

    def _hard_close(self) -> None:
        try:
            self._sock.shutdown(_socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- socket surface ----------------------------------------------------
    def makefile(self, mode: str = "r", *args, **kwargs):
        direction = "read" if "r" in mode else "write"
        return FaultyStream(self._sock.makefile(mode, *args, **kwargs),
                            self, direction)

    def recv(self, bufsize: int, *flags) -> bytes:
        data = self._guard_read(lambda: self._sock.recv(bufsize, *flags))
        self._account("read", len(data))
        return data

    def send(self, data: bytes, *flags) -> int:
        self._guard_write(len(data))
        n = self._sock.send(data, *flags)
        self._account("write", n)
        return n

    def sendall(self, data: bytes, *flags) -> None:
        self._guard_write(len(data))
        self._sock.sendall(data, *flags)
        self._account("write", len(data))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def gettimeout(self):
        return self._sock.gettimeout()

    def getsockname(self):
        return self._sock.getsockname()

    def getpeername(self):
        return self._sock.getpeername()

    def fileno(self) -> int:
        return self._sock.fileno()

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._sock, name)
