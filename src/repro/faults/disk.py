"""Disk-fault injection: the persistence twin of the socket plan.

:mod:`repro.faults.plan` breaks *connections*; this module breaks
*storage*.  A :class:`DiskFaultPlan` is a deterministic schedule of
persistence faults consumed by the metadata journal
(:mod:`repro.durability.journal`), the snapshot store, and the
:class:`FaultyStore` backend wrapper:

* **torn writes** -- only a prefix of the payload reaches the platter
  before the process "dies" (:class:`SimulatedCrash`); recovery must
  detect and discard the fragment;
* **short writes** -- a prefix lands and the call *reports success*,
  the nastiest variant: the corruption is only discovered at the next
  recovery, which must still yield a consistent prefix of history;
* **EIO / ENOSPC** -- the write fails typed (``OSError`` with the real
  errno) and the appliance must degrade, not die;
* **crash-at-record-N** -- the process dies exactly before the N-th
  journal record becomes durable, the primitive under the
  "crash at every journal boundary, then recover" sweeps.

Rules are matched per *call ordinal* (or, for journal appends, per
record sequence number), so a plan like
``DiskFaultPlan.crash_at_record(17)`` is fully deterministic.  Like
the socket plan, every fired fault is recorded in
:attr:`DiskFaultPlan.events` so tests can assert the intended fault
actually happened.
"""

from __future__ import annotations

import errno as _errno
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.obs.metrics import global_registry

__all__ = [
    "TORN",
    "SHORT",
    "EIO",
    "ENOSPC",
    "CRASH",
    "SimulatedCrash",
    "DiskFaultEvent",
    "DiskFaultRule",
    "DiskFaultPlan",
    "FaultyFile",
    "FaultyStore",
]

# Disk fault actions.
TORN = "torn"
SHORT = "short"
EIO = "eio"
ENOSPC = "enospc"
CRASH = "crash"

_ACTIONS = (TORN, SHORT, EIO, ENOSPC, CRASH)

#: I/O operations a rule can watch.  ``append`` is one journal record,
#: ``snapshot`` one snapshot save, ``write``/``close`` are data-store
#: stream operations (via :class:`FaultyStore`).
_OPS = ("append", "snapshot", "write", "close")


class SimulatedCrash(BaseException):
    """The process "dies" at this point.

    Deliberately a ``BaseException``: crash points must never be
    swallowed by a broad ``except Exception`` along the I/O path --
    a real SIGKILL cannot be caught either.  Test harnesses catch it
    explicitly, then rebuild the appliance from its ``state_dir``.
    """


def _observe_disk_fault(op: str, action: str) -> None:
    global_registry().counter(
        "repro_disk_faults_injected_total",
        "Disk faults fired by disk-fault plans, by op and action.",
        labelnames=("op", "action"),
    ).inc(op=op, action=action)


@dataclass
class DiskFaultEvent:
    """One disk fault the plan actually fired."""

    op: str
    action: str
    at: int  #: call ordinal (or journal record seq) the rule matched


@dataclass
class DiskFaultRule:
    """One deterministic disk-fault trigger.

    ``at`` names the 1-based ordinal of the matching call the rule
    fires on (for journal appends, the record sequence number); None
    means "every matching call".  ``keep_bytes`` bounds how much of
    the payload actually lands for torn/short writes (None = half).
    ``times`` caps total firings across the plan.
    """

    op: str
    action: str
    at: Optional[int] = None
    keep_bytes: Optional[int] = None
    times: Optional[int] = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown disk fault op {self.op!r}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown disk fault action {self.action!r}")

    def wants(self, op: str, ordinal: int) -> bool:
        if op != self.op:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return self.at is None or ordinal == self.at


class DiskFaultPlan:
    """A deterministic, shareable schedule of injected disk faults."""

    def __init__(self, rules: Iterable[DiskFaultRule] = ()):
        self.rules: list[DiskFaultRule] = list(rules)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self.events: list[DiskFaultEvent] = []

    # -- convenience constructors ------------------------------------------
    @classmethod
    def clean(cls) -> "DiskFaultPlan":
        """A plan that never injects anything."""
        return cls()

    @classmethod
    def crash_at_record(cls, seq: int) -> "DiskFaultPlan":
        """Die exactly before journal record ``seq`` becomes durable
        (records ``< seq`` are on disk, ``seq`` and later are lost)."""
        return cls([DiskFaultRule(op="append", action=CRASH, at=seq)])

    @classmethod
    def torn_record(cls, seq: int, keep_bytes: int | None = None) -> "DiskFaultPlan":
        """Die mid-write of journal record ``seq``: a fragment lands."""
        return cls([DiskFaultRule(op="append", action=TORN, at=seq,
                                  keep_bytes=keep_bytes)])

    @classmethod
    def short_record(cls, seq: int, keep_bytes: int | None = None) -> "DiskFaultPlan":
        """Journal record ``seq`` lands only partially but the append
        *reports success* (silent corruption, found at recovery)."""
        return cls([DiskFaultRule(op="append", action=SHORT, at=seq,
                                  keep_bytes=keep_bytes)])

    @classmethod
    def eio_at_record(cls, seq: int) -> "DiskFaultPlan":
        """Journal record ``seq`` fails with ``EIO``."""
        return cls([DiskFaultRule(op="append", action=EIO, at=seq)])

    @classmethod
    def enospc_at_record(cls, seq: int) -> "DiskFaultPlan":
        """Journal record ``seq`` fails with ``ENOSPC``."""
        return cls([DiskFaultRule(op="append", action=ENOSPC, at=seq)])

    @classmethod
    def crash_on_store_write(cls, at_call: int = 1) -> "DiskFaultPlan":
        """Die on the ``at_call``-th data-store stream write -- the
        SIGKILL-mid-PUT primitive for :class:`FaultyStore`."""
        return cls([DiskFaultRule(op="write", action=CRASH, at=at_call)])

    # -- matching ----------------------------------------------------------
    def check(self, op: str, at: int | None = None) -> DiskFaultRule | None:
        """Would a fault fire for this call?  Counts the call, matches
        rules, records the event, and returns the winning rule (the
        caller enacts the action) or None."""
        with self._lock:
            if at is None:
                at = self._counts.get(op, 0) + 1
                self._counts[op] = at
            for rule in self.rules:
                if rule.wants(op, at):
                    rule.fired += 1
                    self.events.append(DiskFaultEvent(op, rule.action, at))
                    _observe_disk_fault(op, rule.action)
                    return rule
        return None

    # -- introspection -----------------------------------------------------
    def fired(self, action: str | None = None) -> int:
        """How many disk faults fired (optionally of one action)."""
        with self._lock:
            if action is None:
                return len(self.events)
            return sum(1 for e in self.events if e.action == action)

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary (for logs and failure reports)."""
        with self._lock:
            return {
                "rules": [
                    {"op": r.op, "action": r.action, "at": r.at,
                     "keep_bytes": r.keep_bytes, "times": r.times,
                     "fired": r.fired}
                    for r in self.rules
                ],
                "events": len(self.events),
            }


def raise_for(rule: DiskFaultRule, what: str) -> None:
    """Enact a rule's errno/crash action (torn/short are the caller's
    job since they need the payload)."""
    if rule.action == CRASH:
        raise SimulatedCrash(f"crash point: {what}")
    if rule.action == EIO:
        raise OSError(_errno.EIO, f"injected EIO: {what}")
    if rule.action == ENOSPC:
        raise OSError(_errno.ENOSPC, f"injected ENOSPC: {what}")


class FaultyFile:
    """A writable-stream wrapper consulting a :class:`DiskFaultPlan`.

    Wraps whatever :meth:`DataStore.open_write` returned; every
    ``write`` (and the final ``close``) is a fault point.  A CRASH on
    write leaves the underlying stream unclosed -- with the atomic
    :class:`~repro.nest.backends.LocalFSStore` writer that means the
    PUT never becomes visible, exactly like a process killed mid-PUT.
    """

    def __init__(self, raw, plan: DiskFaultPlan):
        self._raw = raw
        self._plan = plan

    def write(self, data: bytes) -> int:
        rule = self._plan.check("write")
        if rule is not None:
            if rule.action in (TORN, SHORT):
                keep = rule.keep_bytes
                if keep is None:
                    keep = len(data) // 2
                self._raw.write(data[:keep])
                if rule.action == TORN:
                    raise SimulatedCrash("torn data-store write")
                return len(data)  # short write reporting success
            raise_for(rule, "data-store write")
        return self._raw.write(data)

    def close(self) -> None:
        rule = self._plan.check("close")
        if rule is not None:
            raise_for(rule, "data-store close")
        self._raw.close()

    def flush(self) -> None:
        self._raw.flush()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)


class FaultyStore:
    """A :class:`~repro.nest.backends.DataStore` wrapper whose write
    streams consult a :class:`DiskFaultPlan` -- the disk counterpart
    of wrapping a socket in a :class:`~repro.faults.plan.FaultySocket`.
    """

    def __init__(self, inner, plan: DiskFaultPlan):
        self.inner = inner
        self.plan = plan

    def open_read(self, path: str):
        return self.inner.open_read(path)

    def open_write(self, path: str, append: bool = False):
        return FaultyFile(self.inner.open_write(path, append=append), self.plan)

    def open_update(self, path: str):
        return FaultyFile(self.inner.open_update(path), self.plan)

    def delete(self, path: str) -> None:
        self.inner.delete(path)

    def size(self, path: str) -> int:
        return self.inner.size(path)

    def exists(self, path: str) -> bool:
        exists = getattr(self.inner, "exists", None)
        if exists is not None:
            return exists(path)
        return self.inner.size(path) > 0

    def __getattr__(self, name):
        return getattr(self.inner, name)
