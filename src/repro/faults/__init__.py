"""Fault injection for the live NeST stack (chaos substrate).

See :mod:`repro.faults.plan` for the model.  Quick use::

    plan = FaultPlan.reset_once(after_bytes=1024)
    server = NestServer(config, faults=plan)          # server-side
    client = ChirpClient(host, port, faults=plan)     # or client-side

Every future chaos / soak scenario plugs in here rather than
monkeypatching sockets.
"""

from repro.faults.plan import (
    FaultAction,
    FaultEvent,
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultySocket,
    FaultyStream,
)

__all__ = [
    "FaultAction",
    "FaultEvent",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultySocket",
    "FaultyStream",
]
