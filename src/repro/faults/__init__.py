"""Fault injection for the live NeST stack (chaos substrate).

See :mod:`repro.faults.plan` for the socket model.  Quick use::

    plan = FaultPlan.reset_once(after_bytes=1024)
    server = NestServer(config, faults=plan)          # server-side
    client = ChirpClient(host, port, faults=plan)     # or client-side

:mod:`repro.faults.disk` is the persistence twin: a
:class:`DiskFaultPlan` breaks the metadata journal, snapshots, and
data-store writes (torn/short writes, EIO/ENOSPC, crash-at-record-N)
for the crash-recovery sweeps in :mod:`repro.durability`.

Every future chaos / soak scenario plugs in here rather than
monkeypatching sockets.
"""

from repro.faults.disk import (
    DiskFaultEvent,
    DiskFaultPlan,
    DiskFaultRule,
    FaultyFile,
    FaultyStore,
    SimulatedCrash,
)
from repro.faults.plan import (
    FaultAction,
    FaultEvent,
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultySocket,
    FaultyStream,
)

__all__ = [
    "FaultAction",
    "FaultEvent",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultySocket",
    "FaultyStream",
    "DiskFaultEvent",
    "DiskFaultPlan",
    "DiskFaultRule",
    "FaultyFile",
    "FaultyStore",
    "SimulatedCrash",
]
