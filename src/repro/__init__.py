"""NeST: a flexible, manageable Grid storage appliance (reproduction).

A from-scratch Python implementation of the system described in
*Flexibility, Manageability, and Performance in a Grid Storage
Appliance* (Bent et al., HPDC 2002), together with every substrate the
paper depends on and a simulated 2002 testbed that regenerates its
evaluation.  See README.md for a tour, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.

Package map:

* :mod:`repro.classads` -- the ClassAd policy/matchmaking language
* :mod:`repro.sim` -- deterministic discrete-event simulation kernel
* :mod:`repro.models` -- hardware/OS models (link, disk, cache, quota)
* :mod:`repro.protocols` -- wire formats + the common request interface
* :mod:`repro.nest` -- the appliance itself (live server included)
* :mod:`repro.client` -- protocol clients
* :mod:`repro.jbos` -- the "bunch of servers" baseline
* :mod:`repro.simnest` -- NeST/JBOS on the simulated testbed
* :mod:`repro.grid` -- discovery, execution manager, DAGMan
* :mod:`repro.bench` -- figure-by-figure experiment harness
"""

__version__ = "0.9.0"
