"""Durable appliance state: write-ahead metadata journal, compacted
snapshots, and crash recovery (see DESIGN.md section 10).

The paper positions NeST as an *appliance*: "storage that can be
trusted" implies its promises -- lots, ACLs, the replica catalog --
must survive a crash.  This package makes every durable metadata
mutation a journal record, folds the journal into atomic snapshots,
and rebuilds the managers from snapshot + replay on restart.
"""

from repro.durability.journal import JournalError, MetadataJournal, ReplayResult
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import RecoveryReport, StorageReplayer
from repro.durability.snapshot import SnapshotError, SnapshotStore

__all__ = [
    "JournalError",
    "MetadataJournal",
    "ReplayResult",
    "DurabilityManager",
    "RecoveryReport",
    "StorageReplayer",
    "SnapshotError",
    "SnapshotStore",
]
