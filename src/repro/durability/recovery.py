"""Crash recovery: rebuild appliance metadata from snapshot + journal.

Recovery is three passes over durable state:

1. **install** the latest compacted snapshot (if any) into the storage
   manager -- namespace, ACLs, groups, lots, accounting;
2. **replay** every intact journal record with ``seq`` beyond the
   snapshot, applying each mutation *directly* onto the in-memory
   structures (no ACL checks, no re-journaling -- history already
   passed both);
3. **reconcile** what the journal could not know: a ``put_begin``
   without a matching ``put_commit`` is an interrupted transfer, so
   the file's true size is whatever the (atomic-write) backend holds
   -- the complete new file, the untouched old one, or nothing.  Lot
   charges and accounting are settled to that truth; orphaned
   atomic-write temp files are swept.

Lot *expiry* is deliberately absent from the journal: it is a pure
function of ``expires_at`` vs the clock, re-derived lazily on the next
lot operation -- which is exactly how a lot that expired while the
server was down comes back ``BEST_EFFORT`` rather than ``ACTIVE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.nest.acl import Rights, default_acl
from repro.nest.lots import LotState
from repro.nest.storage import DirNode, FileNode, StorageError, StorageManager

__all__ = ["RecoveryReport", "StorageReplayer", "backend_size"]


@dataclass
class RecoveryReport:
    """What one recovery pass found and did (CLI + metrics surface)."""

    state_dir: str = ""
    snapshot_seq: int = 0  #: journal seq the installed snapshot covered
    replayed_records: int = 0  #: intact journal records applied
    skipped_records: int = 0  #: records replay could not apply
    corrupt_tail: bool = False  #: journal ended in a torn/corrupt record
    interrupted_puts: list[dict[str, Any]] = field(default_factory=list)
    recovered_lots: list[str] = field(default_factory=list)
    recovered_replicas: int = 0
    reconciled_charges: int = 0  #: dangling lot charges released/trimmed
    swept_temp_files: int = 0
    #: tier residency settlements (in-flight migrations/recalls resolved)
    tier_actions: list[dict[str, Any]] = field(default_factory=list)
    epoch: int = 0  #: file-handle epoch after this restart
    duration_seconds: float = 0.0

    def describe(self) -> dict[str, Any]:
        return {
            "state_dir": self.state_dir,
            "snapshot_seq": self.snapshot_seq,
            "replayed_records": self.replayed_records,
            "skipped_records": self.skipped_records,
            "corrupt_tail": self.corrupt_tail,
            "interrupted_puts": list(self.interrupted_puts),
            "recovered_lots": list(self.recovered_lots),
            "recovered_replicas": self.recovered_replicas,
            "reconciled_charges": self.reconciled_charges,
            "swept_temp_files": self.swept_temp_files,
            "tier_actions": list(self.tier_actions),
            "epoch": self.epoch,
            "duration_seconds": self.duration_seconds,
        }


def backend_size(store, path: str) -> int | None:
    """Bytes the backend actually holds for ``path`` (None if absent)."""
    exists = getattr(store, "exists", None)
    try:
        if exists is not None:
            if not exists(path):
                return None
            return store.size(path)
        size = store.size(path)
        return size if size > 0 else None
    except OSError:
        return None


class StorageReplayer:
    """Applies replayed journal records onto a storage manager.

    One record type -> one ``_r_<type>`` method; unknown types return
    False so the caller can route them elsewhere (replica records go
    to the catalog).  Tracks ``put_begin`` brackets so unmatched ones
    can be reconciled against the backend afterwards.
    """

    def __init__(self, storage: StorageManager):
        self.storage = storage
        #: path -> its unmatched put_begin record
        self.pending_puts: dict[str, dict[str, Any]] = {}

    def apply(self, rec: dict[str, Any]) -> bool:
        """Apply one record; True when the type was a storage record."""
        handler = getattr(self, "_r_" + str(rec.get("type")), None)
        if handler is None:
            return False
        handler(rec)
        return True

    # -- namespace ---------------------------------------------------------
    def _node(self, path: str) -> tuple[DirNode, str, Any]:
        parent, name = self.storage._parent_and_name(path)
        return parent, name, parent.children.get(name)

    def _r_mkdir(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if node is None:
            parent.children[name] = DirNode(
                name=name,
                acl=default_acl(rec.get("user", "admin"), self.storage.groups,
                                self.storage.anonymous_rights))

    def _r_rmdir(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if isinstance(node, DirNode):
            del parent.children[name]

    def _r_delete(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if isinstance(node, FileNode):
            self.storage.used_bytes -= node.size
            del parent.children[name]
        self.pending_puts.pop(rec["path"], None)

    def _r_rename(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if node is None:
            return
        new_parent, new_name = self.storage._parent_and_name(rec["new_path"])
        del parent.children[name]
        node.name = new_name
        new_parent.children[new_name] = node
        self.storage.lots.rename_charges(rec["path"], rec["new_path"])
        if isinstance(node, FileNode):
            self._redo_move(rec["path"], rec["new_path"])

    def _redo_move(self, path: str, new_path: str) -> None:
        """Finish an interrupted backend move.

        ``rename`` journals before touching the backend, so a crash
        between the two leaves the record durable but the bytes under
        the old path.  The record wins: carry the data over (the
        atomic writer keeps this safe) and drop the old copy.
        """
        store = self.storage.store
        try:
            if backend_size(store, path) is None:
                return
            if backend_size(store, new_path) is None:
                src = store.open_read(path)
                dst = store.open_write(new_path)
                try:
                    while True:
                        chunk = src.read(1 << 20)
                        if not chunk:
                            break
                        dst.write(chunk)
                finally:
                    src.close()
                    dst.close()
            store.delete(path)
        except OSError:
            pass  # a sick disk must not abort recovery

    def _r_file_reclaim(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if isinstance(node, FileNode):
            self.storage.used_bytes -= node.size
            del parent.children[name]

    # -- ACLs and groups ---------------------------------------------------
    def _r_acl_set(self, rec: dict) -> None:
        node = self.storage._lookup(rec["path"])
        if isinstance(node, DirNode):
            node.acl.set_entry(rec["subject"], Rights.parse(rec["rights"]))

    def _r_group_set(self, rec: dict) -> None:
        self.storage.groups[rec["name"]] = set(rec.get("members", []))

    # -- transfers ---------------------------------------------------------
    def _r_put_begin(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        old_size = node.size if isinstance(node, FileNode) else 0
        if isinstance(node, FileNode):
            node.size = int(rec["size"])
        else:
            parent.children[name] = FileNode(
                name=name, owner=rec.get("user", ""), size=int(rec["size"]))
        self.storage.used_bytes += int(rec["size"]) - old_size
        self.pending_puts[rec["path"]] = rec

    def _r_put_commit(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if isinstance(node, FileNode):
            actual = int(rec["size"])
            self.storage.used_bytes += actual - node.size
            node.size = actual
        self.pending_puts.pop(rec["path"], None)

    def _r_write(self, rec: dict) -> None:
        parent, name, node = self._node(rec["path"])
        if not isinstance(node, FileNode):
            node = FileNode(name=name, owner=rec.get("user", ""), size=0)
            parent.children[name] = node
        size = int(rec["size"])
        if size > node.size:
            self.storage.used_bytes += size - node.size
            node.size = size

    # -- lots --------------------------------------------------------------
    def _r_lot_create(self, rec: dict) -> None:
        self.storage.lots.restore_lot(
            lot_id=rec["lot_id"], owner=rec["owner"],
            capacity=int(rec["capacity"]),
            expires_at=float(rec["expires_at"]),
            volatile=bool(rec.get("volatile", False)),
            last_used=float(rec.get("last_used", 0.0)))

    def _r_lot_renew(self, rec: dict) -> None:
        lot = self.storage.lots.lots.get(rec["lot_id"])
        if lot is not None:
            lot.expires_at = float(rec["expires_at"])
            lot.state = LotState(rec.get("state", "active"))

    def _r_lot_delete(self, rec: dict) -> None:
        self.storage.lots.lots.pop(rec["lot_id"], None)

    def _r_lot_pin(self, rec: dict) -> None:
        lot = self.storage.lots.lots.get(rec["lot_id"])
        if lot is not None:
            lot.pinned = bool(rec.get("pinned", False))

    def _r_lot_attach(self, rec: dict) -> None:
        self.storage.lots.attachments[rec["prefix"]] = rec["lot_id"]

    def _r_lot_charge(self, rec: dict) -> None:
        lot = self.storage.lots.lots.get(rec["lot_id"])
        if lot is not None:
            path = rec["path"]
            lot.charges[path] = lot.charges.get(path, 0) + int(rec["nbytes"])
            lot.last_used = float(rec.get("last_used", lot.last_used))

    def _release(self, rec: dict) -> None:
        lot = self.storage.lots.lots.get(rec["lot_id"])
        if lot is None:
            return
        path = rec["path"]
        left = lot.charges.get(path, 0) - int(rec["nbytes"])
        if left > 0:
            lot.charges[path] = left
        else:
            lot.charges.pop(path, None)

    _r_lot_release = _release
    _r_lot_reclaim = _release

    # -- reconciliation ----------------------------------------------------
    def reconcile_pending_puts(self) -> list[dict[str, Any]]:
        """Settle every unmatched ``put_begin`` against the backend.

        With atomic-write backends the data is either complete (the
        writer's final rename happened) or entirely the pre-put
        content (or absent); a torn file is impossible.  Metadata is
        adjusted to that truth: size and accounting settle to the
        backend's bytes, and charges for bytes that never landed are
        released.
        """
        out: list[dict[str, Any]] = []
        storage = self.storage
        for path in sorted(self.pending_puts):
            try:
                parent, name, node = self._node(path)
            except StorageError:
                continue
            if not isinstance(node, FileNode):
                continue
            actual = backend_size(storage.store, path)
            if actual is None:
                storage.used_bytes -= node.size
                storage.lots.release(path)
                del parent.children[name]
                out.append({"path": path, "disposition": "absent",
                            "size": 0})
            else:
                delta = actual - node.size
                node.size = actual
                storage.used_bytes += delta
                if delta < 0:
                    storage.lots.release(path, -delta)
                out.append({"path": path, "disposition": "settled",
                            "size": actual})
        self.pending_puts.clear()
        return out

    def reconcile_charges(self) -> int:
        """Release lot charges the journal left dangling.

        Two crash windows produce them: a ``lot_charge`` journaled
        before its ``put_begin`` (the file never materialised in the
        namespace), and a ``delete`` record whose ``lot_release``
        never landed.  Either way the durable namespace is the truth:
        charges for paths without a file node are dropped entirely,
        and per-path charge totals above the node's size are trimmed
        to it.  Returns how many paths were adjusted.
        """
        sizes: dict[str, int] = {}

        def walk(dirnode: DirNode, prefix: str) -> None:
            for name, child in dirnode.children.items():
                path = prefix.rstrip("/") + "/" + name
                if isinstance(child, FileNode):
                    sizes[path] = child.size
                else:
                    walk(child, path)

        walk(self.storage.root, "")
        lots = self.storage.lots
        totals: dict[str, int] = {}
        for lot in lots.lots.values():
            for path, nbytes in lot.charges.items():
                totals[path] = totals.get(path, 0) + nbytes
        fixed = 0
        for path, total in sorted(totals.items()):
            size = sizes.get(path)
            if size is None:
                lots.release(path)
                fixed += 1
            elif total > size:
                lots.release(path, total - size)
                fixed += 1
        return fixed
