"""The write-ahead metadata journal.

One append-only file of CRC-framed JSON records.  Every record is one
line::

    <crc32 of payload, 8 hex chars> <payload JSON>\\n

where the payload carries a monotonically increasing ``seq``, a
``type`` tag, and the event's fields.  Appends are fsync'd by default
(``fsync=False`` trades durability of the last few records for speed
-- used by the crash-sweep tests, whose "disk" is the same process).

Durable appends use **group commit**: concurrent appenders enqueue
framed records; whoever reaches the flush lock first becomes the
flusher and writes every queued record with a *single* write+fsync,
and each caller returns only once its record's batch is durable.
Under concurrency the fsync count collapses from one-per-record to
one-per-batch while every acknowledged record is on disk -- the
classic WAL group commit.  The grouped path engages only for the
plain durable configuration (``fsync=True``, no fault plan,
``batch_records > 1``); fault injection and ``fsync=False`` keep the
original record-at-a-time path so every injected torn/short/crash
fault lands exactly where the crash sweep expects it.

The framing makes every corruption mode the disk-fault layer can
inject *detectable*: a torn tail (no trailing newline), a short write
(CRC mismatch), or a crash between records (file simply ends) all
terminate :meth:`MetadataJournal.replay` at the last durable record
boundary instead of propagating garbage into recovery.

Append failures surface as :class:`JournalError` -- an ``OSError``
subclass carrying the real errno -- so callers can degrade typed
(``ENOSPC`` becomes a no-space response, not a dead connection).
"""

from __future__ import annotations

import errno as _errno
import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.faults.disk import CRASH, SHORT, TORN, SimulatedCrash

__all__ = ["JournalError", "ReplayResult", "MetadataJournal"]


class JournalError(OSError):
    """A journal append (or sync) failed; ``errno`` says why."""


@dataclass
class ReplayResult:
    """What a journal replay found on disk."""

    records: list[dict]  #: every intact record, in append order
    valid_bytes: int  #: length of the intact prefix of the file
    corrupt_tail: bool  #: True when replay stopped at a torn/corrupt record


class MetadataJournal:
    """Append-fsync-replay over one journal file."""

    def __init__(self, path: str, *, fsync: bool = True, faults=None,
                 registry=None, batch_records: int = 64,
                 batch_delay: float = 0.0):
        self.path = str(path)
        self._fsync = fsync
        self._faults = faults
        self._lock = threading.RLock()
        self._file = None
        #: sequence number of the last record acknowledged (durable or
        #: folded into a snapshot); the next append gets ``last_seq+1``.
        self.last_seq = 0
        #: group commit: grouped appends engage only for the plain
        #: durable configuration -- fault injection and fsync=False
        #: need the record-at-a-time path's exact fault placement.
        self._grouped = fsync and faults is None and batch_records > 1
        self._batch_max = max(1, int(batch_records))
        self._batch_delay = float(batch_delay)
        self._flush_lock = threading.RLock()
        self._tail_seq = 0  #: highest seq handed out (>= last_seq)
        self._pending: list[tuple[int, bytes]] = []
        self._batch_errors: dict[int, JournalError] = {}
        #: plain hot-path counters (the bench reads these directly).
        self.fsync_count = 0
        self.records_appended = 0
        self._h_fsync = None
        self._h_batch = None
        self._m_records = None
        self._m_errors = None
        if registry is not None:
            self._h_fsync = registry.histogram(
                "journal_fsync_seconds",
                "Wall-clock latency of each metadata-journal fsync.")
            self._h_batch = registry.histogram(
                "journal_batch_records",
                "Records made durable per group-commit flush.",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128))
            self._m_records = registry.counter(
                "journal_records_total",
                "Records appended to the metadata journal.")
            self._m_errors = registry.counter(
                "journal_append_errors_total",
                "Journal appends that failed (EIO, ENOSPC, closed file).")
            registry.gauge_callback(
                "journal_records_per_fsync",
                lambda: (self.records_appended / self.fsync_count
                         if self.fsync_count else 0.0),
                "Fsync amortization: records made durable per fsync "
                "(1.0 = no group-commit batching).")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(self, rtype: str, fields: dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        On the grouped path the caller blocks until the batch holding
        its record is flushed; on the record-at-a-time path the append
        is written and fsync'd inline, exactly as before group commit.
        """
        if self._grouped:
            seq = self.append_async(rtype, fields)
            self.wait_durable(seq)
            return seq
        with self._lock:
            seq = self.last_seq + 1
            rec = {"seq": seq, "type": rtype, **fields}
            data = json.dumps(rec, sort_keys=True,
                              separators=(",", ":")).encode()
            line = b"%08x " % (zlib.crc32(data) & 0xFFFFFFFF,) + data + b"\n"
            try:
                self._open()
                rule = (self._faults.check("append", at=seq)
                        if self._faults is not None else None)
                if rule is not None:
                    self._faulty_write(rule, line)
                else:
                    self._file.write(line)
                    self._do_fsync()
            except OSError as exc:
                if self._m_errors is not None:
                    self._m_errors.inc()
                if isinstance(exc, JournalError):
                    raise
                raise JournalError(
                    exc.errno if exc.errno is not None else _errno.EIO,
                    f"journal append failed: {exc}") from exc
            except ValueError as exc:  # write on a closed file
                if self._m_errors is not None:
                    self._m_errors.inc()
                raise JournalError(_errno.EIO,
                                   f"journal closed: {exc}") from exc
            self.last_seq = seq
            self.records_appended += 1
            if self._m_records is not None:
                self._m_records.inc()
            if self._h_batch is not None:
                self._h_batch.observe(1.0)
            return seq

    # -- group commit ------------------------------------------------------
    def append_async(self, rtype: str, fields: dict[str, Any]) -> int:
        """Assign a seq and enqueue the framed record *without* waiting
        for the disk.

        This is the WAL split that lets group commit actually batch:
        callers that hold some coarser lock (the storage manager's, in
        this appliance) enqueue under it and call :meth:`wait_durable`
        only after releasing it, so concurrent mutators overlap in the
        queue and share one flush.  The record is not durable until
        ``wait_durable(seq)`` returns; acknowledging before that is a
        durability lie.  On the record-at-a-time path (fault injection,
        ``fsync=False``, ``batch_records <= 1``) this degrades to a
        full synchronous :meth:`append` and ``wait_durable`` is a
        no-op.
        """
        if not self._grouped:
            return self.append(rtype, fields)
        with self._lock:
            self._tail_seq = max(self._tail_seq, self.last_seq) + 1
            seq = self._tail_seq
            rec = {"seq": seq, "type": rtype, **fields}
            data = json.dumps(rec, sort_keys=True,
                              separators=(",", ":")).encode()
            line = b"%08x " % (zlib.crc32(data) & 0xFFFFFFFF,) + data + b"\n"
            self._pending.append((seq, line))
        return seq

    def wait_durable(self, seq: int) -> None:
        """Drive/await the flush that makes record ``seq`` durable.

        Whoever acquires the flush lock becomes the flusher for every
        record queued at that moment.  Followers that arrive while a
        flush is in progress block on the lock; by the time they get
        it their record is usually already durable (``last_seq`` has
        passed their seq) and they return without touching the disk.
        Batching therefore emerges from fsync backpressure -- no
        background thread, no timers, no idle latency.
        """
        if not self._grouped:
            return
        while True:
            with self._flush_lock:
                with self._lock:
                    error = self._batch_errors.pop(seq, None)
                    if error is None and self.last_seq >= seq:
                        return
                if error is not None:
                    if self._m_errors is not None:
                        self._m_errors.inc()
                    raise error
                if self._batch_delay > 0:
                    with self._lock:
                        full = len(self._pending) >= self._batch_max
                    if not full:
                        # Dally with the flush lock held so co-batching
                        # appenders can pile onto the queue.
                        time.sleep(self._batch_delay)
                with self._lock:
                    batch = self._pending[: self._batch_max]
                    del self._pending[: len(batch)]
                if batch:
                    self._flush_batch(batch)

    def _flush_batch(self, batch: list[tuple[int, bytes]]) -> None:
        """One write+fsync covering every record in ``batch``; on
        failure the whole batch is marked failed so each waiter gets a
        typed :class:`JournalError` instead of a false ack."""
        payload = b"".join(line for _, line in batch)
        try:
            self._open()
            self._file.write(payload)
            self._do_fsync()
        except (OSError, ValueError) as exc:
            if isinstance(exc, JournalError):
                error = exc
            elif isinstance(exc, ValueError):  # write on a closed file
                error = JournalError(_errno.EIO, f"journal closed: {exc}")
                error.__cause__ = exc
            else:
                error = JournalError(
                    exc.errno if exc.errno is not None else _errno.EIO,
                    f"journal append failed: {exc}")
                error.__cause__ = exc
            with self._lock:
                for seq, _ in batch:
                    self._batch_errors[seq] = error
            return
        with self._lock:
            self.last_seq = max(self.last_seq, batch[-1][0])
        self.records_appended += len(batch)
        if self._m_records is not None:
            self._m_records.inc(len(batch))
        if self._h_batch is not None:
            self._h_batch.observe(float(len(batch)))

    def _faulty_write(self, rule, line: bytes) -> None:
        """Enact an injected append fault (torn/short land a fragment)."""
        if rule.action in (TORN, SHORT):
            keep = rule.keep_bytes
            if keep is None:
                keep = max(1, len(line) // 2)
            self._file.write(line[:keep])
            self._do_fsync()
            if rule.action == TORN:
                raise SimulatedCrash("torn journal append")
            return  # SHORT: partial record on disk, caller sees success
        if rule.action == CRASH:
            raise SimulatedCrash("crash point before journal append")
        if rule.action in ("eio", "enospc"):
            code = _errno.EIO if rule.action == "eio" else _errno.ENOSPC
            raise JournalError(code, f"injected {rule.action} on journal append")

    def _open(self) -> None:
        if self._file is None or self._file.closed:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            # Unbuffered: every write hits the OS immediately, so the
            # only volatile layer left for fsync to flush is the page
            # cache (and torn fragments from injected faults really
            # land on "disk").
            self._file = open(self.path, "ab", buffering=0)

    def _do_fsync(self) -> None:
        if not self._fsync:
            return
        t0 = time.perf_counter()
        os.fsync(self._file.fileno())
        self.fsync_count += 1
        if self._h_fsync is not None:
            self._h_fsync.observe(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self) -> ReplayResult:
        """Parse the journal from disk, stopping at the first record
        that is torn, short, or CRC-corrupt.  Never raises on bad
        data: a damaged tail simply ends history early."""
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            return ReplayResult([], 0, False)
        records: list[dict] = []
        pos = 0
        valid = 0
        corrupt = False
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            if nl < 0:
                corrupt = True  # torn tail: record never finished
                break
            line = raw[pos:nl]
            rec = self._parse_line(line)
            if rec is None:
                corrupt = True
                break
            records.append(rec)
            pos = nl + 1
            valid = pos
        return ReplayResult(records, valid, corrupt)

    @staticmethod
    def _parse_line(line: bytes) -> Optional[dict]:
        if len(line) < 10 or line[8:9] != b" ":
            return None
        try:
            crc = int(line[:8], 16)
        except ValueError:
            return None
        data = line[9:]
        if zlib.crc32(data) & 0xFFFFFFFF != crc:
            return None
        try:
            rec = json.loads(data)
        except ValueError:
            return None
        if not isinstance(rec, dict) or "seq" not in rec or "type" not in rec:
            return None
        return rec

    # ------------------------------------------------------------------
    # rotation
    # ------------------------------------------------------------------
    def reset_if_quiescent(self, upto_seq: int) -> bool:
        """Truncate the journal *iff* no record newer than ``upto_seq``
        has been appended (i.e. everything on disk is covered by the
        snapshot just written).  Returns whether truncation happened;
        a concurrent append simply defers compaction to the next
        snapshot -- replay skips records ``<= snapshot.seq`` anyway."""
        with self._flush_lock, self._lock:
            if self.last_seq != upto_seq or self._pending:
                return False
            self.close()
            open(self.path, "wb").close()
            return True

    def truncate_to(self, nbytes: int) -> None:
        """Cut a torn/corrupt tail off the journal so future appends
        extend the intact prefix instead of following garbage."""
        with self._flush_lock, self._lock:
            self.close()
            try:
                with open(self.path, "r+b") as f:
                    f.truncate(max(0, nbytes))
            except FileNotFoundError:
                pass

    def size_bytes(self) -> int:
        """Current on-disk journal size."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        with self._flush_lock:
            # Flush stragglers enqueued by async appenders that never
            # reached wait_durable (e.g. an op that failed mid-flight);
            # _flush_batch parks any error per-seq rather than raising.
            with self._lock:
                batch = self._pending
                self._pending = []
            if batch:
                self._flush_batch(batch)
            with self._lock:
                if self._file is not None and not self._file.closed:
                    self._file.close()
                self._file = None
