"""The durability manager: one ``state_dir``, one journal, one snapshot.

Ties the pieces together for a live appliance:

* **record** -- the sink bound to the replica catalog; appends to the
  write-ahead journal and triggers a compacted snapshot every
  ``snapshot_every`` records.  The storage manager gets the split form
  (**record_async** under its lock, **wait_durable** after releasing
  it) so concurrent mutators share group-commit flushes;
* **snapshot** -- serialize full state (under the storage lock, so the
  captured journal ``seq`` is consistent), save atomically, then
  truncate the journal *only if* nothing was appended meanwhile;
* **recover_into** -- snapshot install + journal replay + interrupted
  -put reconciliation + temp-file sweep + file-handle epoch bump, then
  bind the sinks so the restarted appliance journals new mutations.

The restart **epoch** is a small integer persisted in
``state_dir/epoch`` and incremented by every recovery; the NFS
file-handle registry folds it into each handle token so handles minted
before a crash fail typed (stale) instead of silently resolving to
whatever lives at the same path now.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Optional

from repro.durability.journal import MetadataJournal
from repro.durability.recovery import RecoveryReport, StorageReplayer
from repro.durability.snapshot import SnapshotStore
from repro.nest.lots import LotError
from repro.nest.storage import StorageError, StorageManager

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """Journal + snapshots + recovery over one ``state_dir``."""

    def __init__(self, state_dir: str, *, fsync: bool = True,
                 snapshot_every: int = 512, faults=None, registry=None,
                 batch_records: int = 64, batch_delay: float = 0.0):
        self.state_dir = str(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self.journal = MetadataJournal(
            os.path.join(self.state_dir, "journal.log"),
            fsync=fsync, faults=faults, registry=registry,
            batch_records=batch_records, batch_delay=batch_delay)
        self.snapshots = SnapshotStore(
            os.path.join(self.state_dir, "snapshot.json"), faults=faults)
        self.snapshot_every = int(snapshot_every)
        self._since_snapshot = 0
        self._lock = threading.Lock()
        self.storage: StorageManager | None = None
        self.catalog = None
        self.tier = None
        self.epoch = self._load_epoch()
        self.last_report: Optional[RecoveryReport] = None
        #: replica records replayed before any catalog existed; applied
        #: when :meth:`attach_catalog` runs.
        self._deferred_replica: list[dict[str, Any]] = []
        self._snapshot_catalog_state: dict[str, Any] | None = None
        #: tier records replayed before any tiered store was attached.
        self._deferred_tier: list[dict[str, Any]] = []
        self._snapshot_tier_state: dict[str, Any] | None = None
        self._m_recoveries = None
        self._m_replayed = None
        if registry is not None:
            self._m_recoveries = registry.counter(
                "recovery_runs_total",
                "Crash-recovery passes completed over this state_dir.")
            self._m_replayed = registry.counter(
                "recovery_replayed_records_total",
                "Journal records applied during crash recovery.")
            registry.gauge_callback(
                "recovery_duration_seconds",
                lambda: (self.last_report.duration_seconds
                         if self.last_report is not None else 0.0),
                "Wall-clock duration of the most recent recovery pass.")
            registry.gauge_callback(
                "journal_size_bytes", lambda: float(self.journal.size_bytes()),
                "Current on-disk size of the metadata journal.")

    # ------------------------------------------------------------------
    # the live sink
    # ------------------------------------------------------------------
    def record(self, rtype: str, **fields) -> int:
        """Durably journal one mutation; compacts periodically."""
        seq = self.record_async(rtype, **fields)
        self.wait_durable(seq)
        return seq

    def record_async(self, rtype: str, **fields) -> int:
        """Assign and enqueue one mutation record without touching the
        disk; the record is durable only once :meth:`wait_durable` has
        returned for its seq.  The storage manager calls this under
        its own lock and waits after releasing it, so concurrent
        mutators share group-commit flushes instead of serializing
        one fsync each."""
        return self.journal.append_async(rtype, fields)

    def wait_durable(self, seq: int) -> None:
        """Block until record ``seq`` is on disk; compacts periodically
        (the snapshot trigger lives here, off the storage lock)."""
        self.journal.wait_durable(seq)
        take = False
        with self._lock:
            self._since_snapshot += 1
            if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
                self._since_snapshot = 0
                take = True
        if take:
            self.snapshot()

    def snapshot(self) -> bool:
        """Fold the journal into a compacted snapshot.

        Serialization happens under the storage lock, so the captured
        ``seq`` exactly covers every storage record in the state.
        (Replica records emitted concurrently are idempotent on
        replay, so the catalog needs no such fence.)  The journal is
        truncated only when nothing newer was appended meanwhile --
        otherwise compaction simply waits for the next snapshot.
        """
        storage = self.storage
        if storage is None:
            return False
        with storage._lock:
            seq = self.journal.last_seq
            state: dict[str, Any] = {"storage": storage.serialize_state()}
        if self.catalog is not None:
            state["catalog"] = self.catalog.serialize()
        if self.tier is not None:
            state["tier"] = self.tier.serialize()
        try:
            self.snapshots.save(state, seq)
        except OSError:
            return False  # disk trouble: keep journaling, try later
        self.journal.reset_if_quiescent(seq)
        return True

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover_into(self, storage: StorageManager,
                     catalog=None, tier=None) -> RecoveryReport:
        """Rebuild ``storage`` (and ``catalog`` and the ``tier``
        residency map) from durable state, then bind the journal sinks
        so new mutations are recorded."""
        t0 = time.perf_counter()
        report = RecoveryReport(state_dir=self.state_dir)
        state, snap_seq = self.snapshots.load()
        if state is not None:
            storage.install_state(state.get("storage", {}))
            cat_state = state.get("catalog")
            if catalog is not None and cat_state is not None:
                catalog.restore(cat_state)
            else:
                self._snapshot_catalog_state = cat_state
            tier_state = state.get("tier")
            if tier is not None and tier_state is not None:
                tier.restore(tier_state)
            else:
                self._snapshot_tier_state = tier_state
        report.snapshot_seq = snap_seq

        replay = self.journal.replay()
        if replay.corrupt_tail:
            self.journal.truncate_to(replay.valid_bytes)
        replayer = StorageReplayer(storage)
        max_seq = snap_seq
        for rec in replay.records:
            seq = int(rec.get("seq", 0))
            if seq <= snap_seq:
                continue  # already folded into the snapshot
            max_seq = max(max_seq, seq)
            try:
                if replayer.apply(rec):
                    report.replayed_records += 1
                elif str(rec.get("type", "")).startswith("replica_"):
                    if catalog is not None:
                        catalog.apply_record(rec)
                    else:
                        self._deferred_replica.append(rec)
                    report.replayed_records += 1
                elif str(rec.get("type", "")).startswith("tier_"):
                    if tier is not None:
                        tier.apply_record(rec)
                    else:
                        self._deferred_tier.append(rec)
                    report.replayed_records += 1
                else:
                    report.skipped_records += 1
            except (StorageError, LotError, KeyError, ValueError):
                report.skipped_records += 1
        # New appends must continue past everything history has used,
        # including seqs the snapshot folded away.
        self.journal.last_seq = max(self.journal.last_seq, max_seq, snap_seq)
        report.corrupt_tail = replay.corrupt_tail

        report.interrupted_puts = replayer.reconcile_pending_puts()
        report.reconciled_charges = replayer.reconcile_charges()
        if tier is not None:
            # Settle in-flight migrations/recalls *before* the temp
            # sweep and the post-recovery snapshot, so both see final
            # residency.
            report.tier_actions = tier.reconcile()
        sweep = getattr(storage.store, "sweep_temp", None)
        if sweep is not None:
            report.swept_temp_files = sweep()

        self.epoch = self.epoch + 1
        self._store_epoch(self.epoch)
        report.epoch = self.epoch
        report.recovered_lots = sorted(storage.lots.lots)
        if catalog is not None:
            report.recovered_replicas = sum(
                len(replicas) for replicas in catalog.serialize().values())

        self.storage = storage
        self.catalog = catalog
        self.tier = tier
        storage.set_journal(self.record, async_sink=self.record_async,
                            wait_sink=self.wait_durable)
        if catalog is not None:
            catalog.journal = self.record
            catalog.advertise()
        if tier is not None:
            tier.journal = self.record
        report.duration_seconds = time.perf_counter() - t0
        self.last_report = report
        if self._m_recoveries is not None:
            self._m_recoveries.inc()
            self._m_replayed.inc(report.replayed_records)
        # Fold reconciliation results into a fresh compacted snapshot,
        # so the next crash replays from here instead of re-deriving.
        self.snapshot()
        return report

    def attach_catalog(self, catalog) -> int:
        """Late-bind a replica catalog (federation layers construct it
        after the server): install its snapshot state, apply deferred
        replayed records, bind the sink, re-advertise.  Returns how
        many deferred records were applied."""
        if self._snapshot_catalog_state is not None:
            catalog.restore(self._snapshot_catalog_state)
            self._snapshot_catalog_state = None
        applied = 0
        for rec in self._deferred_replica:
            if catalog.apply_record(rec):
                applied += 1
        self._deferred_replica.clear()
        self.catalog = catalog
        catalog.journal = self.record
        catalog.advertise()
        return applied

    def attach_tier(self, tier) -> int:
        """Late-bind a tiered store: install its snapshot residency,
        apply deferred replayed tier records, reconcile in-flight
        transitions, bind the sink.  Returns how many deferred records
        were applied."""
        if self._snapshot_tier_state is not None:
            tier.restore(self._snapshot_tier_state)
            self._snapshot_tier_state = None
        applied = 0
        for rec in self._deferred_tier:
            if tier.apply_record(rec):
                applied += 1
        self._deferred_tier.clear()
        tier.reconcile()
        self.tier = tier
        tier.journal = self.record
        return applied

    # ------------------------------------------------------------------
    # epoch persistence
    # ------------------------------------------------------------------
    def _epoch_path(self) -> str:
        return os.path.join(self.state_dir, "epoch")

    def _load_epoch(self) -> int:
        try:
            with open(self._epoch_path(), "r", encoding="utf-8") as f:
                return int(f.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def _store_epoch(self, epoch: int) -> None:
        tmp = self._epoch_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(str(int(epoch)))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._epoch_path())

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, *, snapshot: bool = True) -> None:
        """Graceful shutdown: final compaction (unless simulating a
        crash), then release the journal file."""
        if snapshot:
            self.snapshot()
        self.journal.close()
