"""Compacted state snapshots for the metadata journal.

A snapshot is one JSON document -- the full serialized appliance
state plus the journal sequence number it covers -- written with the
classic atomic dance: temp file in the same directory, fsync, then
``os.replace`` onto the final name.  A reader therefore sees either
the old snapshot or the new one, never a torn hybrid, no matter where
a crash lands.

Compaction ordering (see :class:`~repro.durability.manager.DurabilityManager`):
the snapshot is made durable *first*, the journal truncated *second*.
A crash between the two leaves journal records whose ``seq`` the
snapshot already covers; replay skips them, so the window is harmless.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.faults.disk import raise_for

__all__ = ["SnapshotError", "SnapshotStore"]


class SnapshotError(Exception):
    """The snapshot file exists but cannot be parsed (real corruption
    -- atomic replace makes this unreachable without outside help)."""


class SnapshotStore:
    """Atomic save/load of one snapshot document."""

    def __init__(self, path: str, faults=None):
        self.path = str(path)
        self._faults = faults

    def save(self, state: dict[str, Any], seq: int) -> None:
        """Atomically persist ``state`` as covering journal ``seq``."""
        if self._faults is not None:
            rule = self._faults.check("snapshot")
            if rule is not None:
                raise_for(rule, "snapshot save")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        payload = json.dumps({"seq": int(seq), "state": state},
                             sort_keys=True).encode()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)

    def load(self) -> tuple[Optional[dict[str, Any]], int]:
        """The latest snapshot's ``(state, seq)``, or ``(None, 0)``
        when no snapshot has ever been taken."""
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            return None, 0
        try:
            doc = json.loads(raw)
            return doc["state"], int(doc["seq"])
        except (ValueError, KeyError, TypeError) as exc:
            raise SnapshotError(
                f"unreadable snapshot {self.path!r}: {exc}") from exc
