"""Command-line interface: run appliances and regenerate figures.

::

    python -m repro serve [--name N] [--port-base P] [--protocols ...]
    python -m repro jbos  [--port-base P]
    python -m repro bench [fig3|fig4|fig5|fig6|ablations|all]
    python -m repro perf  [smoke|kernel|figures|counters] [--label L]

``serve`` starts a live NeST on consecutive ports (Chirp at the base)
and prints its availability ClassAd; ``jbos`` starts the native bunch;
``bench`` regenerates the paper's figures on the simulated testbed;
``perf`` runs the wall-clock benchmarks (appending to the repo's
``BENCH_*.json`` trajectory files) or prints the hot-path counters of a
representative mixed run.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.nest.config import NestConfig
    from repro.nest.server import NestServer

    protocols = tuple(args.protocols.split(","))
    ports = None
    if args.port_base:
        ports = {proto: args.port_base + i
                 for i, proto in enumerate(protocols)}
    config = NestConfig(
        name=args.name,
        protocols=protocols,
        scheduling=args.scheduling,
        concurrency=args.concurrency,
        require_lots=args.require_lots,
    )
    server = NestServer(config, ports=ports)
    server.start()
    print(f"NeST {args.name!r} serving:")
    for proto, port in sorted(server.ports.items()):
        print(f"  {proto:<8} {server.host}:{port}")
    print("\nAvailability ClassAd:")
    print(server.advertisement().external_repr())
    print("\nCtrl-C to stop.")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("stopping")
        server.stop()
    return 0


def _cmd_jbos(args: argparse.Namespace) -> int:
    from repro.jbos import JbosManager

    manager = JbosManager()
    if args.port_base:
        for i, (proto, srv) in enumerate(sorted(manager.servers.items())):
            srv._requested_port = args.port_base + i
    manager.start()
    manager.store.mkdir("/pub")
    print("JBOS bunch serving (shared /pub):")
    for proto, port in sorted(manager.ports.items()):
        print(f"  {proto:<8} {manager.host}:{port}")
    print("\nCtrl-C to stop.")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("stopping")
        manager.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import ablations, fig3, fig4, fig5, fig6

    figures = {
        "fig3": lambda: print(fig3.report(fig3.run())),
        "fig4": lambda: print(fig4.report(fig4.run())),
        "fig5": lambda: print(fig5.report(fig5.run())),
        "fig6": lambda: print(fig6.report(fig6.run())),
        "ablations": lambda: print(ablations.report_all()),
    }
    targets = list(figures) if args.figure == "all" else [args.figure]
    for target in targets:
        figures[target]()
        print()
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.what == "smoke":
        from repro.perf.smoke import main as smoke_main

        rest = ["--label", args.label] if args.label else []
        return smoke_main(rest)
    if args.what == "kernel":
        from repro.perf.bench import record_kernel

        record = record_kernel(label=args.label)
        print(f"kernel bench: {record['wall_seconds']:.3f}s wall, "
              f"{record['events_per_second']:,} events/s "
              f"-> appended to BENCH_kernel.json")
        return 0
    if args.what == "figures":
        from repro.perf.bench import record_figures

        record = record_figures(label=args.label)
        for name, entry in record["figures"].items():
            print(f"{name}: {entry['wall_seconds']:.3f}s")
        print(f"total: {record['total_wall_seconds']:.3f}s "
              f"-> appended to BENCH_figures.json")
        return 0
    # counters: run the traced mixed workload and print its snapshot.
    from repro.perf.counters import collect_server
    from repro.perf.workloads import traced_mixed_workload

    result, server = traced_mixed_workload(return_server=True)
    print(collect_server(server).render())
    print(f"trace: {len(result.records)} chunk completions, "
          f"sha256 {result.sha256()[:16]}...")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NeST Grid storage appliance (HPDC 2002)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a live NeST appliance")
    serve.add_argument("--name", default="nest")
    serve.add_argument("--port-base", type=int, default=0,
                       help="first port (0 = ephemeral)")
    serve.add_argument("--protocols",
                       default="chirp,ftp,gridftp,http,nfs,ibp")
    serve.add_argument("--scheduling", default="fcfs",
                       choices=["fcfs", "stride", "cache-aware"])
    serve.add_argument("--concurrency", default="adaptive",
                       choices=["adaptive", "threads", "events"])
    serve.add_argument("--require-lots", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    jbos = sub.add_parser("jbos", help="run the native-server baseline")
    jbos.add_argument("--port-base", type=int, default=0)
    jbos.set_defaults(func=_cmd_jbos)

    bench = sub.add_parser("bench", help="regenerate the paper's figures")
    bench.add_argument("figure", nargs="?", default="all",
                       choices=["fig3", "fig4", "fig5", "fig6",
                                "ablations", "all"])
    bench.set_defaults(func=_cmd_bench)

    perf = sub.add_parser("perf", help="wall-clock benchmarks and counters")
    perf.add_argument("what", nargs="?", default="smoke",
                      choices=["smoke", "kernel", "figures", "counters"])
    perf.add_argument("--label", default="",
                      help="label stored with the trajectory record")
    perf.set_defaults(func=_cmd_perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
