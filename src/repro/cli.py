"""Command-line interface: run appliances and regenerate figures.

::

    python -m repro serve [--name N] [--port-base P] [--protocols ...]
                          [--concurrency-server M] [--shards N]
    python -m repro jbos  [--port-base P]
    python -m repro bench [fig3|fig4|fig5|fig6|ablations|all]
    python -m repro perf  [smoke|kernel|figures|counters|transfer|concurrency]
                          [--label L]
    python -m repro replica [status|demo] [--sites N] [--factor K] [--record]
    python -m repro tier    [status|demo] [--sites N] [--record]
    python -m repro recover --state-dir DIR [--store-root DIR]
    python -m repro stats [host:port] [--path /metrics|/healthz|/trace|/ad]

``recover`` replays a ``state_dir``'s snapshot + metadata journal into
a fresh storage manager and reports what came back (lots, interrupted
puts, replayed records) without starting a server -- the offline
fsck-style view of durable appliance state.
``serve`` starts a live NeST on consecutive ports (Chirp at the base)
and prints its availability ClassAd; ``jbos`` starts the native bunch;
``bench`` regenerates the paper's figures on the simulated testbed;
``perf`` runs the wall-clock benchmarks (appending to the repo's
``BENCH_*.json`` trajectory files) or prints the hot-path counters of a
representative mixed run.  ``replica`` stands up an ephemeral federated
fleet: ``status`` shows the catalog for one seeded file, ``demo`` runs
the kill-and-heal scenario (and with ``--record`` appends its aggregate
throughput to ``BENCH_replica.json``).  ``tier`` runs the hierarchical
storage + autoscaling scenario: one tiered appliance under a flash
crowd demotes cold files and recalls them on miss while its autoscaler
replicates the hottest files to idle peers, plus a crash sweep proving
residency survives a kill at every journal boundary (``--record``
appends the throughput/absorption record to ``BENCH_tier.json``).
``stats`` scrapes a running appliance's
management endpoint (the ``mgmt`` port ``serve`` prints), or -- with no
target -- runs a small self-contained workload and prints the resulting
telemetry, which is the quickest way to see the observability layer
end to end.
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.nest.config import NestConfig
    from repro.nest.server import NestServer

    protocols = tuple(args.protocols.split(","))
    ports = None
    if args.port_base:
        ports = {proto: args.port_base + i
                 for i, proto in enumerate(protocols)}
    config = NestConfig(
        name=args.name,
        protocols=protocols,
        scheduling=args.scheduling,
        concurrency=args.concurrency,
        concurrency_server=args.concurrency_server,
        require_lots=args.require_lots,
        state_dir=args.state_dir or None,
        shards=args.shards,
    )
    if args.shards:
        return _serve_shards(config, args)
    server = NestServer(config, ports=ports)
    server.start()
    if server.recovery_report is not None:
        rep = server.recovery_report
        print(f"recovered from {rep.state_dir}: "
              f"{rep.replayed_records} records replayed, "
              f"{len(rep.recovered_lots)} lots, epoch {rep.epoch}")
    print(f"NeST {args.name!r} serving:")
    for proto, port in sorted(server.ports.items()):
        print(f"  {proto:<8} {server.host}:{port}")
    print("\nAvailability ClassAd:")
    print(server.advertisement().external_repr())
    print("\nCtrl-C to stop.")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("stopping")
        server.stop()
    return 0


def _serve_shards(config, args: argparse.Namespace) -> int:
    """Multi-process mode: N shard workers behind one Chirp port."""
    from repro.nest.shard import ShardGroup

    group = ShardGroup(args.shards, config=config,
                       chirp_port=args.port_base or 0)
    group.start()
    host, port = group.endpoint()
    print(f"NeST {args.name!r} shard group: {args.shards} workers "
          f"sharing chirp {host}:{port}")
    for worker in group.workers:
        print(f"  shard {worker.index}  pid {worker.pid:<7} "
              f"owns {worker.shard_root:<10} "
              f"direct http {host}:{worker.http_port}")
    if group.mgmt is not None:
        print(f"  fleet mgmt {group.mgmt.host}:{group.mgmt.port}  "
              f"(/metrics /trace /slo /healthz, shard-merged)")
    print("\nCtrl-C to stop.")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("stopping")
        group.stop()
    return 0


def _cmd_jbos(args: argparse.Namespace) -> int:
    from repro.jbos import JbosManager

    manager = JbosManager()
    if args.port_base:
        for i, (proto, srv) in enumerate(sorted(manager.servers.items())):
            srv._requested_port = args.port_base + i
    manager.start()
    manager.store.mkdir("/pub")
    print("JBOS bunch serving (shared /pub):")
    for proto, port in sorted(manager.ports.items()):
        print(f"  {proto:<8} {manager.host}:{port}")
    print("\nCtrl-C to stop.")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        print("stopping")
        manager.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import ablations, fig3, fig4, fig5, fig6

    figures = {
        "fig3": lambda: print(fig3.report(fig3.run())),
        "fig4": lambda: print(fig4.report(fig4.run())),
        "fig5": lambda: print(fig5.report(fig5.run())),
        "fig6": lambda: print(fig6.report(fig6.run())),
        "ablations": lambda: print(ablations.report_all()),
    }
    targets = list(figures) if args.figure == "all" else [args.figure]
    for target in targets:
        figures[target]()
        print()
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.what == "smoke":
        from repro.perf.smoke import main as smoke_main

        rest = ["--label", args.label] if args.label else []
        return smoke_main(rest)
    if args.what == "kernel":
        from repro.perf.bench import record_kernel

        record = record_kernel(label=args.label)
        print(f"kernel bench: {record['wall_seconds']:.3f}s wall, "
              f"{record['events_per_second']:,} events/s "
              f"-> appended to BENCH_kernel.json")
        return 0
    if args.what == "transfer":
        from repro.perf.transfer_bench import render, run

        record = run(smoke=args.smoke, label=args.label)
        print(render(record))
        if not args.smoke:
            print("-> appended to BENCH_transfer.json")
        return 0
    if args.what == "concurrency":
        from repro.perf.concurrency_bench import render, run

        record = run(smoke=args.smoke, label=args.label,
                     connections=args.connections)
        print(render(record))
        if not args.smoke:
            print("-> appended to BENCH_concurrency.json")
        return 0
    if args.what == "figures":
        from repro.perf.bench import record_figures

        record = record_figures(label=args.label)
        for name, entry in record["figures"].items():
            print(f"{name}: {entry['wall_seconds']:.3f}s")
        print(f"total: {record['total_wall_seconds']:.3f}s "
              f"-> appended to BENCH_figures.json")
        return 0
    # counters: run the traced mixed workload and print its snapshot.
    from repro.perf.counters import collect_server
    from repro.perf.workloads import traced_mixed_workload

    result, server = traced_mixed_workload(return_server=True)
    report = collect_server(server)
    report.publish()  # also visible via ``repro stats``
    print(report.render())
    print(f"trace: {len(result.records)} chunk completions, "
          f"sha256 {result.sha256()[:16]}...")
    return 0


def _cmd_replica(args: argparse.Namespace) -> int:
    import json

    from repro.replica.fleet import Fleet, render_status, run_demo

    if args.what == "status":
        # Self-contained: stand up a small fleet, seed one file, and
        # show what the catalog + collector know about it.
        fleet = Fleet(sites=args.sites)
        with fleet:
            catalog, replicator, client = fleet.federate(
                target_count=min(args.factor, args.sites),
                policy=args.policy, seed=args.seed)
            with replicator, client:
                client.write("status-demo.dat", b"s" * 4096)
                print(render_status(replicator))
        return 0

    # demo: seed, kill an appliance mid-workload, heal, verify.
    record = run_demo(sites=args.sites, files=args.files,
                      file_bytes=args.file_bytes,
                      target_count=min(args.factor, args.sites),
                      policy=args.policy, seed=args.seed,
                      kill=not args.no_kill)
    status = record.pop("status")
    print(status)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))
    failed = record["read_errors"] or record["deficits_after_heal"]
    if args.record:
        from repro.perf.bench import _environment_stamp, append_record

        record.update(_environment_stamp())
        append_record("BENCH_replica.json", record)
        print("\nappended to BENCH_replica.json")
    return 1 if failed else 0


def _cmd_tier(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.tier.demo import render_tier_status, run_tier_demo

    with tempfile.TemporaryDirectory(prefix="repro-tier-") as tmp:
        record = run_tier_demo(
            sites=args.sites,
            hot_files=args.hot_files,
            cold_files=args.cold_files,
            cold_bytes=args.cold_bytes,
            crowd_threads=args.crowd,
            tmp_dir=None if args.no_crash else tmp)
    if args.what == "status":
        print(render_tier_status(record))
    else:
        print(json.dumps(record, indent=2, sort_keys=True))
    if args.record:
        from repro.perf.bench import _environment_stamp, append_record

        record.update(_environment_stamp())
        append_record("BENCH_tier.json", record)
        print("\nappended to BENCH_tier.json")
    return 0 if record["ok"] else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    """Offline recovery: rebuild state from a state_dir and report."""
    import json
    import os

    from repro.durability import DurabilityManager
    from repro.nest.backends import LocalFSStore, MemoryStore
    from repro.nest.storage import StorageManager
    from repro.replica.catalog import ReplicaCatalog

    if not os.path.isdir(args.state_dir):
        print(f"recover: no such state dir {args.state_dir!r}",
              file=sys.stderr)
        return 2
    store = (LocalFSStore(args.store_root) if args.store_root
             else MemoryStore())
    storage = StorageManager(store=store)
    catalog = ReplicaCatalog()
    manager = DurabilityManager(args.state_dir, fsync=False)
    report = manager.recover_into(storage, catalog=catalog)
    manager.close(snapshot=False)
    print(json.dumps(report.describe(), indent=2, sort_keys=True))
    print()
    lots = [storage.lots.lots[lot_id].describe()
            for lot_id in sorted(storage.lots.lots)]
    print(f"lots recovered: {len(lots)}")
    for lot in lots:
        print(f"  {lot['lot_id']:<8} owner={lot['owner']:<12} "
              f"used={lot['used']}/{lot['capacity']} state={lot['state']}")
    replicas = catalog.snapshot()
    print(f"replica sets recovered: {len(replicas)}")
    for logical, copies in sorted(replicas.items()):
        sites = ", ".join(f"{c['site']}({c['state']})" for c in copies)
        print(f"  {logical}: {sites}")
    if report.corrupt_tail:
        print("journal ended in a torn/corrupt record "
              "(truncated to the last durable boundary)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.target:
        return _scrape(args.target, args.path)
    return _stats_demo()


def _fetch(target: str, path: str) -> bytes:
    """GET one management-endpoint document; raises OSError/ValueError."""
    import socket

    host, _, port = target.rpartition(":")
    try:
        portno = int(port)
    except ValueError:
        raise ValueError(f"target must be host:port, got {target!r}")
    with socket.create_connection((host or "127.0.0.1", portno),
                                  timeout=5.0) as conn:
        conn.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        chunks = []
        while True:
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
    response = b"".join(chunks)
    head, _, body = response.partition(b"\r\n\r\n")
    status = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " 200 " not in f" {status} ":
        raise OSError(f"scrape failed: {status}")
    return body


def _scrape(target: str, path: str) -> int:
    """Fetch one management-endpoint document from a live appliance."""
    try:
        body = _fetch(target, path)
    except ValueError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(body.decode("utf-8", "replace"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace collect``: stitch one cross-node Chrome trace.

    Scrapes ``/trace`` from every named management endpoint (each
    appliance, shard parent, or replicator host involved in a
    distributed operation), merges the documents -- deduplicating
    spans shipped to more than one endpoint -- optionally filters to
    one trace id, validates, and writes the result.
    """
    import json

    from repro.obs.export_chrome import merge_chrome_traces, validate_trace

    docs = []
    for target in args.targets:
        try:
            docs.append(json.loads(_fetch(target, "/trace")))
        except ValueError as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"trace: {target}: {exc}", file=sys.stderr)
            return 1
    merged = merge_chrome_traces(docs, trace_id=args.trace_id)
    problems = validate_trace(merged)
    if problems:
        for problem in problems[:10]:
            print(f"trace: invalid merge: {problem}", file=sys.stderr)
        return 1
    spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
    pids = {e["pid"] for e in spans}
    traces = {e.get("args", {}).get("trace_id") for e in spans}
    body = json.dumps(merged, indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(body)
    else:
        sys.stdout.write(body)
    print(f"trace: {len(spans)} spans, {len(pids)} processes, "
          f"{len(traces)} traces, from {len(docs)} endpoints",
          file=sys.stderr)
    return 0


def _stats_demo() -> int:
    """Run a tiny live workload and print the telemetry it produced."""
    import json

    from repro.client.chirp import ChirpClient
    from repro.nest.server import NestServer

    with NestServer() as server:
        host, port = server.endpoint("chirp")
        client = ChirpClient(host, port)
        try:
            client.put("/stats-demo.dat", b"x" * 262144)
            client.get("/stats-demo.dat")
        finally:
            client.close()
        print("# one Chirp put + get against an ephemeral NeST;")
        print(f"# live scrape surface: {server.host}:{server.ports['mgmt']}"
              " (/metrics /healthz /trace /ad)")
        print()
        print(server.obs.render_prometheus())
        print("# live-health ClassAd attributes")
        print(json.dumps(server.obs.health_attributes(), indent=2,
                         sort_keys=True))
        trace = server.obs.chrome_trace()
        print(f"# chrome trace: {len(trace['traceEvents'])} events "
              "(serve + scrape /trace to load in chrome://tracing)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="NeST Grid storage appliance (HPDC 2002)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a live NeST appliance")
    serve.add_argument("--name", default="nest")
    serve.add_argument("--port-base", type=int, default=0,
                       help="first port (0 = ephemeral)")
    serve.add_argument("--protocols",
                       default="chirp,ftp,gridftp,http,nfs,ibp")
    serve.add_argument("--scheduling", default="fcfs",
                       choices=["fcfs", "stride", "cache-aware"])
    serve.add_argument("--concurrency", default="adaptive",
                       choices=["adaptive", "threads", "events"])
    serve.add_argument("--concurrency-server", default="threaded",
                       choices=["threaded", "events", "adaptive"],
                       help="how connections are served: a thread per "
                            "connection, the selector-driven event loop, "
                            "or adaptive switching under load")
    serve.add_argument("--shards", type=int, default=0,
                       help="spawn N worker processes sharing one "
                            "SO_REUSEPORT chirp port (0: single process)")
    serve.add_argument("--require-lots", action="store_true")
    serve.add_argument("--state-dir", default="",
                       help="durable state directory (journal + snapshots); "
                            "empty runs memory-only")
    serve.set_defaults(func=_cmd_serve)

    jbos = sub.add_parser("jbos", help="run the native-server baseline")
    jbos.add_argument("--port-base", type=int, default=0)
    jbos.set_defaults(func=_cmd_jbos)

    bench = sub.add_parser("bench", help="regenerate the paper's figures")
    bench.add_argument("figure", nargs="?", default="all",
                       choices=["fig3", "fig4", "fig5", "fig6",
                                "ablations", "all"])
    bench.set_defaults(func=_cmd_bench)

    perf = sub.add_parser("perf", help="wall-clock benchmarks and counters")
    perf.add_argument("what", nargs="?", default="smoke",
                      choices=["smoke", "kernel", "figures", "counters",
                               "transfer", "concurrency"])
    perf.add_argument("--label", default="",
                      help="label stored with the trajectory record")
    perf.add_argument("--smoke", action="store_true",
                      help="transfer/concurrency bench: tiny sizes, "
                           "counter sanity asserts only, no trajectory "
                           "append")
    perf.add_argument("--connections", type=int, default=0,
                      help="concurrency bench: override the event-path "
                           "connection target")
    perf.set_defaults(func=_cmd_perf)

    replica = sub.add_parser(
        "replica", help="replica federation: status or kill-and-heal demo")
    replica.add_argument("what", nargs="?", default="status",
                         choices=["status", "demo"])
    replica.add_argument("--sites", type=int, default=4,
                         help="appliances in the ephemeral fleet")
    replica.add_argument("--factor", type=int, default=3,
                         help="target valid copies per logical file")
    replica.add_argument("--policy", default="throughput",
                         choices=["random", "space", "throughput", "load"])
    replica.add_argument("--seed", type=int, default=7)
    replica.add_argument("--files", type=int, default=6,
                         help="logical files the demo seeds")
    replica.add_argument("--file-bytes", type=int, default=64 * 1024)
    replica.add_argument("--no-kill", action="store_true",
                         help="demo without killing an appliance")
    replica.add_argument("--record", action="store_true",
                         help="append the demo record to BENCH_replica.json")
    replica.set_defaults(func=_cmd_replica)

    tier = sub.add_parser(
        "tier",
        help="storage tiers + autoscaling: flash-crowd absorption demo")
    tier.add_argument("what", nargs="?", default="status",
                      choices=["status", "demo"])
    tier.add_argument("--sites", type=int, default=3,
                      help="appliances in the ephemeral fleet")
    tier.add_argument("--hot-files", type=int, default=3,
                      help="files the flash crowd hammers")
    tier.add_argument("--cold-files", type=int, default=4,
                      help="files demoted to the cold tier")
    tier.add_argument("--cold-bytes", type=int, default=64 * 1024)
    tier.add_argument("--crowd", type=int, default=6,
                      help="concurrent reader threads")
    tier.add_argument("--no-crash", action="store_true",
                      help="skip the crash-at-every-journal-boundary sweep")
    tier.add_argument("--record", action="store_true",
                      help="append the demo record to BENCH_tier.json")
    tier.set_defaults(func=_cmd_tier)

    recover = sub.add_parser(
        "recover",
        help="replay a state_dir's journal and report recovered state")
    recover.add_argument("--state-dir", required=True,
                         help="durable state directory (journal + snapshot)")
    recover.add_argument("--store-root", default="",
                         help="LocalFSStore root backing the appliance "
                              "(empty: reconcile against an empty store)")
    recover.set_defaults(func=_cmd_recover)

    trace = sub.add_parser(
        "trace", help="distributed-trace tooling")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    collect = trace_sub.add_parser(
        "collect",
        help="scrape /trace from several endpoints and stitch one "
             "cross-node Chrome trace")
    collect.add_argument(
        "targets", nargs="+", metavar="HOST:PORT",
        help="management endpoints to scrape (appliances, shard "
             "parents, replicator hosts)")
    collect.add_argument(
        "--trace-id", default=None,
        help="keep only spans of this trace (default: every trace)")
    collect.add_argument(
        "-o", "--output", default=None,
        help="write the merged document here (default: stdout)")
    collect.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats", help="scrape a live appliance's telemetry (or demo it)")
    stats.add_argument("target", nargs="?", default="",
                       help="host:port of the management endpoint "
                            "(empty: run a self-contained demo workload)")
    stats.add_argument("--path", default="/metrics",
                       choices=["/metrics", "/healthz", "/trace", "/ad"],
                       help="which management document to fetch")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
