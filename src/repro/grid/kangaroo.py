"""Kangaroo-style store-and-forward data movement.

"Other data movement protocols such as Kangaroo could also be utilized
to move data from site to site" (paper, §6, citing Thain et al.'s *The
Kangaroo Approach to Data Movement on the Grid*).  Kangaroo's idea:
applications *hand off* output to a local spool and keep computing; a
background mover pushes the data toward its destination, absorbing
failures with retries.  Writes become reliable and asynchronous --
"hop by hop" instead of end to end.

:class:`KangarooMover` implements the one-hop version against NeST:
``put()`` spools locally and returns immediately; a mover thread
drains the spool to the destination server over Chirp, retrying with
backoff until the destination accepts.  ``flush()`` is the barrier
(Kangaroo's ``kangaroo_sync``).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.client.chirp import ChirpClient
from repro.client.errors import ClientError
from repro.client.retry import NO_RETRY
from repro.nest.auth import Credential


@dataclass
class SpoolEntry:
    """One pending write in the spool."""

    path: str
    data: bytes
    attempts: int = 0


@dataclass
class MoverStats:
    """Observability for tests and operators."""

    delivered: int = 0
    retries: int = 0
    failed: list[str] = field(default_factory=list)


class KangarooMover:
    """Asynchronous, retrying delivery of files to a NeST server."""

    def __init__(
        self,
        host: str,
        chirp_port: int,
        credential: Credential | None = None,
        max_attempts: int = 10,
        retry_delay: float = 0.2,
    ):
        self.host = host
        self.chirp_port = chirp_port
        self.credential = credential
        self.max_attempts = max_attempts
        self.retry_delay = retry_delay
        self.stats = MoverStats()
        self._spool: "queue.Queue[SpoolEntry | None]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._running = True
        self._thread = threading.Thread(target=self._mover_loop,
                                        name="kangaroo-mover", daemon=True)
        self._thread.start()

    # -- application side -----------------------------------------------------
    def put(self, path: str, data: bytes) -> None:
        """Spool a write and return immediately (the Kangaroo hand-off)."""
        if not self._running:
            raise RuntimeError("mover is stopped")
        self._idle.clear()
        self._spool.put(SpoolEntry(path=path, data=bytes(data)))

    def flush(self, timeout: float = 30.0) -> bool:
        """Block until the spool is fully delivered (kangaroo_sync)."""
        return self._idle.wait(timeout)

    def stop(self) -> None:
        """Drain and stop the mover."""
        self.flush()
        self._running = False
        self._spool.put(None)
        self._thread.join(timeout=5)

    def __enter__(self) -> "KangarooMover":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def pending(self) -> int:
        """Writes spooled but not yet delivered."""
        return self._spool.qsize()

    # -- mover side ----------------------------------------------------------
    def _mover_loop(self) -> None:
        while True:
            entry = self._spool.get()
            if entry is None:
                return
            self._deliver(entry)
            if self._spool.empty():
                self._idle.set()

    def _deliver(self, entry: SpoolEntry) -> None:
        while entry.attempts < self.max_attempts:
            entry.attempts += 1
            try:
                # NO_RETRY: the spool loop *is* the retry policy here,
                # with its own attempt budget and backoff.
                client = ChirpClient(self.host, self.chirp_port, timeout=5.0,
                                     retry=NO_RETRY)
                try:
                    if self.credential is not None:
                        client.authenticate(self.credential)
                    client.put(entry.path, entry.data)
                    self.stats.delivered += 1
                    return
                finally:
                    client.close()
            except (ClientError, OSError):
                # The destination is down or refused: back off and
                # retry -- the whole point of spooling.
                self.stats.retries += 1
                time.sleep(self.retry_delay * entry.attempts)
        self.stats.failed.append(entry.path)
