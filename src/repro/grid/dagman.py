"""A DAGMan-style request execution manager.

"Note that many of the steps of guaranteeing space, moving input data,
executing jobs, moving output data, and terminating reservations, can
be encapsulated within a request execution manager such as the Condor
Directed-Acyclic-Graph Manager (DAGMan)." (paper, §6)

Nodes are callables with parent dependencies; the manager runs every
node whose parents succeeded, with bounded concurrency and per-node
retries, and reports per-node outcomes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable


class DagError(Exception):
    """Structural problems: cycles, unknown parents, duplicate names."""


@dataclass
class DagNode:
    """One unit of work in the DAG."""

    name: str
    command: Callable[[], Any]
    parents: tuple[str, ...] = ()
    retries: int = 0

    # run-state, owned by the manager:
    status: str = "pending"  #: pending | running | done | failed | skipped
    result: Any = None
    error: BaseException | None = None
    attempts: int = 0


class DagMan:
    """Build and execute a DAG of named nodes."""

    def __init__(self) -> None:
        self._nodes: dict[str, DagNode] = {}

    # -- construction ---------------------------------------------------------
    def add(self, name: str, command: Callable[[], Any],
            parents: tuple[str, ...] | list[str] = (), retries: int = 0
            ) -> DagNode:
        """Add a node; parents must already exist or be added later."""
        if name in self._nodes:
            raise DagError(f"duplicate node {name!r}")
        node = DagNode(name=name, command=command, parents=tuple(parents),
                       retries=retries)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> DagNode:
        return self._nodes[name]

    def _validate(self) -> list[str]:
        """Check parents exist + no cycles; returns a topological order."""
        for node in self._nodes.values():
            for parent in node.parents:
                if parent not in self._nodes:
                    raise DagError(f"{node.name!r} depends on unknown {parent!r}")
        order: list[str] = []
        state: dict[str, int] = {}  # 0 unseen, 1 in-progress, 2 done

        def visit(name: str) -> None:
            if state.get(name) == 2:
                return
            if state.get(name) == 1:
                raise DagError(f"cycle involving {name!r}")
            state[name] = 1
            for parent in self._nodes[name].parents:
                visit(parent)
            state[name] = 2
            order.append(name)

        for name in self._nodes:
            visit(name)
        return order

    # -- execution ----------------------------------------------------------
    def run(self, max_concurrent: int = 4) -> bool:
        """Execute the DAG; returns True iff every node succeeded.

        Nodes whose parents failed are marked ``skipped``.  A failing
        node is retried up to its ``retries`` count before counting as
        failed.
        """
        self._validate()
        lock = threading.Lock()
        done_event = threading.Condition(lock)
        running = 0

        def runnable_locked() -> list[DagNode]:
            out = []
            for node in self._nodes.values():
                if node.status != "pending":
                    continue
                parent_status = [self._nodes[p].status for p in node.parents]
                if any(s in ("failed", "skipped") for s in parent_status):
                    node.status = "skipped"
                    continue
                if all(s == "done" for s in parent_status):
                    out.append(node)
            return out

        def execute(node: DagNode) -> None:
            nonlocal running
            while True:
                node.attempts += 1
                try:
                    node.result = node.command()
                    error = None
                except BaseException as exc:  # noqa: BLE001 - reported
                    error = exc
                if error is None:
                    break
                if node.attempts > node.retries:
                    node.error = error
                    break
            with done_event:
                node.status = "failed" if node.error else "done"
                running -= 1
                done_event.notify_all()

        with done_event:
            while True:
                for node in runnable_locked():
                    if running >= max_concurrent:
                        break
                    node.status = "running"
                    running += 1
                    threading.Thread(target=execute, args=(node,),
                                     daemon=True).start()
                unfinished = [n for n in self._nodes.values()
                              if n.status in ("pending", "running")]
                if not unfinished:
                    break
                done_event.wait(timeout=30)
        return all(n.status == "done" for n in self._nodes.values())

    def report(self) -> dict[str, str]:
        """Node name -> final status."""
        return {name: node.status for name, node in self._nodes.items()}
