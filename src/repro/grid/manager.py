"""The global execution manager: Figure 2's six-step scenario.

A user's input data lives on their home NeST; the manager

1. receives the job submission,
2. discovers a remote NeST with enough space (collector matchmaking)
   and creates a **lot** there over Chirp,
3. stages the input data with **third-party GridFTP** transfers,
4. runs the jobs at the remote site, where they access their files over
   **NFS** (the local-area protocol, as unmodified applications would),
5. moves the output data home, again over GridFTP,
6. terminates the lot and reports completion.

All the steps are encapsulated as a DAG, exactly the DAGMan usage the
paper sketches; :meth:`ExecutionManager.run_scenario` returns a
:class:`ScenarioReport` recording each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.client.chirp import ChirpClient
from repro.client.gridftp import GridFtpClient, third_party_transfer
from repro.client.nfs import NfsClient
from repro.grid.dagman import DagMan
from repro.grid.discovery import Collector
from repro.nest.advertise import storage_request_ad
from repro.nest.auth import Credential
from repro.nest.server import NestServer


@dataclass
class GridJob:
    """One remote job: reads input files, computes, writes outputs.

    ``compute`` maps {input path: bytes} to {output path: bytes}; the
    paths are remote-NeST paths relative to the staged working
    directory.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    compute: Callable[[dict[str, bytes]], dict[str, bytes]]


@dataclass
class ScenarioReport:
    """What happened, step by step (for assertions and the example)."""

    site: str = ""
    lot_id: str = ""
    staged_in: list[str] = field(default_factory=list)
    jobs_run: list[str] = field(default_factory=list)
    staged_out: list[str] = field(default_factory=list)
    lot_terminated: bool = False
    dag_status: dict[str, str] = field(default_factory=dict)


class ExecutionManager:
    """Coordinates jobs, storage reservations, and data movement."""

    def __init__(self, collector: Collector, credential: Credential):
        self.collector = collector
        self.credential = credential

    # -- step 2a: discovery ------------------------------------------------
    def find_site(self, needed_bytes: int,
                  exclude: str | None = None) -> tuple[str, dict[str, int], str]:
        """Matchmake a storage request; returns (host, ports, name).

        ``exclude`` skips a site by name (typically the home site --
        staging data to where it already lives achieves nothing).
        """
        request = storage_request_ad(needed_bytes, protocol="gridftp")
        ad = None
        for candidate in self.collector.query(request):
            if exclude is None or str(candidate.eval("Name")) != exclude:
                ad = candidate
                break
        if ad is None:
            raise RuntimeError(f"no site offers {needed_bytes} bytes")
        host = str(ad.eval("Host"))
        name = str(ad.eval("Name"))
        ports = {}
        for proto in ("chirp", "gridftp", "nfs", "http", "ftp"):
            value = ad.eval(f"{proto.capitalize()}Port")
            if isinstance(value, int):
                ports[proto] = value
        return host, ports, name

    # -- the full scenario ---------------------------------------------------
    def run_scenario(
        self,
        home: NestServer,
        jobs: list[GridJob],
        home_dir: str = "/home",
        remote_dir: str = "/scratch",
        space_factor: float = 2.0,
        lot_duration: float = 3600.0,
    ) -> ScenarioReport:
        """Execute Figure 2's steps 1-6 for ``jobs``.

        Input files must already exist under ``home_dir`` on ``home``;
        outputs appear there when the scenario completes.
        """
        report = ScenarioReport()
        input_paths = sorted({p for job in jobs for p in job.inputs})
        output_paths = sorted({p for job in jobs for p in job.outputs})

        # Step 1 happened: the user submitted `jobs` to us.
        home_chirp = ChirpClient(*home.endpoint("chirp"))
        home_chirp.authenticate(self.credential)
        try:
            input_bytes = sum(
                home_chirp.stat(f"{home_dir}/{p}")["size"] for p in input_paths
            )
            needed = int(space_factor * max(input_bytes, 1))

            # Step 2: find a site and guarantee space there with a lot.
            host, ports, site = self.find_site(needed,
                                               exclude=home.config.name)
            report.site = site
            remote_chirp = ChirpClient(host, ports["chirp"])
            remote_chirp.authenticate(self.credential)
            try:
                lot = remote_chirp.lot_create(needed, lot_duration)
                report.lot_id = lot["lot_id"]
                if not any(e["name"] == remote_dir.strip("/")
                           for e in remote_chirp.listdir("/")):
                    remote_chirp.mkdir(remote_dir)
                # Jobs run anonymously over NFS: open the directory up.
                remote_chirp.acl_set(remote_dir, "*", "rliwd")

                # Steps 3-6 as a DAG (the DAGMan encapsulation of §6).
                dag = DagMan()
                home_gftp = GridFtpClient(*home.endpoint("gridftp"),
                                          credential=self.credential)
                remote_gftp = GridFtpClient(host, ports["gridftp"],
                                            credential=self.credential)

                def stage_in(path: str) -> Callable[[], None]:
                    def step() -> None:
                        third_party_transfer(
                            home_gftp, f"{home_dir}/{path}",
                            remote_gftp, f"{remote_dir}/{path}",
                        )
                        report.staged_in.append(path)
                    return step

                def run_job(job: GridJob) -> Callable[[], None]:
                    def step() -> None:
                        nfs_client = NfsClient(host, ports["nfs"])
                        try:
                            nfs_client.mount("/")
                            inputs = {
                                p: nfs_client.read_file(f"{remote_dir}/{p}")
                                for p in job.inputs
                            }
                            outputs = job.compute(inputs)
                            for p, data in outputs.items():
                                nfs_client.write_file(f"{remote_dir}/{p}", data)
                        finally:
                            nfs_client.close()
                        report.jobs_run.append(job.name)
                    return step

                def stage_out(path: str) -> Callable[[], None]:
                    def step() -> None:
                        third_party_transfer(
                            remote_gftp, f"{remote_dir}/{path}",
                            home_gftp, f"{home_dir}/{path}",
                        )
                        report.staged_out.append(path)
                    return step

                for path in input_paths:
                    dag.add(f"stage-in:{path}", stage_in(path))
                for job in jobs:
                    dag.add(
                        f"job:{job.name}", run_job(job),
                        parents=[f"stage-in:{p}" for p in job.inputs],
                    )
                for path in output_paths:
                    producers = [f"job:{j.name}" for j in jobs
                                 if path in j.outputs]
                    dag.add(f"stage-out:{path}", stage_out(path),
                            parents=producers)

                try:
                    # Third-party control channels are serial: one data
                    # connection pairing at a time.
                    ok = dag.run(max_concurrent=1)
                finally:
                    home_gftp.close()
                    remote_gftp.close()
                report.dag_status = dag.report()
                if not ok:
                    raise RuntimeError(f"scenario DAG failed: {dag.report()}")

                # Step 6: terminate the reservation.
                remote_chirp.lot_delete(lot["lot_id"])
                report.lot_terminated = True
            finally:
                remote_chirp.close()
        finally:
            home_chirp.close()
        return report
