"""Grid middleware: the systems around NeST in Figure 2.

The paper's section 6 walks a user's jobs through a global Grid: a
**discovery system** holds NeST availability ads; a **global execution
manager** matches a request against them, creates a lot at the chosen
site, stages input data with third-party GridFTP, runs jobs that do
their I/O over NFS, ships outputs home, and finally terminates the
reservation; and a **DAG manager** (Condor DAGMan) sequences such steps
with dependencies.

This package implements all three against the live servers:

* :mod:`repro.grid.discovery` -- the collector + matchmaking queries;
* :mod:`repro.grid.dagman` -- a DAGMan-style dependency executor;
* :mod:`repro.grid.manager` -- the global execution manager running the
  full six-step scenario of Figure 2.
"""

from repro.grid.discovery import Collector
from repro.grid.dagman import DagMan, DagNode, DagError
from repro.grid.kangaroo import KangarooMover
from repro.grid.manager import ExecutionManager, GridJob, ScenarioReport

__all__ = [
    "Collector",
    "DagMan",
    "DagNode",
    "DagError",
    "KangarooMover",
    "ExecutionManager",
    "GridJob",
    "ScenarioReport",
]
