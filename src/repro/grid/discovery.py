"""The global discovery system: a ClassAd collector with matchmaking.

NeST servers periodically publish availability ads ("the NeST 'gateway'
appliance in Argonne has previously published both its resource and
data availability into a global Grid discovery system", §6); execution
managers query the collector with request ads and receive the
best-ranked matches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.classads import ClassAd, match_rank, symmetric_match


@dataclass
class _Entry:
    ad: ClassAd
    expires_at: float


def _slo_degraded(ad: ClassAd) -> bool:
    """True when the appliance itself says its SLO budget is burning."""
    return ad.eval("SloDegraded") is True


class Collector:
    """A registry of advertisements with TTL expiry and matchmaking."""

    def __init__(self, clock: Callable[[], float] = time.time,
                 default_ttl: float = 120.0):
        self.clock = clock
        self.default_ttl = default_ttl
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()

    def advertise(self, ad: ClassAd, ttl: float | None = None) -> None:
        """Publish (or refresh) an ad, keyed by its Name attribute."""
        name = ad.eval("Name")
        if not isinstance(name, str) or not name:
            raise ValueError("advertisement needs a string Name attribute")
        with self._lock:
            self._entries[name] = _Entry(
                ad=ad, expires_at=self.clock() + (ttl or self.default_ttl)
            )

    def withdraw(self, name: str) -> None:
        """Remove an ad explicitly."""
        with self._lock:
            self._entries.pop(name, None)

    def _alive(self) -> list[ClassAd]:
        now = self.clock()
        with self._lock:
            dead = [n for n, e in self._entries.items() if e.expires_at <= now]
            for name in dead:
                del self._entries[name]
            return [e.ad for e in self._entries.values()]

    def __len__(self) -> int:
        return len(self._alive())

    def names(self) -> set[str]:
        """Names of every live (unexpired) advertisement.

        The replica repair loop uses this as its liveness oracle: a
        site whose ad has TTL-expired (heartbeat stopped) or was
        withdrawn (graceful stop) is presumed dead.
        """
        return {str(ad.eval("Name")) for ad in self._alive()}

    def lookup(self, name: str) -> ClassAd | None:
        """The live ad published under ``name``, or None."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.expires_at <= self.clock():
                return None
            return entry.ad

    def query(self, request: ClassAd) -> list[ClassAd]:
        """Matching ads, best-ranked (by the request's Rank) first.

        Appliances advertising ``SloDegraded = True`` (error budget
        burning; see :mod:`repro.obs.slo`) still match -- they may be
        the only copy -- but sort after every healthy appliance, so
        matchmaking steers new load away from a struggling server
        before it tips over.
        """
        matches = [ad for ad in self._alive() if symmetric_match(request, ad)]
        matches.sort(key=lambda ad: (_slo_degraded(ad),
                                     -match_rank(request, ad)))
        return matches

    def locate(self, request: ClassAd) -> ClassAd | None:
        """The single best match, or None."""
        matches = self.query(request)
        return matches[0] if matches else None

    def fastest(self, requested_space: int,
                protocol: str | None = None) -> ClassAd | None:
        """The matching storage ad with the highest *measured*
        throughput, using the live-health ``ThroughputMBps`` attribute
        the appliances advertise (observed performance, not free
        space, as the selection signal)."""
        from repro.nest.advertise import throughput_request_ad

        return self.locate(throughput_request_ad(requested_space, protocol))
