"""Simulated client processes.

The paper's workloads are closed-loop: each client requests files
back-to-back for the duration of the experiment.  Whole-file clients
(Chirp/HTTP/FTP/GridFTP) fetch or store entire files; the NFS client
reads files as a stream of 8 KB block RPCs with a small outstanding
window, matching the kernel client's behaviour that makes NFS both
block-based and latency-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.sim.core import Environment
from repro.simnest.protocolspec import ProtocolSpec
from repro.simnest.server import Connection, SimNest


@dataclass
class FetchResult:
    """Measurement record for one completed file operation."""

    protocol: str
    path: str
    nbytes: int
    start: float
    end: float

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        """Bytes per second for this operation."""
        return self.nbytes / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class ClientLog:
    """All results one client accumulated."""

    protocol: str
    results: list[FetchResult] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.results)


def whole_file_client(
    env: Environment,
    server: SimNest,
    protocol: str,
    paths: list[str],
    log: ClientLog,
    client_cap: float | None = None,
    user: str = "anonymous",
    put_size: int | None = None,
) -> Generator:
    """Fetch (or store, when ``put_size`` is set) each path in turn."""
    conn = yield from server.connect(protocol, user)
    for path in paths:
        start = env.now
        if put_size is None:
            nbytes, _lat = yield from server.serve_get(conn, path, client_cap)
        else:
            nbytes, _lat = yield from server.serve_put(conn, path, put_size, client_cap)
        log.results.append(
            FetchResult(protocol=protocol, path=path, nbytes=nbytes,
                        start=start, end=env.now)
        )


def nfs_client(
    env: Environment,
    server: SimNest,
    paths: list[str],
    sizes: list[int],
    log: ClientLog,
    spec: ProtocolSpec,
    client_cap: float | None = None,
    user: str = "anonymous",
) -> Generator:
    """Read each file as a stream of block RPCs with ``spec.window``
    outstanding requests (round-robin striped across sub-loops)."""
    conn = yield from server.connect("nfs", user)
    for path, size in zip(paths, sizes):
        start = env.now
        window = max(1, spec.window)
        bs = spec.block_size

        def lane(first_block: int, conn: Connection = conn, path: str = path,
                 size: int = size) -> Generator:
            offset = first_block * bs
            while offset < size:
                n = min(bs, size - offset)
                if spec.client_block_cpu:
                    yield env.timeout(spec.client_block_cpu)
                yield from server.serve_block_read(conn, path, offset, n, client_cap)
                offset += window * bs

        lanes = [env.process(lane(i)) for i in range(window)]
        yield env.all_of(lanes)
        log.results.append(
            FetchResult(protocol="nfs", path=path, nbytes=size,
                        start=start, end=env.now)
        )


def nfs_writer(
    env: Environment,
    server: SimNest,
    path: str,
    size: int,
    log: ClientLog,
    spec: ProtocolSpec,
    client_cap: float | None = None,
    user: str = "anonymous",
) -> Generator:
    """Write a file as sequential block WRITE rpcs (window 1: the 2002
    kernel client serialized writes without write-behind gathering)."""
    conn = yield from server.connect("nfs", user)
    start = env.now
    bs = spec.block_size
    offset = 0
    while offset < size:
        n = min(bs, size - offset)
        if spec.client_block_cpu:
            yield env.timeout(spec.client_block_cpu)
        yield from server.serve_block_write(conn, path, offset, n, client_cap)
        offset += n
    log.results.append(
        FetchResult(protocol="nfs", path=path, nbytes=size, start=start, end=env.now)
    )
