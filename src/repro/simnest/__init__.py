"""The simulated substrate: NeST and JBOS on the DES testbed.

This package binds the *pure* NeST policy code (schedulers, adaptive
concurrency selection, storage manager) to the modelled 2002 testbed of
:mod:`repro.models`, so the paper's performance experiments run
deterministically at laptop scale:

* :mod:`repro.simnest.protocolspec` -- per-protocol wire behaviour
  constants (setup round trips, per-request CPU, block vs whole-file
  framing), calibrated against Fig. 3;
* :mod:`repro.simnest.gate` -- the pump gate that enforces a
  scheduler's decisions over concurrent transfers;
* :mod:`repro.simnest.server` -- :class:`SimNest` (one appliance, all
  protocols, shared transfer manager) and :class:`SimJbos` (the "Just a
  Bunch Of Servers" baseline: independent native servers sharing only
  the hardware);
* :mod:`repro.simnest.clients` -- client processes: whole-file
  fetch/store sessions and block-based NFS readers;
* :mod:`repro.simnest.workload` -- the paper's workloads (e.g. four
  clients requesting 10 MB files per protocol) and measurement
  plumbing.
"""

from repro.simnest.protocolspec import ProtocolSpec, spec_for, DEFAULT_SPECS
from repro.simnest.server import SimNest, SimJbos
from repro.simnest.clients import FetchResult
from repro.simnest.workload import (
    WorkloadResult,
    run_single_protocol,
    run_mixed_protocols,
)

__all__ = [
    "ProtocolSpec",
    "spec_for",
    "DEFAULT_SPECS",
    "SimNest",
    "SimJbos",
    "FetchResult",
    "WorkloadResult",
    "run_single_protocol",
    "run_mixed_protocols",
]
