"""Simulated NeST and JBOS servers.

:class:`SimNest` binds the pure policy code -- the storage manager,
the transfer schedulers of :mod:`repro.nest.scheduling`, and the
adaptive concurrency selector of :mod:`repro.nest.concurrency` -- to
the modelled testbed (filesystem, buffer cache, disk, fair-share link).
Client processes call its ``serve_*`` generator methods, which spend
simulated time exactly where the real server spends real time: protocol
parsing, scheduling arbitration, concurrency-model overheads, cache or
disk reads, and network transmission.

:class:`SimJbos` is the paper's baseline, "Just a Bunch Of Servers":
one independent native server per protocol, sharing only the hardware.
Structurally it is a set of single-protocol ``SimNest`` instances with
*separate* transfer managers and no virtual-protocol translation cost
-- precisely the difference the paper argues about: no JBOS
configuration can schedule across protocols, because no component sees
more than one of them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator

from repro.models.filesystem import FileSystemModel
from repro.models.network import FairShareLink
from repro.models.platform import PlatformProfile
from repro.nest.concurrency import (EVENTS, PROCESSES, SEDA, THREADS,
                                    Selector, make_selector)
from repro.nest.config import NestConfig
from repro.nest.graybox import GrayBoxCacheModel
from repro.nest.scheduling import TransferJob, make_job, make_scheduler
from repro.nest.storage import StorageManager, StorageError
from repro.protocols.common import Status
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.simnest.gate import PumpGate
from repro.simnest.protocolspec import DEFAULT_SPECS, ProtocolSpec


@dataclass
class ServerStats:
    """Counters a simulated server accumulates for the benches."""

    bytes_by_protocol: dict[str, int] = field(default_factory=dict)
    bytes_by_user: dict[str, int] = field(default_factory=dict)
    requests_by_protocol: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    model_assignments: dict[str, int] = field(default_factory=dict)

    #: bytes actually moved so far, per protocol (updated per chunk,
    #: so windowed bandwidth measurement sees partial transfers).
    progress_by_protocol: dict[str, int] = field(default_factory=dict)

    def moved(self, protocol: str, nbytes: int) -> None:
        self.progress_by_protocol[protocol] = (
            self.progress_by_protocol.get(protocol, 0) + nbytes
        )

    def account(self, protocol: str, nbytes: int, latency: float, model: str,
                user: str = "anonymous") -> None:
        self.bytes_by_protocol[protocol] = (
            self.bytes_by_protocol.get(protocol, 0) + nbytes
        )
        self.bytes_by_user[user] = self.bytes_by_user.get(user, 0) + nbytes
        self.requests_by_protocol[protocol] = (
            self.requests_by_protocol.get(protocol, 0) + 1
        )
        self.latencies.append(latency)
        self.model_assignments[model] = self.model_assignments.get(model, 0) + 1


class Connection:
    """One client session: per-flow scheduling state for block protocols."""

    _ids = itertools.count(1)

    def __init__(self, protocol: str, user: str = "anonymous"):
        self.conn_id = next(self._ids)
        self.protocol = protocol
        self.user = user
        self.flow_job: TransferJob | None = None  #: persistent stride job


class SimNest:
    """One simulated storage appliance."""

    #: Extra CPU the virtual protocol layer spends translating a request
    #: into the common format (NeST only; native JBOS servers skip it).
    VPL_TRANSLATE_COST = 20e-6

    #: Serialized arbitration overhead per stride quantum (scheduler
    #: pass + context switches + lost pipelining) -- the Fig. 4
    #: total-bandwidth cost of proportional sharing.
    STRIDE_GRANT_COST = 0.45e-3

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: NestConfig | None = None,
        fs: FileSystemModel | None = None,
        link: FairShareLink | None = None,
        specs: dict[str, ProtocolSpec] | None = None,
        is_native: bool = False,
    ):
        self.env = env
        self.platform = platform
        self.config = config or NestConfig()
        self.config.validate()
        self.specs = dict(specs or DEFAULT_SPECS)
        self.is_native = is_native
        quotas_on = self.config.require_lots and self.config.lot_enforcement == "quota"
        self.fs = fs if fs is not None else FileSystemModel(
            env, platform, capacity_bytes=self.config.capacity_bytes,
            quotas_enabled=quotas_on,
        )
        self.link = link if link is not None else FairShareLink(
            env, platform.link_bw, name=f"{self.config.name}-port"
        )
        self.storage = StorageManager(
            capacity_bytes=self.config.capacity_bytes,
            clock=lambda: env.now,
            require_lots=self.config.require_lots,
            lot_enforcement=self.config.lot_enforcement,
            reclaim_policy=self.config.reclaim_policy,
            anonymous_rights=self.config.anonymous_rights,
        )
        self.graybox = GrayBoxCacheModel(
            self.config.graybox_cache_bytes
            if self.config.graybox_cache_bytes
            else platform.cache_bytes,
            block_size=platform.block_size,
        )
        self.scheduler = make_scheduler(
            self.config.scheduling,
            shares=self.config.shares,
            residency=self.graybox.predict_residency,
            work_conserving=self.config.work_conserving,
            share_by=self.config.share_by,
        )
        grant_cost = (
            self.STRIDE_GRANT_COST if self.config.scheduling == "stride" else 0.0
        )
        self.gate = PumpGate(
            env, self.scheduler, workers=self.config.transfer_workers,
            grant_cost=grant_cost,
        )
        self.selector: Selector = make_selector(
            self.config.concurrency, models=self.config.concurrency_models
        )
        #: the event loop: capacity-1 -- a single-threaded loop can do
        #: exactly one thing at a time (this is what hurts events on
        #: disk-bound work in Fig. 5).
        self._event_loop = Resource(env, capacity=1)
        #: SEDA stages: small bounded pools per resource class.  The
        #: bounded disk stage is the point -- admission control keeps
        #: the disk from thrashing under unbounded concurrency.
        self._seda_disk_stage = Resource(env, capacity=2)
        #: thread-per-request degrades under load: scheduling and
        #: memory pressure grow with the number of live service threads
        #: (the overload behaviour SEDA was designed to avoid).
        self._active_threads = 0
        self.THREAD_OVERLOAD_THRESHOLD = 32
        self.THREAD_OVERLOAD_SLOPE = 0.15
        self.stats = ServerStats()
        # Protocol-implementation aggregate limits (e.g. the 2001
        # GridFTP stack's ~half-of-link ceiling) become group caps on
        # the shared link.
        for proto, spec in self.specs.items():
            if spec.flow_cap_fraction < 1.0:
                self.link.set_group_cap(
                    proto, spec.flow_cap_fraction * platform.link_bw
                )

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------
    def populate(self, path: str, size: int, owner: str = "admin",
                 resident: bool = True) -> None:
        """Pre-load a file (optionally warming the buffer cache), the
        way the paper's experiments start from in-cache files."""
        parts = [p for p in path.split("/") if p]
        prefix = ""
        for part in parts[:-1]:
            prefix += "/" + part
            if not self.storage.exists(prefix):
                self.storage.mkdir(owner, prefix)
        ticket = self.storage.approve_put(owner, path, size)
        ticket.settle(size)
        if path not in self.fs.files:
            self.fs.create(path, owner)
        self.fs.files[path].size = size
        self.fs.used_bytes += size
        if resident:
            self.fs.cache.access_read(path, 0, size)
            self.graybox.observe_read(path, 0, size)

    def rtt(self) -> float:
        """One network round trip."""
        return 2 * self.platform.net_latency

    def _cap_for(self, spec: ProtocolSpec, client_cap: float) -> float:
        return client_cap

    def _parse_cost(self, spec: ProtocolSpec) -> float:
        cost = spec.parse_cost_factor * self.platform.request_parse_cost
        if not self.is_native:
            cost += self.VPL_TRANSLATE_COST
        return cost

    # ------------------------------------------------------------------
    # session setup
    # ------------------------------------------------------------------
    def connect(self, protocol: str, user: str = "anonymous") -> Generator:
        """Process step: open a session (control dialogue, auth RTTs).

        Returns a :class:`Connection` via the generator's value.
        """
        spec = self.specs[protocol]
        if spec.setup_rtts:
            # One batched timeout for the whole control dialogue
            # (bit-identical end time to yielding each RTT in turn).
            yield self.env.timeout_chain([self.rtt()] * spec.setup_rtts)
        conn = Connection(protocol, user)
        return conn

    # ------------------------------------------------------------------
    # whole-file transfers (chirp / http / ftp / gridftp)
    # ------------------------------------------------------------------
    def serve_get(
        self, conn: Connection, path: str, client_cap: float | None = None
    ) -> Generator:
        """Process step: serve one whole-file retrieve to the client.

        Returns (bytes_moved, service_latency) via the generator value.
        """
        spec = self.specs[conn.protocol]
        cap = self._cap_for(spec, client_cap or self.platform.client_nic_bw)
        env = self.env
        # Request travel + parse as one batched timeout; ``start`` is
        # the post-travel instant, computed with the same float add the
        # kernel would use (bit-identical to yielding each in turn).
        start = env.now + self.platform.net_latency
        yield env.timeout_chain((self.platform.net_latency, self._parse_cost(spec)))
        try:
            ticket = self.storage.approve_get(conn.user, path)
            ticket.stream.close()
        except StorageError as exc:
            raise SimRequestError(exc.status, path) from exc
        size = ticket.size
        model = self.selector.choose()
        job = make_job(conn.protocol, user=conn.user, path=path, total_bytes=size)
        self.scheduler.add(job)
        try:
            yield from self._pump_out(job, spec, path, size, cap, model)
        finally:
            self.scheduler.remove(job)
        self.graybox.observe_read(path, 0, size)
        yield self.env.timeout(self.platform.net_latency)  # last ack back
        elapsed = self.env.now - start
        self.selector.report(model, size, elapsed)
        self.stats.account(conn.protocol, size, elapsed, model, user=conn.user)
        return size, elapsed

    def serve_put(
        self, conn: Connection, path: str, size: int,
        client_cap: float | None = None,
    ) -> Generator:
        """Process step: receive one whole file from the client."""
        spec = self.specs[conn.protocol]
        cap = self._cap_for(spec, client_cap or self.platform.client_nic_bw)
        env = self.env
        start = env.now + self.platform.net_latency
        yield env.timeout_chain((self.platform.net_latency, self._parse_cost(spec)))
        try:
            ticket = self.storage.approve_put(conn.user, path, size)
        except StorageError as exc:
            raise SimRequestError(exc.status, path) from exc
        if path not in self.fs.files:
            self.fs.create(path, conn.user)
        model = self.selector.choose()
        job = make_job(conn.protocol, user=conn.user, path=path, total_bytes=size)
        self.scheduler.add(job)
        try:
            yield from self._pump_in(job, spec, path, size, cap, model)
        finally:
            self.scheduler.remove(job)
            ticket.settle(size)
        self.graybox.observe_write(path, 0, size)
        yield self.env.timeout(self.platform.net_latency)
        elapsed = self.env.now - start
        self.selector.report(model, size, elapsed)
        self.stats.account(conn.protocol, size, elapsed, model, user=conn.user)
        return size, elapsed

    # ------------------------------------------------------------------
    # block transfers (NFS)
    # ------------------------------------------------------------------
    def serve_block_read(
        self, conn: Connection, path: str, offset: int, nbytes: int,
        client_cap: float | None = None,
    ) -> Generator:
        """Process step: one NFS READ rpc."""
        spec = self.specs[conn.protocol]
        cap = self._cap_for(spec, client_cap or self.platform.client_nic_bw)
        env = self.env
        start = env.now + self.platform.net_latency
        yield env.timeout_chain((self.platform.net_latency, self._parse_cost(spec)))
        job = self._block_job(conn, path)
        yield from self.gate.acquire(job, nbytes)
        try:
            model = self._fixed_model()
            # Concurrency overhead + protocol per-chunk CPU as one
            # batched timeout (bit-identical end time, fewer events).
            yield self.env.timeout_chain(
                self._overhead_delays(model, first=job.bytes_moved == 0)
                + (spec.per_chunk_cpu,)
            )
            yield from self._read_data(model, path, offset, nbytes)
            yield self.link.transfer(nbytes, cap=cap, group=conn.protocol)
        finally:
            self.gate.release(job, nbytes)
            if job is not conn.flow_job:
                self.scheduler.remove(job)
        self.stats.moved(conn.protocol, nbytes)
        self.graybox.observe_read(path, offset, nbytes)
        yield self.env.timeout(self.platform.net_latency)
        elapsed = self.env.now - start
        self.stats.account(conn.protocol, nbytes, elapsed, self._fixed_model(),
                           user=conn.user)
        return nbytes, elapsed

    def serve_block_write(
        self, conn: Connection, path: str, offset: int, nbytes: int,
        client_cap: float | None = None,
    ) -> Generator:
        """Process step: one NFS WRITE rpc."""
        spec = self.specs[conn.protocol]
        cap = self._cap_for(spec, client_cap or self.platform.client_nic_bw)
        env = self.env
        start = env.now + self.platform.net_latency
        yield env.timeout_chain((self.platform.net_latency, self._parse_cost(spec)))
        try:
            ticket = self.storage.approve_write(conn.user, path, offset, nbytes)
            ticket.settle(nbytes)
        except StorageError as exc:
            raise SimRequestError(exc.status, path) from exc
        if path not in self.fs.files:
            self.fs.create(path, conn.user)
        job = self._block_job(conn, path)
        yield from self.gate.acquire(job, nbytes)
        try:
            yield self.link.transfer(nbytes, cap=cap, group=conn.protocol)
            yield self.env.timeout(spec.per_chunk_cpu)
            yield from self.fs.write(path, offset, nbytes)
        finally:
            self.gate.release(job, nbytes)
            if job is not conn.flow_job:
                self.scheduler.remove(job)
        self.stats.moved(conn.protocol, nbytes)
        self.graybox.observe_write(path, offset, nbytes)
        yield self.env.timeout(self.platform.net_latency)
        elapsed = self.env.now - start
        self.stats.account(conn.protocol, nbytes, elapsed, self._fixed_model(),
                           user=conn.user)
        return nbytes, elapsed

    def _block_job(self, conn: Connection, path: str) -> TransferJob:
        """Stride keeps one persistent job per flow (pass accumulates
        across blocks, which is how proportional shares throttle NFS);
        admission-ordered policies queue each block as a fresh request
        (which is how FIFO ends up disfavouring NFS, Fig. 3)."""
        if self.config.scheduling == "stride":
            if conn.flow_job is None:
                conn.flow_job = make_job(conn.protocol, user=conn.user, path=path)
                self.scheduler.add(conn.flow_job)
            return conn.flow_job
        job = make_job(conn.protocol, user=conn.user, path=path)
        self.scheduler.add(job)
        return job

    # ------------------------------------------------------------------
    # pumping under a concurrency model
    # ------------------------------------------------------------------
    def _fixed_model(self) -> str:
        if self.config.concurrency in (THREADS, EVENTS, PROCESSES, SEDA):
            return self.config.concurrency
        return THREADS

    def _thread_overload_factor(self) -> float:
        excess = max(0, self._active_threads - self.THREAD_OVERLOAD_THRESHOLD)
        return 1.0 + excess * self.THREAD_OVERLOAD_SLOPE

    def _chunk_size(self, model: str) -> int:
        if model == EVENTS:
            base = self.platform.event_chunk
        else:
            base = self.platform.thread_chunk
        if self.config.scheduling == "stride":
            return min(base, self.config.quantum_bytes)
        return base

    def _overhead_delays(self, model: str, first: bool) -> tuple[float, ...]:
        """Per-chunk concurrency-model CPU delays, in the order the
        model pays them.  Returned as a tuple so the hot loops can
        coalesce them (plus the protocol's per-chunk CPU) into a single
        batched timeout via ``env.timeout_chain`` -- same simulated
        end time, one kernel event instead of up to three."""
        p = self.platform
        if model == THREADS:
            factor = self._thread_overload_factor()
            if first:
                return (p.thread_create_cost * factor,
                        p.thread_switch_cost * factor)
            return (p.thread_switch_cost * factor,)
        if model == PROCESSES:
            if first:
                return (p.process_create_cost, p.process_switch_cost)
            return (p.process_switch_cost,)
        if model == SEDA:
            # Two stage handoffs per chunk (enqueue + dispatch), each
            # about as cheap as an event-loop dispatch.
            return (2 * p.event_dispatch_cost,)
        return (p.event_dispatch_cost,)  # events

    def _concurrency_overhead(self, model: str, job: TransferJob,
                              first: bool) -> Generator:
        """Process step: spend the model's per-chunk CPU (batched)."""
        yield self.env.timeout_chain(self._overhead_delays(model, first))

    def _read_data(self, model: str, path: str, offset: int, nbytes: int) -> Generator:
        """Read from the fs under the model's blocking semantics."""
        if model == EVENTS:
            # The single-threaded loop is busy for the whole read.
            with self._event_loop.request() as grant:
                yield grant
                yield from self.fs.read(path, offset, nbytes)
        elif model == SEDA:
            # Stage routing: cache-resident reads take the fast
            # event-driven path; only disk-bound work enters the
            # bounded disk stage (admission control over the spindle).
            file_id = self.fs.files[path].file_id if path in self.fs.files else path
            resident = all(
                self.fs.cache.contains(file_id, b)
                for b in self.fs.cache.blocks_of(offset, nbytes)
            )
            if resident:
                yield from self.fs.read(path, offset, nbytes)
            else:
                with self._seda_disk_stage.request() as grant:
                    yield grant
                    yield from self.fs.read(path, offset, nbytes)
        else:
            yield from self.fs.read(path, offset, nbytes)

    def _pump_out(self, job: TransferJob, spec: ProtocolSpec, path: str,
                  size: int, cap: float, model: str) -> Generator:
        """Move ``size`` bytes server -> client, one gate-scheduled
        chunk at a time (the transfer manager's service cycle)."""
        if model == THREADS:
            self._active_threads += 1
        try:
            yield from self._pump_out_inner(job, spec, path, size, cap, model)
        finally:
            if model == THREADS:
                self._active_threads -= 1

    def _pump_out_inner(self, job: TransferJob, spec: ProtocolSpec, path: str,
                        size: int, cap: float, model: str) -> Generator:
        env = self.env
        chunk = self._chunk_size(model)
        per_chunk_cpu = spec.per_chunk_cpu
        offset = 0
        first = True
        pending_send = None
        while offset < size:
            n = min(chunk, size - offset)
            yield from self.gate.acquire(job, n)
            try:
                yield env.timeout_chain(
                    self._overhead_delays(model, first) + (per_chunk_cpu,)
                )
                yield from self._read_data(model, path, offset, n)
                if model == EVENTS:
                    # Async sends: overlap this chunk's send with the
                    # next chunk's read; bound buffering to one chunk.
                    if pending_send is not None:
                        yield pending_send
                    pending_send = self.link.transfer(n, cap=cap,
                                                      group=job.protocol)
                else:
                    yield self.link.transfer(n, cap=cap, group=job.protocol)
            finally:
                self.gate.release(job, n)
            self.stats.moved(job.protocol, n)
            offset += n
            first = False
        if pending_send is not None:
            yield pending_send

    def _pump_in(self, job: TransferJob, spec: ProtocolSpec, path: str,
                 size: int, cap: float, model: str) -> Generator:
        """Move ``size`` bytes client -> server."""
        env = self.env
        chunk = self._chunk_size(model)
        offset = 0
        first = True
        while offset < size:
            n = min(chunk, size - offset)
            yield from self.gate.acquire(job, n)
            try:
                yield env.timeout_chain(self._overhead_delays(model, first))
                yield self.link.transfer(n, cap=cap, group=job.protocol)
                yield env.timeout(spec.per_chunk_cpu)
                yield from self.fs.write(path, offset, n)
            finally:
                self.gate.release(job, n)
            self.stats.moved(job.protocol, n)
            offset += n
            first = False


class SimRequestError(Exception):
    """A simulated request failed at the storage manager."""

    def __init__(self, status: Status, path: str):
        super().__init__(f"{status.value}: {path}")
        self.status = status
        self.path = path


class SimJbos:
    """"Just a Bunch Of Servers": one native server per protocol.

    All servers share the machine (one filesystem/cache/disk, one
    network port) but nothing else -- separate schedulers, separate
    gates, no cross-protocol control.  Per-server configs default to
    FCFS with the same worker count NeST uses, which is what a stock
    wu-ftpd / Apache / nfsd deployment looks like.
    """

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        protocols: list[str] | tuple[str, ...] = ("chirp", "gridftp", "http", "nfs"),
        specs: dict[str, ProtocolSpec] | None = None,
        workers_per_server: int = 8,
        throttle: dict[str, float] | None = None,
    ):
        self.env = env
        self.platform = platform
        self.fs = FileSystemModel(env, platform)
        self.link = FairShareLink(env, platform.link_bw, name="jbos-port")
        self.servers: dict[str, SimNest] = {}
        #: Optional Apache-style per-server bandwidth throttles
        #: (bytes/s); applies within one server only -- the point of the
        #: paper's comparison with mod_throttle.
        self.throttle = dict(throttle or {})
        for proto in protocols:
            cfg = NestConfig(
                name=f"native-{proto}", protocols=(proto,),
                scheduling="fcfs", concurrency="threads",
                transfer_workers=workers_per_server,
            )
            self.servers[proto] = SimNest(
                env, platform, cfg, fs=self.fs, link=self.link,
                specs=specs, is_native=True,
            )

    def __getitem__(self, protocol: str) -> SimNest:
        return self.servers[protocol]

    def connect(self, protocol: str, user: str = "anonymous") -> Generator:
        """Open a session against the native server for ``protocol``."""
        conn = yield from self.servers[protocol].connect(protocol, user)
        return conn

    def effective_cap(self, protocol: str, client_cap: float | None = None) -> float:
        """Client cap combined with any per-server throttle."""
        cap = client_cap if client_cap is not None else self.platform.client_nic_bw
        if protocol in self.throttle:
            cap = min(cap, self.throttle[protocol])
        return cap

    def total_stats(self) -> ServerStats:
        """Aggregate stats across the bunch."""
        agg = ServerStats()
        for server in self.servers.values():
            for proto, nbytes in server.stats.bytes_by_protocol.items():
                agg.bytes_by_protocol[proto] = (
                    agg.bytes_by_protocol.get(proto, 0) + nbytes
                )
            for proto, count in server.stats.requests_by_protocol.items():
                agg.requests_by_protocol[proto] = (
                    agg.requests_by_protocol.get(proto, 0) + count
                )
            agg.latencies.extend(server.stats.latencies)
        return agg
