"""Per-protocol behaviour constants for the simulated substrate.

Fig. 3's headline observation is that delivered bandwidth "varies
widely across each of the protocols; Chirp and HTTP deliver in-cache
files at the peak bandwidth determined by our network, whereas GridFTP
and NFS achieve only approximately half of this bandwidth" -- and that
NeST tracks each native server closely.  These constants encode *why*
each protocol behaves as it does:

* **Chirp/HTTP/FTP** are whole-file streaming protocols: after a short
  control exchange the data flows at whatever the network gives.
* **GridFTP** (the 2001 Globus implementation) pays a GSI handshake,
  extended-block framing CPU per chunk, and conservative TCP usage that
  in the paper's testbed capped a flow near half the link -- modelled
  here as ``flow_cap_fraction``.
* **NFS** is *block-based*: the client issues 8 KB READ RPCs with a
  small outstanding window, so every block pays round-trip latency and
  per-RPC CPU; NFS therefore cannot saturate the link no matter how the
  server schedules it (this is also what breaks the 1:1:1:4 stride
  allocation in Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ProtocolSpec:
    """Simulation constants for one wire protocol."""

    name: str
    #: Control-channel round trips before data can flow (per session).
    setup_rtts: int
    #: Server CPU to parse/dispatch one request, as a multiplier of the
    #: platform's ``request_parse_cost``.
    parse_cost_factor: float
    #: Server CPU per data chunk (framing, checksums), seconds.
    per_chunk_cpu: float
    #: Fraction of the link one flow of this protocol can use (models
    #: protocol/TCP inefficiency on the 2002 stacks).
    flow_cap_fraction: float
    #: Block-based protocols issue fixed-size requests with a window.
    block_based: bool = False
    block_size: int = 8192
    window: int = 1
    #: Client-side CPU per block RPC (marshalling + kernel client),
    #: seconds -- only meaningful for block-based protocols.
    client_block_cpu: float = 0.0


#: Calibrated against Fig. 3 (Linux/GigE: Chirp ~35, HTTP ~34,
#: GridFTP ~18, NFS ~16 MB/s for four clients reading cached 10 MB
#: files).
DEFAULT_SPECS: dict[str, ProtocolSpec] = {
    "chirp": ProtocolSpec(
        name="chirp", setup_rtts=1, parse_cost_factor=1.0,
        per_chunk_cpu=10e-6, flow_cap_fraction=1.0,
    ),
    "http": ProtocolSpec(
        name="http", setup_rtts=1, parse_cost_factor=1.5,
        per_chunk_cpu=12e-6, flow_cap_fraction=1.0,
    ),
    "ftp": ProtocolSpec(
        name="ftp", setup_rtts=4, parse_cost_factor=1.2,
        per_chunk_cpu=12e-6, flow_cap_fraction=1.0,
    ),
    "gridftp": ProtocolSpec(
        name="gridftp", setup_rtts=8, parse_cost_factor=2.0,
        per_chunk_cpu=60e-6, flow_cap_fraction=0.5,
    ),
    "nfs": ProtocolSpec(
        name="nfs", setup_rtts=2, parse_cost_factor=1.6,
        per_chunk_cpu=25e-6, flow_cap_fraction=1.0,
        block_based=True, block_size=8192, window=2,
        client_block_cpu=1.3e-3,
    ),
}


def spec_for(protocol: str, **overrides) -> ProtocolSpec:
    """The default spec for ``protocol``, with optional overrides."""
    try:
        spec = DEFAULT_SPECS[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None
    return replace(spec, **overrides) if overrides else spec
