"""The pump gate: enforcing scheduler decisions over concurrent transfers.

The transfer manager owns every on-going request, which is what lets
NeST schedule across protocols at all (paper, section 4.2).  In the
simulated server this control point is the :class:`PumpGate`: a
transfer must acquire the gate before moving each scheduling unit of
data (one chunk of a whole-file stream, one block RPC of an NFS flow),
and the gate consults the :class:`~repro.nest.scheduling.Scheduler` to
decide who goes next.  A job may have several service requests pending
at once (e.g. an NFS connection's request window); they are granted
oldest-first.

``grant_cost`` models the CPU the fine-grained arbitration burns
(scheduler run + extra context switches + lost pipelining); the
arbitration is *serialized* -- one decision at a time -- which is the
mechanism behind Fig. 4's observation that the proportional-share
scheduler delivers 24-28 MB/s against FIFO's 33 MB/s.

For non-work-conserving stride (the paper's future-work policy), a
select() that returns None while ready jobs exist makes the gate idle
for ``idle_wait`` before granting the best *ready* job anyway --
bounded anticipatory idling [Iyer & Druschel].
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Generator

from repro.nest.scheduling import Scheduler, TransferJob
from repro.sim.core import Environment, Event

_enqueue_counter = itertools.count(1)


class PumpGate:
    """Scheduler-ordered admission of transfer service units."""

    def __init__(
        self,
        env: Environment,
        scheduler: Scheduler,
        workers: int,
        grant_cost: float = 0.0,
        idle_wait: float = 2e-3,
    ):
        self.env = env
        self.scheduler = scheduler
        self.workers = workers
        self.grant_cost = grant_cost
        self.idle_wait = idle_wait
        self._active = 0
        #: per-job FIFO of pending (event, nbytes) service requests.
        self._waiters: dict[int, tuple[TransferJob, Deque[tuple[Event, int]]]] = {}
        self._idle_timer_pending = False
        #: serialized-arbitration bookkeeping: when the arbiter frees up.
        self._arbiter_free_at = 0.0
        #: perf counters (experiment and perf-layer introspection)
        self.grants = 0
        self.arbitrations = 0

    # -- transfer side -------------------------------------------------------
    def acquire(self, job: TransferJob, nbytes: int) -> Generator:
        """Process step: wait until the scheduler grants ``job`` a slot
        to move ``nbytes``."""
        ev = Event(self.env)
        entry = self._waiters.get(job.job_id)
        if entry is None:
            self._waiters[job.job_id] = (job, deque([(ev, nbytes)]))
        else:
            entry[1].append((ev, nbytes))
        self._refresh(job)
        self._try_grant()
        yield ev

    def release(self, job: TransferJob, moved: int) -> None:
        """Return the slot after moving ``moved`` bytes."""
        self._active -= 1
        self.scheduler.charge(job, moved)
        self._try_grant()

    def withdraw(self, job: TransferJob) -> None:
        """Cancel all of a job's pending requests (connection aborted)."""
        self._waiters.pop(job.job_id, None)
        job.ready = False
        job.available = 0

    # -- bookkeeping -------------------------------------------------------------
    def _refresh(self, job: TransferJob) -> None:
        """Sync the job's scheduler-visible readiness with its queue."""
        entry = self._waiters.get(job.job_id)
        if entry and entry[1]:
            job.ready = True
            job.available = entry[1][0][1]
            job.enqueue_seq = next(_enqueue_counter)
        else:
            self._waiters.pop(job.job_id, None)
            job.ready = False
            job.available = 0

    def _pop_grant(self, job: TransferJob) -> Event:
        entry = self._waiters[job.job_id]
        ev, _nbytes = entry[1].popleft()
        if entry[1]:
            job.available = entry[1][0][1]
        else:
            self._waiters.pop(job.job_id, None)
            job.ready = False
            job.available = 0
        return ev

    def _dispatch(self, ev: Event) -> None:
        """Fire a grant, serializing through the arbiter's CPU cost."""
        self._active += 1
        self.grants += 1
        if self.grant_cost <= 0:
            ev.succeed()
            return
        start = max(self.env.now, self._arbiter_free_at)
        self._arbiter_free_at = start + self.grant_cost
        delay = self.env.timeout(self._arbiter_free_at - self.env.now)
        delay.callbacks.append(lambda _e, target=ev: target.succeed())

    # -- arbitration -----------------------------------------------------------
    def _try_grant(self) -> None:
        waiters = self._waiters
        workers = self.workers
        select = self.scheduler.select
        now = self.env.now
        while self._active < workers and waiters:
            self.arbitrations += 1
            choice = select(now)
            if choice is None or choice.job_id not in waiters:
                # Non-work-conserving idling: the rightful job is not
                # ready; re-arbitrate shortly.
                if waiters and not self._idle_timer_pending:
                    self._idle_timer_pending = True
                    timer = self.env.timeout(self.idle_wait)
                    timer.callbacks.append(self._idle_expired)
                return
            self._dispatch(self._pop_grant(choice))

    def _idle_expired(self, _event: Event) -> None:
        self._idle_timer_pending = False
        self._force_grant()

    def _force_grant(self) -> None:
        """After idling, grant the best *ready* job even if the
        scheduler would prefer to keep waiting (bounded idling)."""
        while self._active < self.workers and self._waiters:
            candidates = [job for job, q in self._waiters.values() if q]
            if not candidates:
                return
            job = min(candidates, key=lambda j: (j.pass_value, j.enqueue_seq))
            self._dispatch(self._pop_grant(job))
        self._try_grant()
