"""Workload builders and measurement for the paper's experiments.

The Fig. 3/4 workload: "four clients request 10 MB files for each
protocol", files in cache, closed loop.  These helpers build that
workload against either a :class:`~repro.simnest.server.SimNest` or a
:class:`~repro.simnest.server.SimJbos`, run the simulation, and report
per-protocol delivered bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.models.platform import PlatformProfile
from repro.nest.config import NestConfig
from repro.sim.core import Environment
from repro.simnest.clients import ClientLog, nfs_client, whole_file_client
from repro.simnest.protocolspec import DEFAULT_SPECS
from repro.simnest.server import SimJbos, SimNest

MB = 1_000_000


@dataclass
class WorkloadResult:
    """Per-protocol delivered bandwidth over the measured interval."""

    elapsed: float
    bytes_by_protocol: dict[str, int] = field(default_factory=dict)
    logs: list[ClientLog] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_protocol.values())

    def bandwidth(self, protocol: str | None = None) -> float:
        """Delivered bytes/second, total or for one protocol."""
        if self.elapsed <= 0:
            return 0.0
        if protocol is None:
            return self.total_bytes / self.elapsed
        return self.bytes_by_protocol.get(protocol, 0) / self.elapsed

    def bandwidth_mbps(self, protocol: str | None = None) -> float:
        """Delivered bandwidth in MB/s (the paper's unit)."""
        return self.bandwidth(protocol) / MB


def _spawn_clients(
    env: Environment,
    get_server: Callable[[str], SimNest],
    get_cap: Callable[[str], float | None],
    protocols: list[str],
    n_clients: int,
    file_bytes: int,
    files_per_client: int,
) -> list[ClientLog]:
    """Start the closed-loop client population; returns their logs."""
    logs: list[ClientLog] = []
    for protocol in protocols:
        server = get_server(protocol)
        for c in range(n_clients):
            # One file per client, fetched repeatedly: the paper's
            # closed-loop in-cache workload (the whole working set must
            # stay buffer-cache resident).
            paths = [f"/data/{protocol}-{c}" for _ in range(files_per_client)]
            for path in set(paths):
                if not server.storage.exists(path):
                    server.populate(path, file_bytes, resident=True)
            log = ClientLog(protocol=protocol)
            logs.append(log)
            cap = get_cap(protocol)
            if protocol == "nfs":
                spec = server.specs["nfs"]
                env.process(
                    nfs_client(env, server, paths, [file_bytes] * len(paths),
                               log, spec, client_cap=cap)
                )
            else:
                env.process(
                    whole_file_client(env, server, protocol, paths, log,
                                      client_cap=cap)
                )
    return logs


def _collect(
    env: Environment,
    logs: list[ClientLog],
    servers: list[SimNest],
    horizon: float,
    warmup: float,
) -> WorkloadResult:
    """Measure steady-state delivered bandwidth in [warmup, horizon].

    Progress counters (bytes moved per chunk) are snapshotted at the
    window edges so partially complete transfers count -- completion
    quantization would otherwise hide up to one file per stream.
    """
    env.run(until=warmup)
    before: dict[str, int] = {}
    for server in servers:
        for proto, n in server.stats.progress_by_protocol.items():
            before[proto] = before.get(proto, 0) + n
    env.run(until=horizon)
    result = WorkloadResult(elapsed=horizon - warmup, logs=logs)
    for server in servers:
        for proto, n in server.stats.progress_by_protocol.items():
            result.bytes_by_protocol[proto] = (
                result.bytes_by_protocol.get(proto, 0)
                + n
                - before.get(proto, 0)
            )
    return result


def run_single_protocol(
    protocol: str,
    platform: PlatformProfile,
    server_kind: str = "nest",
    config: NestConfig | None = None,
    n_clients: int = 4,
    file_mb: int = 10,
    files_per_client: int = 10_000,
    horizon: float = 12.0,
    warmup: float = 2.0,
) -> WorkloadResult:
    """Fig. 3's single-protocol bars: one protocol, NeST or native."""
    env = Environment()
    file_bytes = file_mb * MB
    if server_kind == "nest":
        cfg = config or NestConfig()
        server = SimNest(env, platform, cfg)
        servers = [server]
        get_server = lambda _p: server
        get_cap = lambda _p: None
    elif server_kind == "jbos":
        jbos = SimJbos(env, platform, protocols=(protocol,))
        servers = list(jbos.servers.values())
        get_server = lambda p: jbos[p]
        get_cap = lambda p: jbos.effective_cap(p)
    else:
        raise ValueError(f"unknown server kind {server_kind!r}")
    logs = _spawn_clients(env, get_server, get_cap, [protocol], n_clients,
                          file_bytes, files_per_client)
    return _collect(env, logs, servers, horizon, warmup)


def run_mixed_protocols(
    platform: PlatformProfile,
    server_kind: str = "nest",
    config: NestConfig | None = None,
    protocols: tuple[str, ...] = ("chirp", "gridftp", "http", "nfs"),
    n_clients: int = 4,
    file_mb: int = 10,
    files_per_client: int = 10_000,
    horizon: float = 12.0,
    warmup: float = 2.0,
    throttle: dict[str, float] | None = None,
) -> WorkloadResult:
    """Fig. 3's mixed bars and the whole of Fig. 4: all protocols at once."""
    env = Environment()
    file_bytes = file_mb * MB
    if server_kind == "nest":
        cfg = config or NestConfig()
        server = SimNest(env, platform, cfg)
        servers = [server]
        get_server = lambda _p: server
        get_cap = lambda _p: None
    elif server_kind == "jbos":
        jbos = SimJbos(env, platform, protocols=protocols, throttle=throttle)
        servers = list(jbos.servers.values())
        get_server = lambda p: jbos[p]
        get_cap = lambda p: jbos.effective_cap(p)
    else:
        raise ValueError(f"unknown server kind {server_kind!r}")
    logs = _spawn_clients(env, get_server, get_cap, list(protocols), n_clients,
                          file_bytes, files_per_client)
    return _collect(env, logs, servers, horizon, warmup)
