"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy.
Simulation *processes* are Python generators that yield :class:`Event`
objects (timeouts, resource requests, other processes, conditions);
the :class:`Environment` advances virtual time and resumes them.

This kernel is the substrate for all performance experiments in the
NeST reproduction: the 2002 testbed (GigE cluster, IBM disks, kernel
buffer cache, OS schedulers) is modelled on top of it in
:mod:`repro.models`, and the simulated NeST/JBOS servers in
:mod:`repro.simnest` run as processes within it.

Determinism: events scheduled for the same time break ties on
(priority, insertion sequence), so a run is a pure function of its
inputs and seed.
"""

from repro.sim.core import (
    Environment,
    Event,
    Process,
    Timeout,
    Interrupt,
    AllOf,
    AnyOf,
    SimulationError,
)
from repro.sim.resources import Resource, PriorityResource, Container, Store
from repro.sim.trace import KernelTrace

__all__ = [
    "KernelTrace",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
]
