"""Core of the discrete-event simulation kernel.

The design mirrors SimPy's proven API surface (``env.process``,
``env.timeout``, ``yield event``) because it composes well with
generator-based modelling code, but the implementation here is
self-contained and deterministic.

Hot-path engineering (every figure of the reproduction is regenerated
through this kernel, so its constant factors are the whole wall-clock
story):

* :meth:`Environment.run` inlines the dispatch loop -- local aliases
  for ``heappop``, the queue, and the resume deque instead of a
  per-event :meth:`Environment.step` call;
* timeouts are recycled through a free-list pool; a processed
  :class:`Timeout` that nothing else references (checked via the
  CPython refcount) goes back to the pool instead of the allocator;
* a process that yields an *already processed* event is resumed
  through a cheap pending-resume deque rather than a freshly allocated
  bridge :class:`Event`; deque entries carry a sequence number drawn
  from the same counter as heap entries, so the dispatch order is
  bit-identical to scheduling a bridge event at ``(now, URGENT, seq)``;
* following SimPy, ``event.callbacks`` becomes ``None`` once the event
  is processed, which both drops a list allocation per event and makes
  :meth:`Process.interrupt`'s stale-target guard actually work.

The kernel also keeps integer perf counters (events scheduled and
processed, direct resumes, timeout pool hits, heap high-water mark)
that :mod:`repro.perf` snapshots; each is a plain attribute increment
on the hot path.

Opt-in telemetry: :meth:`Environment.enable_trace` attaches a
:class:`repro.sim.trace.KernelTrace` recording dispatches and process
lifetimes in simulated time (exported to ``chrome://tracing`` via
:mod:`repro.obs.export_chrome`).  Disabled -- the default -- it costs
one ``is None`` test per dispatched event, so simulated results stay
bit-exact and the microbenchmark wall clock is unchanged.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. yielding a non-event)."""


class StopProcess(Exception):
    """Internal: raised into a generator to return a value via ``exit()``."""

    def __init__(self, value: Any):
        self.value = value


#: Scheduling priorities: URGENT beats NORMAL at equal times.
URGENT = 0
NORMAL = 1

#: Upper bound on the timeout free list (a runaway workload should not
#: pin an unbounded graveyard of Timeout objects).
_POOL_LIMIT = 4096


class Event:
    """A one-shot occurrence in simulated time.

    An event begins *pending*, may be *triggered* (scheduled to fire),
    and finally *processed* once its callbacks run.  Processes wait on
    events by yielding them.  Once processed, ``callbacks`` is ``None``
    (SimPy semantics): nothing may append to a processed event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        return self._value

    def _state_repr(self) -> str:
        if self._processed:
            state = "processed"
        elif self._triggered:
            state = "triggered"
        else:
            state = "pending"
        if self._ok is False:
            state += " failed"
        return state

    def __repr__(self) -> str:
        value = ""
        if self._triggered and self._value is not None:
            value = f" value={self._value!r}"
        return f"<{type(self).__name__} {self._state_repr()}{value}>"

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        env = self.env
        env._push(self, env._now, NORMAL)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        env = self.env
        env._push(self, env._now, NORMAL)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 _at: Optional[float] = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env.timeouts_created += 1
        env._push(self, env._now + delay if _at is None else _at, NORMAL)

    def __repr__(self) -> str:
        value = f" value={self._value!r}" if self._value is not None else ""
        return f"<Timeout delay={self.delay!r} {self._state_repr()}{value}>"


class Initialize(Event):
    """Internal: first resume of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self._ok = True
        self._triggered = True
        env._push(self, env._now, URGENT)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The cause passed to ``interrupt()``."""
        return self.args[0]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires when the generator
    returns (its value is the generator's return value), so processes
    can wait on each other by yielding them.
    """

    __slots__ = ("_generator", "_target", "name", "_born")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None):
        if not hasattr(generator, "throw"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._born = env._now
        init = Initialize(env)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def __repr__(self) -> str:
        if self._ok is None:
            target = ""
            if self._target is not None:
                t = self._target
                target = f" waiting-on=<{type(t).__name__} {t._state_repr()}>"
            return f"<Process {self.name!r} alive{target}>"
        return f"<Process {self.name!r} {self._state_repr()} value={self._value!r}>"

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        target = self._target
        if target is not None and target.callbacks is not None:
            # Deschedule from a still-unprocessed target; a processed
            # target has ``callbacks = None`` and its stale resume (if
            # queued) is filtered at dispatch by the ``_target is ev``
            # guard.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._triggered = True
        interrupt_ev.callbacks.append(self._resume)
        self.env._push(interrupt_ev, self.env._now, URGENT)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except StopProcess as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # process crashed
            self._finish(False, exc)
            return
        if not isinstance(next_event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}"
            )
            try:
                self._generator.throw(exc)
            except BaseException as inner:
                self._finish(False, inner)
            return
        env = self.env
        if next_event.env is not env:
            self._finish(False, SimulationError("event from a different environment"))
            return
        self._target = next_event
        if next_event._processed:
            # Already fired: queue a direct resume.  The entry draws a
            # sequence number from the same counter as heap pushes, so
            # it dispatches exactly where a bridge event scheduled at
            # (now, URGENT, seq) would have.
            env._seqno = seq = env._seqno + 1
            env._pending.append((seq, self, next_event))
            env.direct_resumes += 1
        else:
            next_event.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self._triggered = True
        env = self.env
        if env._trace is not None:
            env._trace.record_process(self.name, self._born, env._now)
        env._push(self, env._now, NORMAL)


class Condition(Event):
    """Base for ``AllOf`` / ``AnyOf`` composite wait conditions."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self._count}/{len(self._events)}"
                f" {self._state_repr()}>")

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._ok}


class AllOf(Condition):
    """Fires when all given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class AnyOf(Condition):
    """Fires when any one of the given events has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Environment:
    """The simulation environment: clock plus event queue.

    Perf counters (plain integers; see :mod:`repro.perf.counters`):

    ``events_processed``
        heap events dispatched (direct resumes counted separately);
    ``direct_resumes``
        already-processed-event resumes served from the deque;
    ``timeouts_created`` / ``timeouts_reused``
        Timeout allocations vs free-list pool hits;
    ``heap_peak``
        high-water mark of the event heap;
    ``events_scheduled``
        total scheduling operations (heap pushes + direct resumes).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seqno = 0
        #: direct resumes waiting to dispatch: (seq, process, event).
        self._pending: deque[tuple[int, Process, Event]] = deque()
        self._timeout_pool: list[Timeout] = []
        #: opt-in simulated-time trace (None = zero-overhead default).
        self._trace = None
        # perf counters
        self.events_processed = 0
        self.direct_resumes = 0
        self.timeouts_created = 0
        self.timeouts_reused = 0
        self.heap_peak = 0

    def enable_trace(self, limit: int = 65536):
        """Attach (and return) a :class:`~repro.sim.trace.KernelTrace`
        recording every dispatch from now on in simulated time."""
        from repro.sim.trace import KernelTrace

        self._trace = KernelTrace(limit=limit)
        return self._trace

    @property
    def trace(self):
        """The attached kernel trace, or None when tracing is off."""
        return self._trace

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total scheduling operations (heap pushes + direct resumes)."""
        return self._seqno

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            ev._defused = False
            ev.delay = delay
            self.timeouts_reused += 1
            self._push(ev, self._now + delay, NORMAL)
            return ev
        return Timeout(self, delay, value)

    def timeout_chain(self, delays: Iterable[float], value: Any = None) -> Timeout:
        """One event standing in for several back-to-back timeouts.

        The wake-up time is accumulated with the *same float additions*
        a chain of ``yield env.timeout(d)`` steps would perform, so
        replacing such a chain with ``yield env.timeout_chain(delays)``
        is bit-identical in simulated time while scheduling a single
        event instead of ``len(delays)`` (the transfer fast path's
        per-chunk CPU/dispatch coalescing relies on this).
        """
        when = self._now
        for d in delays:
            if d < 0:
                raise SimulationError(f"negative timeout delay {d!r}")
            when += d
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            ev._defused = False
            ev.delay = when - self._now
            self.timeouts_reused += 1
            self._push(ev, when, NORMAL)
            return ev
        return Timeout(self, when - self._now, value, _at=when)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any one of ``events``."""
        return AnyOf(self, events)

    def exit(self, value: Any = None) -> None:
        """Terminate the calling process, returning ``value``."""
        raise StopProcess(value)

    # -- scheduling ---------------------------------------------------------
    def _push(self, event: Event, when: float, priority: int) -> None:
        """Schedule ``event`` at absolute time ``when``."""
        self._seqno = seq = self._seqno + 1
        heapq.heappush(self._queue, (when, priority, seq, event))

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        """Back-compat alias for :meth:`_push` with a relative delay."""
        self._push(event, self._now + delay, priority)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._pending:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def _next_is_pending(self) -> bool:
        """True if the pending-resume deque dispatches before the heap."""
        if not self._pending:
            return False
        if not self._queue:
            return True
        when, priority, seq, _ev = self._queue[0]
        now = self._now
        # A pending resume dispatches at (now, URGENT, its seq).
        return when > now or (when == now and (priority == NORMAL
                                               or seq > self._pending[0][0]))

    def step(self) -> None:
        """Process the single next event (slow path; :meth:`run` inlines
        this loop)."""
        if self._next_is_pending():
            _seq, proc, ev = self._pending.popleft()
            if proc._target is ev:
                proc._resume(ev)
            return
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        qlen = len(self._queue) + 1
        if qlen > self.heap_peak:
            self.heap_peak = qlen
        self._now = when
        if self._trace is not None:
            self._trace.record_event(when, event)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for cb in callbacks:
            cb(event)
        self.events_processed += 1
        if event._ok is False and not event._defused:
            raise event._value
        if type(event) is Timeout and getrefcount(event) == 2 \
                and len(self._timeout_pool) < _POOL_LIMIT:
            event._value = None
            self._timeout_pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        * ``until=None`` -- run to exhaustion;
        * a number -- run until that simulated time;
        * an :class:`Event` -- run until it fires, returning its value.
        """
        if until is None:
            self._dispatch(None)
            return None
        if isinstance(until, Event):
            target = until
            self._dispatch(target)
            if not target._processed:
                raise SimulationError("event never fired; queue exhausted")
            if target._ok:
                return target._value
            target._defused = True
            raise target._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("cannot run backwards in time")
        self._dispatch(horizon)
        self._now = horizon
        return None

    def _dispatch(self, until: Optional[float | Event]) -> None:
        """The inlined hot dispatch loop behind every :meth:`run` mode.

        ``until`` is ``None`` (exhaust), a float horizon, or a target
        event; the stop checks are arranged so the common per-event
        work touches only local aliases.
        """
        queue = self._queue
        pending = self._pending
        pool = self._timeout_pool
        heappop_ = heapq.heappop
        refcount_ = getrefcount
        timeout_type = Timeout
        trace_ = self._trace
        horizon = until if type(until) is float else None
        target = until if isinstance(until, Event) else None
        now = self._now
        processed = self.events_processed
        peak = self.heap_peak
        try:
            while True:
                if target is not None and target._processed:
                    return
                if pending:
                    # A pending resume dispatches at (now, URGENT, seq):
                    # before anything later-or-NORMAL, after earlier
                    # URGENT heap entries -- exactly where the seed
                    # kernel's bridge event would have fired.
                    if queue:
                        head = queue[0]
                        head_when = head[0]
                        run_pending = head_when > now or (
                            head_when == now
                            and (head[1] == NORMAL or head[2] > pending[0][0])
                        )
                    else:
                        run_pending = True
                    if run_pending:
                        _seq, proc, ev = pending.popleft()
                        if proc._target is ev:
                            proc._resume(ev)
                        continue
                elif not queue:
                    return  # exhausted (run() reports a never-fired target)
                if horizon is not None and queue[0][0] > horizon:
                    return
                qlen = len(queue)
                if qlen > peak:
                    peak = qlen
                when, _prio, _seq, event = heappop_(queue)
                now = self._now = when
                if trace_ is not None:
                    trace_.record_event(when, event)
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for cb in callbacks:
                    cb(event)
                processed += 1
                if event._ok is False and not event._defused:
                    raise event._value
                # Recycle a dead timeout nothing else references: the
                # only live refs are our local and getrefcount's arg.
                if type(event) is timeout_type and refcount_(event) == 2 \
                        and len(pool) < _POOL_LIMIT:
                    event._value = None
                    pool.append(event)
        finally:
            self.events_processed = processed
            self.heap_peak = peak
