"""Core of the discrete-event simulation kernel.

The design mirrors SimPy's proven API surface (``env.process``,
``env.timeout``, ``yield event``) because it composes well with
generator-based modelling code, but the implementation here is
self-contained and deterministic.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. yielding a non-event)."""


class StopProcess(Exception):
    """Internal: raised into a generator to return a value via ``exit()``."""

    def __init__(self, value: Any):
        self.value = value


#: Scheduling priorities: URGENT beats NORMAL at equal times.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event begins *pending*, may be *triggered* (scheduled to fire),
    and finally *processed* once its callbacks run.  Processes wait on
    events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if still pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, priority=NORMAL)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exc``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        self.env._schedule(self, priority=NORMAL)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, priority=NORMAL, delay=delay)


class Initialize(Event):
    """Internal: first resume of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self._ok = True
        self._triggered = True
        env._schedule(self, priority=URGENT)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        """The cause passed to ``interrupt()``."""
        return self.args[0]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires when the generator
    returns (its value is the generator's return value), so processes
    can wait on each other by yielding them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None):
        if not hasattr(generator, "throw"):
            raise SimulationError("process() requires a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        init = Initialize(env)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev._triggered = True
        interrupt_ev.callbacks.append(self._resume)
        self.env._schedule(interrupt_ev, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except StopProcess as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:  # process crashed
            self._finish(False, exc)
            return
        if not isinstance(next_event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}"
            )
            try:
                self._generator.throw(exc)
            except BaseException as inner:
                self._finish(False, inner)
            return
        if next_event.env is not self.env:
            self._finish(False, SimulationError("event from a different environment"))
            return
        self._target = next_event
        if next_event._processed:
            # Already fired: resume immediately (via urgent null event).
            bridge = Event(self.env)
            bridge._ok = next_event._ok
            bridge._value = next_event._value
            bridge._defused = True
            bridge._triggered = True
            bridge.callbacks.append(self._resume)
            self.env._schedule(bridge, priority=URGENT)
        else:
            next_event.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self._triggered = True
        self.env._schedule(self, priority=NORMAL)


class Condition(Event):
    """Base for ``AllOf`` / ``AnyOf`` composite wait conditions."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self._events if ev._ok}


class AllOf(Condition):
    """Fires when all given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class AnyOf(Condition):
    """Fires when any one of the given events has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Environment:
    """The simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any of ``events``."""
        return AnyOf(self, events)

    def exit(self, value: Any = None) -> None:
        """Terminate the calling process, returning ``value``."""
        raise StopProcess(value)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        * ``until=None`` -- run to exhaustion;
        * a number -- run until that simulated time;
        * an :class:`Event` -- run until it fires, returning its value.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._queue:
                    raise SimulationError("event never fired; queue exhausted")
                self.step()
            if target._ok:
                return target._value
            target._defused = True
            raise target._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
