"""Shared resources for the DES kernel: Resource, Container, Store.

These follow the SimPy resource semantics: ``request()`` returns an
event that fires when a slot is granted; requests support ``with``
blocks for scoped holds.
"""

from __future__ import annotations

from typing import Any

from repro.sim.core import Environment, Event, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = resource._next_order()
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw this request if it has not been granted yet."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` slots and a wait queue.

    The default queue discipline is FIFO; :class:`PriorityResource`
    orders the queue by a caller-supplied priority.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiting: list[Request] = []
        self._order_counter = 0

    def _next_order(self) -> int:
        self._order_counter += 1
        return self._order_counter

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a held slot (no-op if the request never got one)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_waiters()
        else:
            self._cancel(request)

    # -- internals ----------------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)
        self._sort_queue()
        self._grant_waiters()

    def _sort_queue(self) -> None:
        pass  # FIFO: insertion order is already correct

    def _cancel(self, request: Request) -> None:
        if request in self._waiting:
            self._waiting.remove(request)

    def _grant_waiters(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.pop(0)
            self._users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A resource whose queue is ordered by (priority, arrival)."""

    def _sort_queue(self) -> None:
        self._waiting.sort(key=lambda r: (r.priority, r._order))


class Container:
    """A homogeneous quantity (e.g. bytes of disk space) with put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise SimulationError("initial level out of range")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount < 0:
            raise SimulationError("negative amount")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when enough is available."""
        if amount < 0:
            raise SimulationError("negative amount")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed()
                    progress = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of arbitrary items with blocking put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def put(self, item: Any) -> Event:
        """Add ``item``; fires once there is room."""
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; fires with it once one exists."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def __len__(self) -> int:
        return len(self.items)

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.pop(0)
                self.items.append(item)
                ev.succeed()
                progress = True
            if self._getters and self.items:
                ev = self._getters.pop(0)
                ev.succeed(self.items.pop(0))
                progress = True
