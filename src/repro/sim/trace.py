"""Simulated-time event tracing for the DES kernel.

A :class:`KernelTrace` is an opt-in, bounded record of what the kernel
dispatched and when (in *simulated* seconds): every event dispatch as
an instant record, every process lifetime as a duration record.  The
Chrome exporter (:func:`repro.obs.export_chrome.sim_trace_to_chrome`)
turns one into a ``chrome://tracing``-loadable timeline of a
simulation run -- the figure benches' scheduling behaviour becomes a
picture instead of a number.

Tracing is **off by default** and guarded by a single ``is None``
check in the dispatch loop, so the figure numbers stay bit-exact and
the kernel microbenchmark's wall clock is unaffected when disabled
(the invariant ``benchmarks/bench_kernel.py`` enforces).  The kernel
is single-threaded, so the trace keeps plain lists with no locking.
"""

from __future__ import annotations

from typing import Any

__all__ = ["KernelTrace"]


class KernelTrace:
    """Bounded record of kernel dispatches in simulated time."""

    def __init__(self, limit: int = 65536):
        self.limit = limit
        #: (kind, name, t0, t1) tuples, oldest first.
        self._records: list[tuple[str, str, float, float]] = []
        self.dropped = 0

    # -- recording (called from the kernel's dispatch loop) ----------------
    def record_event(self, when: float, event: Any) -> None:
        """One dispatched event at simulated time ``when``."""
        if len(self._records) >= self.limit:
            self.dropped += 1
            return
        name = getattr(event, "name", None) or type(event).__name__
        self._records.append(("event", name, when, when))

    def record_process(self, name: str, started: float, ended: float) -> None:
        """One finished process's simulated lifetime."""
        if len(self._records) >= self.limit:
            self.dropped += 1
            return
        self._records.append(("proc", name, started, ended))

    # -- reading -----------------------------------------------------------
    def records(self) -> list[tuple[str, str, float, float]]:
        """Snapshot of trace records, oldest first."""
        return list(self._records)

    def processes(self) -> list[tuple[str, float, float]]:
        """(name, started, ended) for every finished process."""
        return [(n, t0, t1) for k, n, t0, t1 in self._records if k == "proc"]

    def events(self) -> list[tuple[str, float]]:
        """(name, when) for every dispatched event record."""
        return [(n, t0) for k, n, t0, _t1 in self._records if k == "event"]

    def __len__(self) -> int:
        return len(self._records)
