"""Wire protocols and the common request interface.

The paper's central flexibility mechanism is the *virtual protocol
layer* (section 3): every protocol handler transforms its own wire
format to and from a **common request interface** understood by the
rest of NeST, much like the VFS layer in an operating system.

This package provides:

* :mod:`repro.protocols.common` -- the common request/response objects
  and stream helpers shared by all protocols;
* :mod:`repro.protocols.chirp` -- Chirp, NeST's native text protocol
  (the only protocol with lot management and ACL operations);
* :mod:`repro.protocols.http` -- an HTTP/1.0 subset (GET/PUT/HEAD);
* :mod:`repro.protocols.ftp` -- an FTP subset (RFC 765 lineage):
  control/data channels, passive mode, RETR/STOR/LIST/MKD/DELE;
* :mod:`repro.protocols.gridftp` -- FTP extended with GSI
  authentication (ADAT), extended-block mode (MODE E) with parallel
  data streams, and third-party transfers;
* :mod:`repro.protocols.nfs` -- a restricted NFS subset: framed
  RPC with XDR-style marshalling, file handles, MOUNT and LOOKUP,
  block-granular READ/WRITE (the only *block-based* protocol, which
  matters for byte-based stride scheduling).

Codecs are written against buffered binary streams so the same code
serves the live socket servers, the clients, and the unit tests.
"""

from repro.protocols.common import (
    Request,
    Response,
    RequestType,
    Status,
    ProtocolError,
    PROTOCOL_NAMES,
)

__all__ = [
    "Request",
    "Response",
    "RequestType",
    "Status",
    "ProtocolError",
    "PROTOCOL_NAMES",
]
