"""Chirp: NeST's native protocol.

Chirp is a simple text line protocol (one request per line, arguments
percent-encoded) and is the only protocol exposing NeST's full feature
set: lot management, ACL manipulation, and ClassAd status queries
(paper, sections 3 and 5).  Bulk data follows ``get``/``put`` exchanges
as raw bytes with an announced length.

Wire grammar::

    request   := verb (' ' arg)* CRLF
    response  := 'ok' (' ' arg)* CRLF [payload]
              |  'err' status (' ' message)? CRLF

``get`` replies ``ok <size>`` then streams ``size`` bytes; ``put
<path> <size>`` replies ``ok`` (go ahead), the client streams ``size``
bytes, and the server confirms with a final ``ok``.

**Trace context.**  A request line may end with one tagged argument
``tc=<trace_id>:<span_id>`` carrying the caller's distributed trace
context.  The tag is stripped before positional parsing, so servers
that understand it adopt the caller's span as the request parent and
everything else ignores it: a traced request to an old server is just
a request with one extra trailing argument (harmless to every
fixed-arity verb), and an untraced request parses exactly as before.
"""

from __future__ import annotations

from typing import Any
from urllib.parse import quote, unquote

from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Response,
    Status,
)

#: Default TCP port for Chirp in this reproduction.
DEFAULT_PORT = 9094

_VERB_TO_TYPE = {
    "get": RequestType.GET,
    "put": RequestType.PUT,
    "read": RequestType.READ,
    "write": RequestType.WRITE,
    "mkdir": RequestType.MKDIR,
    "rmdir": RequestType.RMDIR,
    "ls": RequestType.LIST,
    "stat": RequestType.STAT,
    "unlink": RequestType.DELETE,
    "rename": RequestType.RENAME,
    "lot_create": RequestType.LOT_CREATE,
    "lot_delete": RequestType.LOT_DELETE,
    "lot_renew": RequestType.LOT_RENEW,
    "lot_stat": RequestType.LOT_STAT,
    "lot_list": RequestType.LOT_LIST,
    "lot_attach": RequestType.LOT_ATTACH,
    "acl_set": RequestType.ACL_SET,
    "acl_get": RequestType.ACL_GET,
    "thirdput": RequestType.THIRDPUT,
    "checksum": RequestType.CHECKSUM,
    "query": RequestType.QUERY,
    "auth": RequestType.AUTH,
    "quit": RequestType.QUIT,
}
_TYPE_TO_VERB = {v: k for k, v in _VERB_TO_TYPE.items()}

_STATUS_CODES = {status: status.value for status in Status}
_CODE_TO_STATUS = {status.value: status for status in Status}


def encode_args(args: list[str]) -> str:
    """Percent-encode arguments so paths with spaces survive the wire."""
    return " ".join(quote(a, safe="/:.,=_-") for a in args)


def decode_args(text: str) -> list[str]:
    """Inverse of :func:`encode_args`."""
    return [unquote(part) for part in text.split(" ") if part]


#: Tag prefixing the optional trailing trace-context argument.
TRACE_TAG = "tc="


def _strip_trace(args: list[str]) -> tuple[list[str], str | None]:
    """Split off a trailing ``tc=<token>`` argument, if present.

    Only the *last* argument is considered and only when it parses as
    a well-formed trace context, so a path or ACL subject that happens
    to start with ``tc=`` still reaches the positional parser intact.
    """
    if args and args[-1].startswith(TRACE_TAG):
        from repro.obs.spans import parse_trace_context

        token = args[-1][len(TRACE_TAG):]
        if parse_trace_context(token) is not None:
            return args[:-1], token
    return args, None


def encode_request(req: Request) -> str:
    """Render a :class:`Request` as one Chirp command line."""
    verb = _TYPE_TO_VERB.get(req.rtype)
    if verb is None:
        raise ProtocolError(f"chirp cannot carry request type {req.rtype}")
    args: list[str] = []
    if req.rtype in (RequestType.GET, RequestType.STAT, RequestType.LIST,
                     RequestType.MKDIR, RequestType.RMDIR, RequestType.DELETE,
                     RequestType.ACL_GET, RequestType.CHECKSUM):
        args = [req.path]
    elif req.rtype is RequestType.PUT:
        args = [req.path, str(req.length)]
    elif req.rtype in (RequestType.READ, RequestType.WRITE):
        args = [req.path, str(req.offset), str(req.length)]
    elif req.rtype is RequestType.RENAME:
        args = [req.path, str(req.params.get("new_path", ""))]
    elif req.rtype is RequestType.LOT_CREATE:
        args = [str(req.params.get("capacity", 0)), str(req.params.get("duration", 0))]
        if req.params.get("owner"):
            args.append(str(req.params["owner"]))
    elif req.rtype in (RequestType.LOT_DELETE, RequestType.LOT_STAT):
        args = [str(req.params.get("lot_id", ""))]
    elif req.rtype is RequestType.LOT_RENEW:
        args = [str(req.params.get("lot_id", "")), str(req.params.get("duration", 0))]
    elif req.rtype is RequestType.LOT_ATTACH:
        args = [str(req.params.get("lot_id", "")), req.path]
    elif req.rtype is RequestType.LOT_LIST:
        args = []
    elif req.rtype is RequestType.ACL_SET:
        args = [req.path, str(req.params.get("subject", "")),
                str(req.params.get("rights", ""))]
    elif req.rtype is RequestType.THIRDPUT:
        args = [req.path, str(req.params.get("host", "")),
                str(req.params.get("port", 0)),
                str(req.params.get("remote_path", ""))]
    elif req.rtype is RequestType.QUERY:
        args = []
    elif req.rtype is RequestType.AUTH:
        args = [str(req.params.get("mechanism", "gsi"))]
    elif req.rtype is RequestType.QUIT:
        args = []
    trace = req.params.get("trace")
    if trace:
        args = [*args, f"{TRACE_TAG}{trace}"]
    return verb if not args else f"{verb} {encode_args(args)}"


def decode_request(line: str) -> Request:
    """Parse one Chirp command line into a :class:`Request`."""
    parts = line.split(" ", 1)
    verb = parts[0].lower()
    rtype = _VERB_TO_TYPE.get(verb)
    if rtype is None:
        raise ProtocolError(f"unknown chirp verb {verb!r}")
    args = decode_args(parts[1]) if len(parts) > 1 else []
    args, trace = _strip_trace(args)
    req = Request(rtype=rtype, protocol="chirp")
    if trace is not None:
        req.params["trace"] = trace
    try:
        if rtype in (RequestType.GET, RequestType.STAT, RequestType.LIST,
                     RequestType.MKDIR, RequestType.RMDIR, RequestType.DELETE,
                     RequestType.ACL_GET, RequestType.CHECKSUM):
            req.path = args[0]
        elif rtype is RequestType.PUT:
            req.path = args[0]
            req.length = int(args[1])
        elif rtype in (RequestType.READ, RequestType.WRITE):
            req.path = args[0]
            req.offset = int(args[1])
            req.length = int(args[2])
        elif rtype is RequestType.RENAME:
            req.path = args[0]
            req.params["new_path"] = args[1]
        elif rtype is RequestType.LOT_CREATE:
            req.params["capacity"] = int(args[0])
            req.params["duration"] = float(args[1])
            if len(args) > 2:
                req.params["owner"] = args[2]
        elif rtype in (RequestType.LOT_DELETE, RequestType.LOT_STAT):
            req.params["lot_id"] = args[0]
        elif rtype is RequestType.LOT_RENEW:
            req.params["lot_id"] = args[0]
            req.params["duration"] = float(args[1])
        elif rtype is RequestType.LOT_ATTACH:
            req.params["lot_id"] = args[0]
            req.path = args[1]
        elif rtype is RequestType.ACL_SET:
            req.path = args[0]
            req.params["subject"] = args[1]
            req.params["rights"] = args[2]
        elif rtype is RequestType.THIRDPUT:
            req.path = args[0]
            req.params["host"] = args[1]
            req.params["port"] = int(args[2])
            req.params["remote_path"] = args[3]
        elif rtype is RequestType.AUTH:
            req.params["mechanism"] = args[0] if args else "gsi"
    except (IndexError, ValueError) as exc:
        raise ProtocolError(f"malformed chirp request {line!r}") from exc
    return req


def encode_response(resp: Response, extra_args: list[str] | None = None) -> str:
    """Render a :class:`Response` as one Chirp status line."""
    if resp.ok:
        args = [str(a) for a in (extra_args or [])]
        return "ok" if not args else f"ok {encode_args(args)}"
    code = _STATUS_CODES[resp.status]
    if resp.message:
        return f"err {code} {encode_args([resp.message])}"
    return f"err {code}"


def decode_response(line: str) -> tuple[Response, list[str]]:
    """Parse a Chirp status line; returns (response, positional args)."""
    parts = line.split(" ", 1)
    head = parts[0].lower()
    rest = decode_args(parts[1]) if len(parts) > 1 else []
    if head == "ok":
        return Response(Status.OK), rest
    if head == "err":
        if not rest:
            raise ProtocolError(f"malformed chirp error {line!r}")
        status = _CODE_TO_STATUS.get(rest[0], Status.SERVER_ERROR)
        message = rest[1] if len(rest) > 1 else ""
        return Response(status, message=message), rest[1:]
    raise ProtocolError(f"malformed chirp response {line!r}")


def encode_stat(stat: dict[str, Any]) -> list[str]:
    """Flatten a stat dict into response args (size, type, owner)."""
    return [str(stat.get("size", 0)), str(stat.get("type", "file")),
            str(stat.get("owner", ""))]


def decode_stat(args: list[str]) -> dict[str, Any]:
    """Inverse of :func:`encode_stat`."""
    if len(args) < 3:
        raise ProtocolError("malformed stat reply")
    return {"size": int(args[0]), "type": args[1], "owner": args[2]}
