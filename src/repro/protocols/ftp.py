"""FTP subset (RFC 765/959 lineage).

Control connection: text commands with three-digit numeric replies.
Data connections: passive mode (``PASV``) only, stream mode, binary
type.  Supported commands: USER, PASS, TYPE, PASV, RETR, STOR, LIST,
MKD, RMD, DELE, SIZE, CWD, PWD, NOOP, QUIT.

FTP permits anonymous access only (paper, section 3); GridFTP layers
GSI authentication and extended transfer modes on this dialect (see
:mod:`repro.protocols.gridftp`).
"""

from __future__ import annotations

from repro.protocols.common import ProtocolError, Response, Status

#: Default control-connection ports in this reproduction.
DEFAULT_PORT = 9021
GRIDFTP_DEFAULT_PORT = 9022

# Reply codes used by the servers.
READY = 220
GOODBYE = 221
TRANSFER_OK = 226
PASSIVE = 227
LOGGED_IN = 230
ACTION_OK = 250
PATH_CREATED = 257
NEED_PASSWORD = 331
OPENING_DATA = 150
AUTH_OK = 234
AUTH_CONTINUE = 335
SYNTAX_ERROR = 500
NOT_IMPLEMENTED = 502
BAD_SEQUENCE = 503
NOT_LOGGED_IN = 530
ACTION_FAILED = 550
NO_SPACE = 552

#: Mapping from common Status to the FTP failure reply to send.
STATUS_TO_REPLY = {
    Status.OK: ACTION_OK,
    Status.NOT_FOUND: ACTION_FAILED,
    Status.DENIED: ACTION_FAILED,
    Status.NOT_AUTHENTICATED: NOT_LOGGED_IN,
    Status.EXISTS: ACTION_FAILED,
    Status.NO_SPACE: NO_SPACE,
    Status.NOT_DIR: ACTION_FAILED,
    Status.IS_DIR: ACTION_FAILED,
    Status.NOT_EMPTY: ACTION_FAILED,
    Status.BAD_REQUEST: SYNTAX_ERROR,
    Status.SERVER_ERROR: ACTION_FAILED,
}


def parse_command(line: str) -> tuple[str, str]:
    """Split a control line into (VERB, argument)."""
    if not line:
        raise ProtocolError("empty FTP command")
    parts = line.split(" ", 1)
    return parts[0].upper(), parts[1] if len(parts) > 1 else ""


def format_reply(code: int, text: str) -> str:
    """Render a single-line reply."""
    return f"{code} {text}"


def parse_reply(line: str) -> tuple[int, str]:
    """Parse a single-line reply into (code, text)."""
    if len(line) < 3 or not line[:3].isdigit():
        raise ProtocolError(f"malformed FTP reply {line!r}")
    code = int(line[:3])
    text = line[4:] if len(line) > 4 else ""
    return code, text


def format_pasv_reply(host: str, port: int) -> str:
    """Render the 227 reply advertising the passive data endpoint."""
    h = host.split(".")
    if len(h) != 4:
        h = ["127", "0", "0", "1"]
    p1, p2 = port // 256, port % 256
    return format_reply(
        PASSIVE, f"Entering Passive Mode ({h[0]},{h[1]},{h[2]},{h[3]},{p1},{p2})"
    )


def parse_pasv_reply(text: str) -> tuple[str, int]:
    """Extract (host, port) from a 227 reply's text."""
    start = text.find("(")
    end = text.find(")", start)
    if start < 0 or end < 0:
        raise ProtocolError(f"malformed PASV reply {text!r}")
    fields = text[start + 1 : end].split(",")
    if len(fields) != 6:
        raise ProtocolError(f"malformed PASV reply {text!r}")
    try:
        nums = [int(f.strip()) for f in fields]
    except ValueError:
        raise ProtocolError(f"malformed PASV reply {text!r}") from None
    host = ".".join(str(n) for n in nums[:4])
    port = nums[4] * 256 + nums[5]
    return host, port


def failure_reply(resp: Response) -> str:
    """Render a failed common Response as an FTP reply line."""
    code = STATUS_TO_REPLY.get(resp.status, ACTION_FAILED)
    return format_reply(code, resp.message or resp.status.value)
