"""Minimal XDR (RFC 1014-style) marshalling for the NFS subset."""

from __future__ import annotations

import struct

from repro.protocols.common import ProtocolError


class Packer:
    """Serializes values into XDR's 4-byte-aligned big-endian format."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def pack_uint(self, value: int) -> None:
        """Pack an unsigned 32-bit integer."""
        self._parts.append(struct.pack(">I", value & 0xFFFFFFFF))

    def pack_int(self, value: int) -> None:
        """Pack a signed 32-bit integer."""
        self._parts.append(struct.pack(">i", value))

    def pack_hyper(self, value: int) -> None:
        """Pack an unsigned 64-bit integer."""
        self._parts.append(struct.pack(">Q", value & 0xFFFFFFFFFFFFFFFF))

    def pack_bool(self, value: bool) -> None:
        """Pack a boolean as a 32-bit 0/1."""
        self.pack_uint(1 if value else 0)

    def pack_opaque(self, data: bytes) -> None:
        """Pack variable-length opaque data (length-prefixed, padded)."""
        self.pack_uint(len(data))
        self.pack_fixed(data)

    def pack_fixed(self, data: bytes) -> None:
        """Pack fixed-length opaque data padded to a 4-byte boundary."""
        self._parts.append(data)
        pad = (-len(data)) % 4
        if pad:
            self._parts.append(b"\x00" * pad)

    def pack_string(self, text: str) -> None:
        """Pack a UTF-8 string as variable-length opaque."""
        self.pack_opaque(text.encode("utf-8"))

    def get_buffer(self) -> bytes:
        """The serialized bytes so far."""
        return b"".join(self._parts)


class Unpacker:
    """Deserializes XDR data produced by :class:`Packer`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ProtocolError("XDR underflow")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def unpack_uint(self) -> int:
        """Unpack an unsigned 32-bit integer."""
        return struct.unpack(">I", self._take(4))[0]

    def unpack_int(self) -> int:
        """Unpack a signed 32-bit integer."""
        return struct.unpack(">i", self._take(4))[0]

    def unpack_hyper(self) -> int:
        """Unpack an unsigned 64-bit integer."""
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        """Unpack a boolean."""
        return self.unpack_uint() != 0

    def unpack_opaque(self) -> bytes:
        """Unpack variable-length opaque data."""
        length = self.unpack_uint()
        return self.unpack_fixed(length)

    def unpack_fixed(self, length: int) -> bytes:
        """Unpack fixed-length opaque data (consuming padding)."""
        data = self._take(length)
        pad = (-length) % 4
        if pad:
            self._take(pad)
        return data

    def unpack_string(self) -> str:
        """Unpack a UTF-8 string."""
        return self.unpack_opaque().decode("utf-8")

    @property
    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._pos

    def done(self) -> None:
        """Assert all input was consumed."""
        if self.remaining:
            raise ProtocolError(f"{self.remaining} trailing XDR bytes")
