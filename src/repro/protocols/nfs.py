"""Restricted NFS subset (RFC 1094 lineage) over TCP.

NeST implements "a restricted subset of NFS" so unmodified applications
can use Grid storage through the kernel client (paper, sections 1 and
3).  This module provides the wire pieces both our server handler and
client share:

* ONC-RPC-style **record marking** over TCP (4-byte fragment headers),
* a simplified RPC call/reply envelope (xid, program, procedure),
* XDR marshalling of the NFS and MOUNT procedures we support.

NFS is the one *block-based* protocol in the mix: clients issue
:data:`BLOCK_SIZE`-granular READ/WRITE calls rather than whole-file
gets, which is why the stride scheduler must account bytes, not
requests (paper, section 4.2).  MOUNT is technically its own protocol;
as in NeST, "mount is handled by the NFS handler" (paper, footnote 1).
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.protocols.common import ProtocolError, read_exact
from repro.protocols.xdr import Packer, Unpacker

#: Default TCP port (2049 is privileged; we sit above 1024).
DEFAULT_PORT = 9049

#: NFS transfer block size -- the paper's scheduling discussion assumes
#: block-granular NFS requests.
BLOCK_SIZE = 8192

#: Opaque file-handle size (NFSv2 uses 32 bytes).
FHSIZE = 32

# Program numbers.
PROG_NFS = 100003
PROG_MOUNT = 100005

# Procedures (NFSv2 numbering).
PROC_NULL = 0
PROC_GETATTR = 1
PROC_LOOKUP = 4
PROC_READ = 6
PROC_WRITE = 8
PROC_CREATE = 9
PROC_REMOVE = 10
PROC_RENAME = 11
PROC_MKDIR = 14
PROC_RMDIR = 15
PROC_READDIR = 16
MOUNTPROC_MNT = 1
MOUNTPROC_UMNT = 3

# nfsstat codes.
NFS_OK = 0
NFSERR_PERM = 1
NFSERR_NOENT = 2
NFSERR_IO = 5
NFSERR_ACCES = 13
NFSERR_EXIST = 17
NFSERR_NOTDIR = 20
NFSERR_ISDIR = 21
NFSERR_NOSPC = 28
NFSERR_NOTEMPTY = 66
NFSERR_STALE = 70

# ftype codes.
NFNON = 0
NFREG = 1
NFDIR = 2

_CALL = 0
_REPLY = 1


# ---------------------------------------------------------------------------
# record marking
# ---------------------------------------------------------------------------


def write_record(stream: BinaryIO, payload: bytes) -> None:
    """Write one RPC record as a single last-fragment."""
    stream.write(struct.pack(">I", 0x80000000 | len(payload)))
    stream.write(payload)
    stream.flush()


def read_record(stream: BinaryIO) -> bytes:
    """Read one RPC record (possibly multiple fragments)."""
    fragments: list[bytes] = []
    while True:
        header = read_exact(stream, 4)
        word = struct.unpack(">I", header)[0]
        length = word & 0x7FFFFFFF
        fragments.append(read_exact(stream, length))
        if word & 0x80000000:
            return b"".join(fragments)


# ---------------------------------------------------------------------------
# RPC envelope
# ---------------------------------------------------------------------------


def pack_call(xid: int, prog: int, proc: int, args: bytes) -> bytes:
    """Build an RPC call record body."""
    p = Packer()
    p.pack_uint(xid)
    p.pack_uint(_CALL)
    p.pack_uint(2)  # RPC version
    p.pack_uint(prog)
    p.pack_uint(2)  # program version
    p.pack_uint(proc)
    p.pack_uint(0)  # cred flavor AUTH_NULL
    p.pack_uint(0)  # cred length
    p.pack_uint(0)  # verf flavor
    p.pack_uint(0)  # verf length
    return p.get_buffer() + args


def unpack_call(record: bytes) -> tuple[int, int, int, Unpacker]:
    """Parse a call record; returns (xid, prog, proc, args unpacker)."""
    u = Unpacker(record)
    xid = u.unpack_uint()
    if u.unpack_uint() != _CALL:
        raise ProtocolError("expected RPC call")
    if u.unpack_uint() != 2:
        raise ProtocolError("unsupported RPC version")
    prog = u.unpack_uint()
    u.unpack_uint()  # program version
    proc = u.unpack_uint()
    u.unpack_uint()
    cred_len = u.unpack_uint()
    u.unpack_fixed(cred_len)
    u.unpack_uint()
    verf_len = u.unpack_uint()
    u.unpack_fixed(verf_len)
    return xid, prog, proc, u


def pack_reply(xid: int, results: bytes) -> bytes:
    """Build an accepted-success RPC reply record body."""
    p = Packer()
    p.pack_uint(xid)
    p.pack_uint(_REPLY)
    p.pack_uint(0)  # MSG_ACCEPTED
    p.pack_uint(0)  # verf flavor
    p.pack_uint(0)  # verf length
    p.pack_uint(0)  # accept stat SUCCESS
    return p.get_buffer() + results


def unpack_reply(record: bytes) -> tuple[int, Unpacker]:
    """Parse a reply record; returns (xid, results unpacker)."""
    u = Unpacker(record)
    xid = u.unpack_uint()
    if u.unpack_uint() != _REPLY:
        raise ProtocolError("expected RPC reply")
    if u.unpack_uint() != 0:
        raise ProtocolError("RPC message denied")
    u.unpack_uint()
    verf_len = u.unpack_uint()
    u.unpack_fixed(verf_len)
    if u.unpack_uint() != 0:
        raise ProtocolError("RPC call not accepted")
    return xid, u


# ---------------------------------------------------------------------------
# fattr
# ---------------------------------------------------------------------------


def pack_fattr(p: Packer, ftype: int, size: int) -> None:
    """Pack the subset of fattr we model (type, mode, size)."""
    p.pack_uint(ftype)
    p.pack_uint(0o755 if ftype == NFDIR else 0o644)
    p.pack_hyper(size)


def unpack_fattr(u: Unpacker) -> dict[str, int]:
    """Unpack the fattr subset."""
    return {
        "type": u.unpack_uint(),
        "mode": u.unpack_uint(),
        "size": u.unpack_hyper(),
    }


def make_fhandle(token: int) -> bytes:
    """Build a 32-byte opaque file handle from a server-side token."""
    return struct.pack(">Q", token) + b"\x00" * (FHSIZE - 8)


def fhandle_token(handle: bytes) -> int:
    """Recover the server-side token from a file handle."""
    if len(handle) != FHSIZE:
        raise ProtocolError(f"bad file handle length {len(handle)}")
    return struct.unpack(">Q", handle[:8])[0]
