"""HTTP/1.0 subset (RFC 1945 / 2068 lineage).

NeST serves GET, PUT, HEAD, and DELETE with ``Content-Length`` framing
and connection-per-request or keep-alive semantics.  HTTP clients are
*file-based*: one request retrieves a whole file -- the property that
makes byte-based stride accounting necessary (paper, section 4.2).

Only anonymous access is allowed over HTTP (paper, section 3: GSI is
available only for Chirp and GridFTP).

**Trace context.**  Clients may send an ``X-Repro-Trace:
<trace_id>:<span_id>`` header; a server that understands it adopts the
caller's span as the request parent, and any other server ignores the
unknown header -- both directions stay wire-compatible.
"""

from __future__ import annotations

from typing import BinaryIO

from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Response,
    Status,
    read_line,
)

#: Default TCP port for HTTP in this reproduction.
DEFAULT_PORT = 9080

#: Header carrying the distributed trace context.
TRACE_HEADER = "X-Repro-Trace"

_STATUS_LINE = {
    Status.OK: (200, "OK"),
    Status.NOT_FOUND: (404, "Not Found"),
    Status.DENIED: (403, "Forbidden"),
    Status.NOT_AUTHENTICATED: (401, "Unauthorized"),
    Status.EXISTS: (409, "Conflict"),
    Status.NO_SPACE: (507, "Insufficient Storage"),
    Status.BAD_REQUEST: (400, "Bad Request"),
    Status.NOT_DIR: (400, "Bad Request"),
    Status.IS_DIR: (400, "Bad Request"),
    Status.NOT_EMPTY: (409, "Conflict"),
    Status.SERVER_ERROR: (500, "Internal Server Error"),
}

_CODE_TO_STATUS = {
    200: Status.OK,
    201: Status.OK,
    204: Status.OK,
    400: Status.BAD_REQUEST,
    401: Status.NOT_AUTHENTICATED,
    403: Status.DENIED,
    404: Status.NOT_FOUND,
    409: Status.EXISTS,
    500: Status.SERVER_ERROR,
    507: Status.NO_SPACE,
}


def read_request(stream: BinaryIO) -> Request | None:
    """Parse one HTTP request head; returns None on clean EOF.

    The body (for PUT) is *not* consumed: its length is recorded in
    ``request.length`` and the transfer manager streams it.
    """
    raw = stream.readline(65538)
    if not raw:
        return None
    line = raw.rstrip(b"\r\n").decode("latin-1")
    parts = line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line {line!r}")
    method, target, _version = parts
    headers = read_headers(stream)
    method = method.upper()
    if method in ("GET", "HEAD"):
        rtype = RequestType.GET if method == "GET" else RequestType.STAT
        req = Request(rtype=rtype, path=target, protocol="http")
    elif method == "PUT":
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            raise ProtocolError("PUT without valid Content-Length") from None
        req = Request(rtype=RequestType.PUT, path=target, length=length,
                      protocol="http")
    elif method == "DELETE":
        req = Request(rtype=RequestType.DELETE, path=target, protocol="http")
    else:
        raise ProtocolError(f"unsupported method {method!r}")
    req.params["headers"] = headers
    req.params["keep_alive"] = headers.get("connection", "").lower() == "keep-alive"
    return req


def read_headers(stream: BinaryIO) -> dict[str, str]:
    """Read header lines until the blank separator; keys lower-cased."""
    headers: dict[str, str] = {}
    while True:
        line = read_line(stream)
        if not line:
            return headers
        if ":" not in line:
            raise ProtocolError(f"malformed header {line!r}")
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()


def write_request(stream: BinaryIO, req: Request) -> None:
    """Serialize a request head (client side)."""
    if req.rtype is RequestType.GET:
        method = "GET"
    elif req.rtype is RequestType.STAT:
        method = "HEAD"
    elif req.rtype is RequestType.PUT:
        method = "PUT"
    elif req.rtype is RequestType.DELETE:
        method = "DELETE"
    else:
        raise ProtocolError(f"http cannot carry request type {req.rtype}")
    lines = [f"{method} {req.path} HTTP/1.0", "Connection: keep-alive"]
    if req.rtype is RequestType.PUT:
        lines.append(f"Content-Length: {req.length}")
    trace = req.params.get("trace")
    if trace:
        lines.append(f"{TRACE_HEADER}: {trace}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    stream.write(head.encode("latin-1"))
    stream.flush()


def write_response_head(
    stream: BinaryIO, resp: Response, content_length: int = 0,
    keep_alive: bool = True,
) -> None:
    """Serialize a response status line + headers (server side)."""
    code, reason = _STATUS_LINE.get(resp.status, (500, "Internal Server Error"))
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.0 {code} {reason}\r\n"
        f"Server: NeST/0.9\r\n"
        f"Content-Length: {content_length}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    stream.write(head.encode("latin-1"))
    stream.flush()


def read_response_head(stream: BinaryIO) -> tuple[Response, dict[str, str]]:
    """Parse a response status line + headers (client side)."""
    line = read_line(stream)
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(f"malformed status line {line!r}")
    try:
        code = int(parts[1])
    except ValueError:
        raise ProtocolError(f"malformed status code in {line!r}") from None
    headers = read_headers(stream)
    status = _CODE_TO_STATUS.get(code, Status.SERVER_ERROR)
    return Response(status, message=parts[2] if len(parts) > 2 else ""), headers
