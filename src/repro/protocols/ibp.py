"""IBP: the Internet Backplane Protocol (Plank et al.), simplified.

The paper names IBP as the next protocol NeST should speak ("we plan to
include other Grid-relevant protocols in NeST, including data movement
protocols such as IBP") and §8 compares the two storage models: IBP
serves *allocations of byte arrays* named by **capabilities** --
unguessable strings granting read, write, or manage access -- with
*stable* and *volatile* allocation types.

This module defines the wire dialect (text control lines, raw data
payloads) shared by the NeST handler and the client:

==========================================  =================================
``allocate <size> <duration> <type>``        -> ``ok <rcap> <wcap> <mcap>``
``store <wcap> <nbytes>`` + data             -> ``ok <new-used>``
``load <rcap> <offset> <nbytes>``            -> ``ok <n>`` + data
``probe <mcap>``                             -> ``ok <size> <used> <expires> <type>``
``extend <mcap> <duration>``                 -> ``ok <expires>``
``decrement <mcap>``                         -> ``ok <refcount>``
``increment <mcap>``                         -> ``ok <refcount>``
``status``                                   -> ``ok <total> <used> <volatile>``
==========================================  =================================

Errors come back as ``err <code> <message>``.  Capabilities look like
``ibp://<host>/<alloc-id>#<secret>/<kind>``; only the secret grants
access -- possession is authorization, exactly IBP's model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.protocols.common import ProtocolError

#: Default TCP port for IBP in this reproduction.
DEFAULT_PORT = 9063

STABLE = "stable"
VOLATILE = "volatile"
ALLOCATION_TYPES = (STABLE, VOLATILE)

#: Capability kinds.
READ = "read"
WRITE = "write"
MANAGE = "manage"

_CAP_RE = re.compile(
    r"^ibp://(?P<host>[^/]*)/(?P<alloc>[A-Za-z0-9_-]+)"
    r"#(?P<secret>[0-9a-f]+)/(?P<kind>read|write|manage)$"
)


@dataclass(frozen=True)
class Capability:
    """One parsed IBP capability."""

    host: str
    alloc_id: str
    secret: str
    kind: str

    def render(self) -> str:
        return f"ibp://{self.host}/{self.alloc_id}#{self.secret}/{self.kind}"


def make_capability(host: str, alloc_id: str, secret: str, kind: str) -> str:
    """Render a capability string."""
    if kind not in (READ, WRITE, MANAGE):
        raise ProtocolError(f"unknown capability kind {kind!r}")
    return Capability(host, alloc_id, secret, kind).render()


def parse_capability(text: str) -> Capability:
    """Parse and validate a capability string."""
    match = _CAP_RE.match(text.strip())
    if match is None:
        raise ProtocolError(f"malformed capability {text!r}")
    return Capability(
        host=match.group("host"),
        alloc_id=match.group("alloc"),
        secret=match.group("secret"),
        kind=match.group("kind"),
    )


def parse_command(line: str) -> tuple[str, list[str]]:
    """Split a control line into (verb, args)."""
    parts = line.split()
    if not parts:
        raise ProtocolError("empty IBP command")
    return parts[0].lower(), parts[1:]


def format_ok(*args: object) -> str:
    """Render a success reply."""
    return "ok" if not args else "ok " + " ".join(str(a) for a in args)


def format_err(code: str, message: str = "") -> str:
    """Render a failure reply."""
    return f"err {code} {message}".rstrip()


def parse_reply(line: str) -> list[str]:
    """Parse a reply; returns args on success, raises on ``err``."""
    parts = line.split()
    if not parts:
        raise ProtocolError("empty IBP reply")
    if parts[0] == "ok":
        return parts[1:]
    if parts[0] == "err":
        code = parts[1] if len(parts) > 1 else "unknown"
        message = " ".join(parts[2:])
        raise IbpError(code, message)
    raise ProtocolError(f"malformed IBP reply {line!r}")


class IbpError(Exception):
    """A depot-side failure, carrying the wire error code."""

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
