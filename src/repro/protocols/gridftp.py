"""GridFTP: FTP extended for the Grid (Allcock et al. draft, 2001).

On top of the FTP dialect in :mod:`repro.protocols.ftp`, GridFTP adds:

* **GSI authentication** via ``AUTH GSSAPI`` + ``ADAT`` exchanges --
  here carried over the toy PKI of :mod:`repro.nest.auth` (see
  DESIGN.md for the substitution);
* **extended block mode** (``MODE E``): data flows as framed blocks
  carrying (flags, length, offset) headers so multiple parallel data
  streams can interleave and a receiver can reassemble out-of-order
  blocks;
* **parallelism** (``OPTS RETR Parallelism=N;``) with multiple passive
  data connections (``SPAS``/one PASV per stream in this subset);
* **third-party transfers**: a client holds two control connections
  and pairs one server's passive endpoint with the other's ``PORT``.

The extended-block framing implemented here is a faithful subset of the
draft's EBLOCK: a 17-byte header of one flag byte, a 64-bit length, and
a 64-bit offset, with the EOF flag on a zero-length trailer block.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator

from repro.protocols.common import ProtocolError, read_exact

#: EBLOCK header: flags byte, 64-bit big-endian length and offset.
_HEADER = struct.Struct(">BQQ")
HEADER_SIZE = _HEADER.size

#: Flag bits (from the GridFTP draft's extended-block mode).
FLAG_EOF = 0x40
FLAG_EOD = 0x08


def write_block(stream: BinaryIO, offset: int, payload: bytes, flags: int = 0) -> None:
    """Write one extended block."""
    stream.write(_HEADER.pack(flags, len(payload), offset))
    if payload:
        stream.write(payload)
    stream.flush()


def write_eod(stream: BinaryIO, eof: bool = False) -> None:
    """Write the end-of-data trailer block (optionally also end-of-file)."""
    flags = FLAG_EOD | (FLAG_EOF if eof else 0)
    stream.write(_HEADER.pack(flags, 0, 0))
    stream.flush()


def read_block(stream: BinaryIO) -> tuple[int, int, bytes]:
    """Read one extended block; returns (flags, offset, payload)."""
    header = read_exact(stream, HEADER_SIZE)
    flags, length, offset = _HEADER.unpack(header)
    payload = read_exact(stream, length) if length else b""
    return flags, offset, payload


def iter_blocks(stream: BinaryIO) -> Iterator[tuple[int, bytes]]:
    """Yield (offset, payload) blocks until the EOD trailer."""
    while True:
        flags, offset, payload = read_block(stream)
        if payload:
            yield offset, payload
        if flags & FLAG_EOD:
            return


def stripe_ranges(total: int, streams: int, block: int) -> list[list[tuple[int, int]]]:
    """Partition ``[0, total)`` into per-stream round-robin block ranges.

    Stream ``i`` carries blocks ``i, i+streams, i+2*streams, ...`` of
    size ``block`` -- the round-robin striping parallel GridFTP senders
    use.  Returns, per stream, a list of (offset, length) extents.
    """
    if streams < 1 or block < 1:
        raise ProtocolError("invalid striping parameters")
    out: list[list[tuple[int, int]]] = [[] for _ in range(streams)]
    index = 0
    offset = 0
    while offset < total:
        length = min(block, total - offset)
        out[index % streams].append((offset, length))
        offset += length
        index += 1
    return out


def parse_opts_retr(arg: str) -> dict[str, int]:
    """Parse ``OPTS RETR Parallelism=4;StartingParallelism=4;...``."""
    if not arg.upper().startswith("RETR "):
        raise ProtocolError(f"unsupported OPTS {arg!r}")
    opts: dict[str, int] = {}
    for piece in arg[5:].strip().rstrip(";").split(";"):
        if not piece:
            continue
        if "=" not in piece:
            raise ProtocolError(f"malformed OPTS piece {piece!r}")
        key, _, value = piece.partition("=")
        try:
            opts[key.strip().lower()] = int(value)
        except ValueError:
            raise ProtocolError(f"malformed OPTS value {piece!r}") from None
    return opts


def format_opts_retr(parallelism: int) -> str:
    """Render the Parallelism OPTS command argument."""
    return f"RETR Parallelism={parallelism};"
