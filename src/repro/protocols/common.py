"""The common request interface behind the virtual protocol layer.

Every protocol handler parses its wire format into a :class:`Request`
and renders a :class:`Response` back; the dispatcher, storage manager,
and transfer manager see only these objects.  This is the "virtual
protocol connection" of the paper's section 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, BinaryIO


#: Protocols NeST release 0.9 speaks, in the paper's order.
PROTOCOL_NAMES = ("chirp", "ftp", "gridftp", "http", "nfs")


class ProtocolError(Exception):
    """Malformed or unexpected traffic on a protocol connection."""


class RequestType(enum.Enum):
    """Operations in the common request interface.

    The paper observes most request types are shared across protocols
    (directory create/remove/read; file read/write/get/put/remove/
    query) with a few protocol-specific outliers: ``LOOKUP``/``MOUNT``
    exist only for NFS, and lot management only for Chirp.
    """

    # file data transfer (routed to the transfer manager)
    GET = "get"  #: whole-file retrieve
    PUT = "put"  #: whole-file store
    READ = "read"  #: block read at (offset, length) -- NFS
    WRITE = "write"  #: block write at (offset, length) -- NFS

    # file / directory metadata (executed synchronously by storage mgr)
    MKDIR = "mkdir"
    RMDIR = "rmdir"
    LIST = "list"
    STAT = "stat"
    DELETE = "delete"
    CREATE = "create"
    RENAME = "rename"

    # NFS-specific namespace operations
    LOOKUP = "lookup"
    MOUNT = "mount"

    # lot management (Chirp only)
    LOT_CREATE = "lot_create"
    LOT_DELETE = "lot_delete"
    LOT_RENEW = "lot_renew"
    LOT_STAT = "lot_stat"
    LOT_LIST = "lot_list"
    LOT_ATTACH = "lot_attach"  #: bind a path prefix to a lot

    # access control (Chirp, or any protocol with ACL semantics)
    ACL_SET = "acl_set"
    ACL_GET = "acl_get"

    # third-party data movement (Chirp: push a file to another server)
    THIRDPUT = "thirdput"

    # end-to-end integrity (Chirp: CRC32 over a file's contents)
    CHECKSUM = "checksum"

    # resource discovery / server status
    QUERY = "query"

    # session
    AUTH = "auth"
    QUIT = "quit"


#: Request types the dispatcher routes to the transfer manager; all
#: others go to the storage manager (paper, section 2.1).
TRANSFER_TYPES = frozenset(
    {RequestType.GET, RequestType.PUT, RequestType.READ, RequestType.WRITE}
)


class Status(enum.Enum):
    """Common response status codes (mapped per protocol on the wire)."""

    OK = "ok"
    NOT_FOUND = "not_found"
    EXISTS = "exists"
    DENIED = "denied"
    NOT_AUTHENTICATED = "not_authenticated"
    NO_SPACE = "no_space"
    NOT_DIR = "not_dir"
    IS_DIR = "is_dir"
    NOT_EMPTY = "not_empty"
    BAD_REQUEST = "bad_request"
    SERVER_ERROR = "server_error"
    #: A handle/token from before a server restart: the referent may
    #: still exist, but the handle must be re-resolved by path.
    STALE = "stale"


@dataclass
class Request:
    """A protocol-independent client request.

    ``user`` is filled by the protocol handler's authentication step;
    ``protocol`` records which handler produced the request so the
    transfer manager can apply per-protocol scheduling shares.
    """

    rtype: RequestType
    path: str = ""
    offset: int = 0
    length: int = -1  #: -1 means "whole file" / "not applicable"
    user: str = "anonymous"
    protocol: str = "chirp"
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def is_transfer(self) -> bool:
        """True when the dispatcher must route this to the transfer manager."""
        return self.rtype in TRANSFER_TYPES


@dataclass
class Response:
    """A protocol-independent response.

    ``data`` carries small payloads (listings, stat results); bulk file
    data always moves through the transfer manager's data path, never
    through a Response.
    """

    status: Status
    data: Any = None
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status is Status.OK


# ---------------------------------------------------------------------------
# stream helpers shared by the codecs
# ---------------------------------------------------------------------------


def read_exact_into(stream: BinaryIO, view: memoryview) -> None:
    """Fill ``view`` completely from ``stream`` via ``readinto`` (no
    intermediate allocations) or raise :exc:`ProtocolError` on EOF.

    The caller owns the buffer -- pair with a pooled ``bytearray``
    (:class:`repro.nest.io.BufferPool`) for an allocation-free receive
    loop.  Requires a source whose *class* implements ``readinto``.
    """
    filled = 0
    n = len(view)
    while filled < n:
        got = stream.readinto(view[filled:])
        if not got:
            raise ProtocolError(
                f"connection closed with {n - filled} bytes pending")
        filled += got


def read_exact(stream: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :exc:`ProtocolError` on EOF."""
    # Fast path: one buffer filled in place, one bytes object out.
    # The check is class-level on purpose -- fault-injection wrappers
    # forward unknown attributes to the raw stream, and reading around
    # them would skip injected faults (see repro.nest.io).
    if getattr(type(stream), "readinto", None) is not None:
        buf = bytearray(n)
        read_exact_into(stream, memoryview(buf))
        return bytes(buf)
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            raise ProtocolError(f"connection closed with {remaining} bytes pending")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_line(stream: BinaryIO, limit: int = 65536) -> str:
    """Read one CRLF- or LF-terminated line, decoded as UTF-8.

    Returns the line without its terminator; raises
    :exc:`ProtocolError` at EOF or if the line exceeds ``limit``.
    """
    raw = stream.readline(limit + 2)
    if not raw:
        raise ProtocolError("connection closed while reading line")
    if len(raw) > limit and not raw.endswith(b"\n"):
        raise ProtocolError("line too long")
    return raw.rstrip(b"\r\n").decode("utf-8", errors="replace")


def write_line(stream: BinaryIO, line: str) -> None:
    """Write ``line`` with CRLF termination and flush."""
    stream.write(line.encode("utf-8") + b"\r\n")
    stream.flush()
