"""HTTP client (GET/PUT/HEAD/DELETE with keep-alive).

Stateless protocol, so retries are simple: any transient wire failure
reconnects and replays the request under the retry policy.  Non-2xx
responses raise :class:`HttpError`, a fatal (non-retried) error.
"""

from __future__ import annotations

from typing import Any

from repro.client.base import SessionClient
from repro.client.errors import FatalError
from repro.protocols import http
from repro.protocols.common import (
    Request,
    RequestType,
    Status,
    read_exact,
)


class HttpError(FatalError):
    """Non-2xx response."""

    def __init__(self, status: Status, message: str = ""):
        super().__init__(f"{status.value}: {message}" if message else status.value)
        self.status = status


class HttpClient(SessionClient):
    """A keep-alive HTTP session against one server."""

    protocol = "http"

    def _check(self, resp) -> None:
        if not resp.ok:
            raise HttpError(resp.status, resp.message)

    def _send(self, request: Request) -> None:
        """Inject the trace context and write one request head."""
        self._inject_trace(request)
        http.write_request(self.wfile, request)

    def get(self, path: str) -> bytes:
        """GET a whole file."""

        def do() -> bytes:
            self._send(Request(rtype=RequestType.GET, path=path))
            resp, headers = http.read_response_head(self.rfile)
            self._check(resp)
            return read_exact(self.rfile,
                              int(headers.get("content-length", "0")))

        return self._op(f"get {path}", do)

    def put(self, path: str, data: bytes) -> None:
        """PUT a whole file (idempotent: a replay overwrites)."""

        def do() -> None:
            self._send(Request(rtype=RequestType.PUT, path=path,
                               length=len(data)))
            self.wfile.write(data)
            self.wfile.flush()
            resp, headers = http.read_response_head(self.rfile)
            self._check(resp)
            read_exact(self.rfile, int(headers.get("content-length", "0")))

        self._op(f"put {path}", do)

    def head(self, path: str) -> dict[str, Any]:
        """HEAD: size without the body."""

        def do() -> dict[str, Any]:
            self._send(Request(rtype=RequestType.STAT, path=path))
            resp, headers = http.read_response_head(self.rfile)
            self._check(resp)
            return {"size": int(headers.get("content-length", "0"))}

        return self._op(f"head {path}", do)

    def delete(self, path: str) -> None:
        """DELETE a file."""

        def do() -> None:
            self._send(Request(rtype=RequestType.DELETE, path=path))
            resp, headers = http.read_response_head(self.rfile)
            self._check(resp)
            read_exact(self.rfile, int(headers.get("content-length", "0")))

        self._op(f"delete {path}", do)
