"""HTTP client (GET/PUT/HEAD/DELETE with keep-alive)."""

from __future__ import annotations

import socket
from typing import Any

from repro.protocols import http
from repro.protocols.common import (
    Request,
    RequestType,
    Status,
    read_exact,
)


class HttpError(Exception):
    """Non-2xx response."""

    def __init__(self, status: Status, message: str = ""):
        super().__init__(f"{status.value}: {message}" if message else status.value)
        self.status = status


class HttpClient:
    """A keep-alive HTTP session against one server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def close(self) -> None:
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        self.sock.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check(self, resp) -> None:
        if not resp.ok:
            raise HttpError(resp.status, resp.message)

    def get(self, path: str) -> bytes:
        """GET a whole file."""
        http.write_request(self.wfile, Request(rtype=RequestType.GET, path=path))
        resp, headers = http.read_response_head(self.rfile)
        self._check(resp)
        return read_exact(self.rfile, int(headers.get("content-length", "0")))

    def put(self, path: str, data: bytes) -> None:
        """PUT a whole file."""
        http.write_request(self.wfile, Request(rtype=RequestType.PUT, path=path,
                                               length=len(data)))
        self.wfile.write(data)
        self.wfile.flush()
        resp, headers = http.read_response_head(self.rfile)
        self._check(resp)
        read_exact(self.rfile, int(headers.get("content-length", "0")))

    def head(self, path: str) -> dict[str, Any]:
        """HEAD: size without the body."""
        http.write_request(self.wfile, Request(rtype=RequestType.STAT, path=path))
        resp, headers = http.read_response_head(self.rfile)
        self._check(resp)
        return {"size": int(headers.get("content-length", "0"))}

    def delete(self, path: str) -> None:
        """DELETE a file."""
        http.write_request(self.wfile, Request(rtype=RequestType.DELETE,
                                               path=path))
        resp, headers = http.read_response_head(self.rfile)
        self._check(resp)
        read_exact(self.rfile, int(headers.get("content-length", "0")))
