"""Typed client error taxonomy: transient vs fatal.

Before this layer existed the protocol clients leaked whatever the
socket layer threw -- bare ``OSError``, ``ConnectionResetError``,
``ValueError`` -- which made "should I retry?" a string-matching
exercise for callers.  Now every public client operation raises either

* :class:`TransientError` -- the operation *might* succeed if repeated
  (connection reset, timeout, short read, wire corruption).  The retry
  layer (:mod:`repro.client.retry`) consumes these internally and only
  lets one escape as :class:`RetryExhaustedError` once the policy's
  attempts or deadline run out; or
* :class:`FatalError` -- the server answered and said no (not found,
  permission denied, out of space...).  Retrying is pointless and the
  error surfaces immediately.

The per-protocol error classes (``ChirpError``, ``HttpError``...)
subclass :class:`FatalError` so existing ``except ChirpError`` call
sites keep working while new code can catch the taxonomy roots.
:func:`is_transient` is the single classification point.
"""

from __future__ import annotations

import socket

from repro.protocols.common import ProtocolError

__all__ = [
    "ClientError",
    "TransientError",
    "FatalError",
    "RetryExhaustedError",
    "TransferError",
    "is_transient",
]


class ClientError(Exception):
    """Root of the client-side error taxonomy."""


class TransientError(ClientError):
    """Network-level failure; the operation may succeed if retried."""


class FatalError(ClientError):
    """The server processed the request and refused it; do not retry."""


class RetryExhaustedError(TransientError):
    """A retryable operation failed on every attempt (or ran out of
    deadline); ``__cause__`` carries the final underlying error and
    :attr:`attempts` how many were made."""

    def __init__(self, message: str, attempts: int = 0,
                 last: BaseException | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last = last


class TransferError(TransientError):
    """A data transfer failed or was truncated mid-flight (hung
    parallel stream, short stripe, mismatched byte count)."""


#: Exception types that always mean "the wire failed, not the server".
_TRANSIENT_TYPES = (
    ConnectionError,  # reset / refused / aborted / broken pipe
    socket.timeout,  # alias of TimeoutError on 3.10+, kept for clarity
    TimeoutError,
    EOFError,
    ProtocolError,  # truncated or garbled wire data
)


def is_transient(exc: BaseException) -> bool:
    """Classify an exception: True = worth retrying on a fresh
    connection, False = surface to the caller immediately."""
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, FatalError):
        return False
    # FTP distinguishes 4xx (transient) from 5xx (permanent) by
    # protocol definition; honour that before the generic buckets.
    code = getattr(exc, "code", None)
    if isinstance(code, int) and 100 <= code <= 599:
        return 400 <= code < 500
    if isinstance(exc, _TRANSIENT_TYPES):
        return True
    if isinstance(exc, OSError):
        return True  # unreachable host, EPIPE, EBADF after peer close...
    return False
