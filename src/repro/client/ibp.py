"""IBP client: allocate, store, load, manage via capabilities."""

from __future__ import annotations

import socket
from typing import Any

from repro.protocols import ibp
from repro.protocols.common import ProtocolError, read_exact, read_line, write_line
from repro.protocols.ibp import IbpError  # re-exported for callers


class IbpClient:
    """A connection to an IBP depot (a NeST serving the IBP dialect)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def close(self) -> None:
        try:
            write_line(self.wfile, "quit")
            read_line(self.rfile)
        except (ProtocolError, OSError):
            pass
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        self.sock.close()

    def __enter__(self) -> "IbpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _round_trip(self, line: str) -> list[str]:
        write_line(self.wfile, line)
        return ibp.parse_reply(read_line(self.rfile))

    # -- operations ----------------------------------------------------------
    def allocate(self, size: int, duration: float,
                 atype: str = ibp.STABLE) -> dict[str, str]:
        """Allocate a byte array; returns the three capabilities."""
        args = self._round_trip(f"allocate {size} {duration} {atype}")
        return {"read": args[0], "write": args[1], "manage": args[2]}

    def store(self, write_cap: str, data: bytes) -> int:
        """Append ``data``; returns the allocation's new used count."""
        write_line(self.wfile, f"store {write_cap} {len(data)}")
        self.wfile.write(data)
        self.wfile.flush()
        args = ibp.parse_reply(read_line(self.rfile))
        return int(args[0])

    def load(self, read_cap: str, offset: int = 0, nbytes: int = 1 << 30) -> bytes:
        """Read a range of the allocation."""
        args = self._round_trip(f"load {read_cap} {offset} {nbytes}")
        return read_exact(self.rfile, int(args[0]))

    def probe(self, manage_cap: str) -> dict[str, Any]:
        """Allocation status."""
        args = self._round_trip(f"probe {manage_cap}")
        return {
            "size": int(args[0]),
            "used": int(args[1]),
            "expires_at": float(args[2]),
            "type": args[3],
            "refcount": int(args[4]),
        }

    def extend(self, manage_cap: str, duration: float) -> float:
        """Extend a stable allocation; returns the new expiry."""
        args = self._round_trip(f"extend {manage_cap} {duration}")
        return float(args[0])

    def increment(self, manage_cap: str) -> int:
        """Add a reference; returns the refcount."""
        return int(self._round_trip(f"increment {manage_cap}")[0])

    def decrement(self, manage_cap: str) -> int:
        """Drop a reference; at zero the allocation is freed."""
        return int(self._round_trip(f"decrement {manage_cap}")[0])

    def status(self) -> dict[str, int]:
        """Depot-wide capacity numbers."""
        args = self._round_trip("status")
        return {"total": int(args[0]), "used": int(args[1]),
                "volatile": int(args[2])}
