"""IBP client: allocate, store, load, manage via capabilities.

Retry semantics respect IBP's model: ``load``/``probe``/``status`` are
idempotent and retried; ``allocate``, ``store`` (append-only!),
``increment`` and ``decrement`` are **not** -- a replay would double
their effect, so a transient failure mid-operation surfaces as a typed
:class:`~repro.client.errors.TransientError` instead of being retried.
"""

from __future__ import annotations

from typing import Any

from repro.client.base import SessionClient
from repro.protocols import ibp
from repro.protocols.common import read_exact, read_line, write_line
from repro.protocols.ibp import IbpError  # re-exported for callers


class IbpClient(SessionClient):
    """A connection to an IBP depot (a NeST serving the IBP dialect)."""

    protocol = "ibp"

    def _goodbye(self) -> None:
        write_line(self.wfile, "quit")
        read_line(self.rfile)

    def _round_trip(self, line: str) -> list[str]:
        write_line(self.wfile, line)
        return ibp.parse_reply(read_line(self.rfile))

    # -- operations ----------------------------------------------------------
    def allocate(self, size: int, duration: float,
                 atype: str = ibp.STABLE) -> dict[str, str]:
        """Allocate a byte array; returns the three capabilities.

        Not retried: a replayed allocate would leak a second
        allocation the caller never learns about.
        """

        def do() -> dict[str, str]:
            args = self._round_trip(f"allocate {size} {duration} {atype}")
            return {"read": args[0], "write": args[1], "manage": args[2]}

        return self._op("allocate", do, idempotent=False)

    def store(self, write_cap: str, data: bytes) -> int:
        """Append ``data``; returns the allocation's new used count.

        Append-only, hence never replayed automatically.
        """

        def do() -> int:
            write_line(self.wfile, f"store {write_cap} {len(data)}")
            self.wfile.write(data)
            self.wfile.flush()
            args = ibp.parse_reply(read_line(self.rfile))
            return int(args[0])

        return self._op("store", do, idempotent=False)

    def load(self, read_cap: str, offset: int = 0, nbytes: int = 1 << 30) -> bytes:
        """Read a range of the allocation."""

        def do() -> bytes:
            args = self._round_trip(f"load {read_cap} {offset} {nbytes}")
            return read_exact(self.rfile, int(args[0]))

        return self._op("load", do)

    def probe(self, manage_cap: str) -> dict[str, Any]:
        """Allocation status."""

        def do() -> dict[str, Any]:
            args = self._round_trip(f"probe {manage_cap}")
            return {
                "size": int(args[0]),
                "used": int(args[1]),
                "expires_at": float(args[2]),
                "type": args[3],
                "refcount": int(args[4]),
            }

        return self._op("probe", do)

    def extend(self, manage_cap: str, duration: float) -> float:
        """Extend a stable allocation; returns the new expiry."""

        def do() -> float:
            args = self._round_trip(f"extend {manage_cap} {duration}")
            return float(args[0])

        return self._op("extend", do)

    def increment(self, manage_cap: str) -> int:
        """Add a reference; returns the refcount (not replayed)."""
        return self._op(
            "increment",
            lambda: int(self._round_trip(f"increment {manage_cap}")[0]),
            idempotent=False)

    def decrement(self, manage_cap: str) -> int:
        """Drop a reference; at zero the allocation is freed (not
        replayed)."""
        return self._op(
            "decrement",
            lambda: int(self._round_trip(f"decrement {manage_cap}")[0]),
            idempotent=False)

    def status(self) -> dict[str, int]:
        """Depot-wide capacity numbers."""

        def do() -> dict[str, int]:
            args = self._round_trip("status")
            return {"total": int(args[0]), "used": int(args[1]),
                    "volatile": int(args[2])}

        return self._op("status", do)
