"""FTP client: anonymous login, passive-mode transfers."""

from __future__ import annotations

import socket

from repro.protocols import ftp
from repro.protocols.common import ProtocolError, read_line, write_line


class FtpError(Exception):
    """An FTP command drew a failure reply."""

    def __init__(self, code: int, text: str):
        super().__init__(f"{code} {text}")
        self.code = code
        self.text = text


class FtpClient:
    """A logged-in anonymous FTP session."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 login: bool = True):
        self.host = host
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")
        self._expect(ftp.READY)
        if login:
            self.login()

    def close(self) -> None:
        try:
            self.command("QUIT", expect=ftp.GOODBYE)
        except (FtpError, ProtocolError, OSError):
            pass
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        self.sock.close()

    def __enter__(self) -> "FtpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- control channel ----------------------------------------------------
    def _read_reply(self) -> tuple[int, str]:
        line = read_line(self.rfile)
        # Multi-line replies (e.g. SPAS): "NNN-" opens, "NNN " closes.
        if len(line) > 3 and line[3] == "-":
            code = int(line[:3])
            body = [line[4:]]
            while True:
                line = read_line(self.rfile)
                if line.startswith(f"{code} "):
                    body.append(line[4:])
                    return code, "\n".join(body)
                body.append(line)
        return ftp.parse_reply(line)

    def _expect(self, *codes: int) -> tuple[int, str]:
        code, text = self._read_reply()
        if code not in codes:
            raise FtpError(code, text)
        return code, text

    def command(self, line: str, expect: int | tuple[int, ...] | None = None
                ) -> tuple[int, str]:
        """Send one command; optionally assert the reply code."""
        write_line(self.wfile, line)
        if expect is None:
            return self._read_reply()
        codes = (expect,) if isinstance(expect, int) else tuple(expect)
        return self._expect(*codes)

    def login(self) -> None:
        """Anonymous login (the only kind FTP supports on NeST)."""
        self.command("USER anonymous", expect=ftp.NEED_PASSWORD)
        self.command("PASS user@example.org", expect=ftp.LOGGED_IN)
        self.command("TYPE I", expect=200)

    # -- data channel ----------------------------------------------------------
    def _open_passive(self) -> socket.socket:
        _, text = self.command("PASV", expect=ftp.PASSIVE)
        host, port = ftp.parse_pasv_reply(text)
        return socket.create_connection((host, port), timeout=30)

    def retr(self, path: str) -> bytes:
        """Download a file (passive, stream mode)."""
        data_sock = self._open_passive()
        self.command(f"RETR {path}", expect=ftp.OPENING_DATA)
        chunks = []
        with data_sock:
            while True:
                chunk = data_sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        self._expect(ftp.TRANSFER_OK)
        return b"".join(chunks)

    def stor(self, path: str, data: bytes) -> None:
        """Upload a file (passive, stream mode)."""
        data_sock = self._open_passive()
        self.command(f"STOR {path}", expect=ftp.OPENING_DATA)
        with data_sock:
            data_sock.sendall(data)
        self._expect(ftp.TRANSFER_OK)

    def list(self, path: str = "") -> str:
        """Directory listing text."""
        data_sock = self._open_passive()
        self.command(f"LIST {path}".strip(), expect=ftp.OPENING_DATA)
        chunks = []
        with data_sock:
            while True:
                chunk = data_sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        self._expect(ftp.TRANSFER_OK)
        return b"".join(chunks).decode()

    # -- metadata -----------------------------------------------------------
    def mkd(self, path: str) -> None:
        self.command(f"MKD {path}", expect=ftp.PATH_CREATED)

    def rmd(self, path: str) -> None:
        self.command(f"RMD {path}", expect=ftp.ACTION_OK)

    def dele(self, path: str) -> None:
        self.command(f"DELE {path}", expect=ftp.ACTION_OK)

    def size(self, path: str) -> int:
        _, text = self.command(f"SIZE {path}", expect=213)
        return int(text)

    def cwd(self, path: str) -> None:
        self.command(f"CWD {path}", expect=ftp.ACTION_OK)

    def pwd(self) -> str:
        _, text = self.command("PWD", expect=ftp.PATH_CREATED)
        return text.strip().strip('"')
