"""FTP client: anonymous login, passive-mode transfers.

Transfers run under the client's retry policy: a reset or timeout on
either the control or the data connection tears the session down,
reconnects (replaying the login), and retries.  RETR/STOR are
idempotent here (whole-file, overwrite semantics).  Server refusals
surface as :class:`FtpError`; 4xx replies are classified transient per
the FTP definition, 5xx permanent.
"""

from __future__ import annotations

from repro.client.base import SessionClient
from repro.client.errors import ClientError
from repro.protocols import ftp
from repro.protocols.common import read_line, write_line


class FtpError(ClientError):
    """An FTP command drew a failure reply.

    4xx codes mean "transient negative" on the wire and are retried by
    the policy; 5xx are permanent and surface immediately.
    """

    def __init__(self, code: int, text: str):
        super().__init__(f"{code} {text}")
        self.code = code
        self.text = text


class FtpClient(SessionClient):
    """A logged-in anonymous FTP session."""

    protocol = "ftp"

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 login: bool = True, retry=None, faults=None):
        self._auto_login = login
        self._cwd: str | None = None
        super().__init__(host, port, timeout=timeout, retry=retry,
                         faults=faults)

    # -- session -----------------------------------------------------------
    def _setup_session(self) -> None:
        self._expect(ftp.READY)
        if self._auto_login:
            self._do_login()
        if self._cwd:
            # Restore the working directory a reconnect would reset.
            self.command(f"CWD {self._cwd}", expect=ftp.ACTION_OK)

    def _goodbye(self) -> None:
        self.command("QUIT", expect=ftp.GOODBYE)

    def _do_login(self) -> None:
        self.command("USER anonymous", expect=ftp.NEED_PASSWORD)
        self.command("PASS user@example.org", expect=ftp.LOGGED_IN)
        self.command("TYPE I", expect=200)

    def login(self) -> None:
        """Anonymous login (the only kind FTP supports on NeST); also
        arms auto-re-login on any reconnect."""
        if not self._auto_login:
            self._auto_login = True
            self._op("login", self._do_login)

    # -- control channel ----------------------------------------------------
    def _read_reply(self) -> tuple[int, str]:
        line = read_line(self.rfile)
        # Multi-line replies (e.g. SPAS): "NNN-" opens, "NNN " closes.
        if len(line) > 3 and line[3] == "-":
            code = int(line[:3])
            body = [line[4:]]
            while True:
                line = read_line(self.rfile)
                if line.startswith(f"{code} "):
                    body.append(line[4:])
                    return code, "\n".join(body)
                body.append(line)
        return ftp.parse_reply(line)

    def _expect(self, *codes: int) -> tuple[int, str]:
        code, text = self._read_reply()
        if code not in codes:
            raise FtpError(code, text)
        return code, text

    def command(self, line: str, expect: int | tuple[int, ...] | None = None
                ) -> tuple[int, str]:
        """Send one command; optionally assert the reply code."""
        write_line(self.wfile, line)
        if expect is None:
            return self._read_reply()
        codes = (expect,) if isinstance(expect, int) else tuple(expect)
        return self._expect(*codes)

    # -- data channel ----------------------------------------------------------
    def _open_passive(self):
        """PASV + dial the data port, honouring the configured timeout
        and the fault plan (the hardcoded ``timeout=30`` that ignored
        the constructor's setting is gone)."""
        _, text = self.command("PASV", expect=ftp.PASSIVE)
        host, port = ftp.parse_pasv_reply(text)
        return self._dial(host, port)

    def _drain(self, data_sock) -> bytes:
        # Pooled receive: one reused buffer filled via recv_into, one
        # growing bytearray -- no per-chunk bytes objects.  The check
        # is class-level so a fault-wrapped socket (which has no
        # recv_into of its own) keeps injection on the recv path.
        if getattr(type(data_sock), "recv_into", None) is None:
            chunks = []
            while True:
                chunk = data_sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        from repro.nest.io import DEFAULT_POOL

        buf = DEFAULT_POOL.acquire()
        view = memoryview(buf)
        out = bytearray()
        try:
            while True:
                got = data_sock.recv_into(view)
                if not got:
                    break
                out += view[:got]
        finally:
            view.release()
            DEFAULT_POOL.release(buf)
        return bytes(out)

    def retr(self, path: str) -> bytes:
        """Download a file (passive, stream mode)."""

        def do() -> bytes:
            data_sock = self._open_passive()
            try:
                self.command(f"RETR {path}", expect=ftp.OPENING_DATA)
                with data_sock:
                    data = self._drain(data_sock)
            except BaseException:
                data_sock.close()
                raise
            self._expect(ftp.TRANSFER_OK)
            return data

        return self._op(f"retr {path}", do)

    def stor(self, path: str, data: bytes) -> None:
        """Upload a file (passive, stream mode; replay overwrites)."""

        def do() -> None:
            data_sock = self._open_passive()
            try:
                self.command(f"STOR {path}", expect=ftp.OPENING_DATA)
                with data_sock:
                    data_sock.sendall(data)
            except BaseException:
                data_sock.close()
                raise
            self._expect(ftp.TRANSFER_OK)

        self._op(f"stor {path}", do)

    def list(self, path: str = "") -> str:
        """Directory listing text."""

        def do() -> str:
            data_sock = self._open_passive()
            try:
                self.command(f"LIST {path}".strip(), expect=ftp.OPENING_DATA)
                with data_sock:
                    listing = self._drain(data_sock)
            except BaseException:
                data_sock.close()
                raise
            self._expect(ftp.TRANSFER_OK)
            return listing.decode()

        return self._op("list", do)

    # -- metadata -----------------------------------------------------------
    def mkd(self, path: str) -> None:
        self._op(f"mkd {path}", lambda: self.command(
            f"MKD {path}", expect=ftp.PATH_CREATED))

    def rmd(self, path: str) -> None:
        self._op(f"rmd {path}", lambda: self.command(
            f"RMD {path}", expect=ftp.ACTION_OK))

    def dele(self, path: str) -> None:
        self._op(f"dele {path}", lambda: self.command(
            f"DELE {path}", expect=ftp.ACTION_OK))

    def size(self, path: str) -> int:
        def do() -> int:
            _, text = self.command(f"SIZE {path}", expect=213)
            return int(text)

        return self._op(f"size {path}", do)

    def cwd(self, path: str) -> None:
        self._op(f"cwd {path}", lambda: self.command(
            f"CWD {path}", expect=ftp.ACTION_OK))
        self._cwd = path

    def pwd(self) -> str:
        def do() -> str:
            _, text = self.command("PWD", expect=ftp.PATH_CREATED)
            return text.strip().strip('"')

        return self._op("pwd", do)
