"""Client retry policy: exponential backoff + jitter + deadline.

The policy is deliberately dumb and deterministic-when-seeded: a
geometric backoff schedule, full-jitter within each step, a wall-clock
deadline, and **idempotency awareness** -- a non-idempotent operation
(e.g. IBP's append-only ``store``) is never replayed unless the caller
opts in, because the first attempt may have partially applied.

The policy itself knows nothing about sockets; the session clients
(:mod:`repro.client.base`) feed it an ``attempt`` callable plus a
``reset`` callable that tears down and re-dials the connection between
attempts.  Classification of failures is delegated to
:func:`repro.client.errors.is_transient`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

from repro.client.errors import (
    FatalError,
    RetryExhaustedError,
    TransientError,
    is_transient,
)
from repro.obs import spans as _spans
from repro.obs.metrics import global_registry

__all__ = ["RetryPolicy", "NO_RETRY"]

T = TypeVar("T")


def _observe_retry(label: str) -> None:
    """One retry attempt about to happen: process-wide counter (the
    retry layer has no server context) + an annotation on the active
    request span, if the caller is being traced."""
    global_registry().counter(
        "repro_client_retries_total",
        "Client retry attempts after transient failures.",
        labelnames=("op",),
    ).inc(op=label)
    _spans.annotate("retries", 1)


def _observe_exhausted(label: str) -> None:
    global_registry().counter(
        "repro_client_retry_exhausted_total",
        "Operations that failed after exhausting their retry budget.",
        labelnames=("op",),
    ).inc(op=label)


@dataclass
class RetryPolicy:
    """How a client handles transient failures.

    ``max_attempts`` counts the first try: 3 means "one try plus two
    retries".  ``deadline`` bounds the whole operation (connect +
    attempts + backoff sleeps) in seconds; ``None`` disables it.
    ``jitter`` is the full-jitter fraction: each sleep is drawn
    uniformly from ``[delay * (1 - jitter), delay]`` using the seeded
    RNG, so tests are reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: Optional[float] = 30.0
    #: replay operations whose first attempt may have partially applied
    #: (appends, allocations).  Off by default -- correctness first.
    retry_non_idempotent: bool = False
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False,
                                default=None)  # type: ignore[assignment]
    clock: Callable[[], float] = field(default=time.monotonic, repr=False,
                                       compare=False)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False,
                                           compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    # -- schedule ----------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based), jittered."""
        delay = min(self.base_delay * (self.multiplier ** (attempt - 1)),
                    self.max_delay)
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * self._rng.random()
        return delay

    # -- execution ---------------------------------------------------------
    def call(
        self,
        attempt: Callable[[], T],
        *,
        idempotent: bool = True,
        reset: Callable[[], None] | None = None,
        classify: Callable[[BaseException], bool] = is_transient,
        label: str = "operation",
    ) -> T:
        """Run ``attempt`` under this policy.

        Transient failures tear the session down (``reset``), back off,
        and retry while attempts and deadline allow.  Fatal failures --
        and transient ones on non-idempotent operations, unless
        ``retry_non_idempotent`` -- re-raise immediately.  When the
        budget runs out, :class:`RetryExhaustedError` chains the last
        underlying failure.
        """
        start = self.clock()
        last: BaseException | None = None
        attempts = 0
        while attempts < self.max_attempts:
            attempts += 1
            try:
                # Each try gets its own span (a sibling of previous
                # tries, same trace) stamped with the attempt ordinal,
                # and -- because the span is pushed while the attempt
                # runs -- the wire trace context each attempt sends is
                # distinct: a server-side trace shows exactly which
                # attempt reached it.
                with _spans.maybe_span("attempt", op=label,
                                       attempt=attempts):
                    return attempt()
            except BaseException as exc:  # noqa: BLE001 - reclassified below
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if not classify(exc):
                    raise
                last = exc
                if reset is not None:
                    reset()
                if not idempotent and not self.retry_non_idempotent:
                    raise TransientError(
                        f"{label} failed and is not idempotent "
                        f"(not retried): {exc}") from exc
                if attempts >= self.max_attempts:
                    break
                delay = self.backoff(attempts)
                if self.deadline is not None and (
                        self.clock() - start + delay > self.deadline):
                    _observe_exhausted(label)
                    raise RetryExhaustedError(
                        f"{label}: deadline of {self.deadline:.3f}s exhausted "
                        f"after {attempts} attempt(s): {exc}",
                        attempts=attempts, last=exc) from exc
                _observe_retry(label)
                self.sleep(delay)
        _observe_exhausted(label)
        raise RetryExhaustedError(
            f"{label}: all {attempts} attempt(s) failed: {last}",
            attempts=attempts, last=last) from last


#: A policy that never retries but still applies the typed-error
#: conversion (attempt once, classify, surface).
NO_RETRY = RetryPolicy(max_attempts=1, deadline=None)
