"""Chirp client: NeST's native protocol, the full feature set.

All public operations run under the client's retry policy: a transient
wire failure (reset, timeout, short read) reconnects -- replaying the
GSI handshake when the session was authenticated -- and retries.
Server refusals surface immediately as :class:`ChirpError`, a
:class:`~repro.client.errors.FatalError`.
"""

from __future__ import annotations

import base64
import json
import zlib
from typing import Any, BinaryIO

from repro.client.base import SessionClient
from repro.client.errors import FatalError
from repro.nest.auth import Credential, GSIContext
from repro.protocols import chirp
from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Status,
    read_exact,
    read_line,
    write_line,
)


class ChirpError(FatalError):
    """A Chirp request failed; carries the server's status."""

    def __init__(self, status: Status, message: str = ""):
        super().__init__(f"{status.value}: {message}" if message else status.value)
        self.status = status


class ChirpClient(SessionClient):
    """A connected Chirp session."""

    protocol = "chirp"

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry=None, faults=None):
        self.subject: str | None = None
        self._credential: Credential | None = None
        super().__init__(host, port, timeout=timeout, retry=retry,
                         faults=faults)

    # -- session -----------------------------------------------------------
    def _setup_session(self) -> None:
        self.subject = None
        if self._credential is not None:
            self._auth_handshake(self._credential)

    def _goodbye(self) -> None:
        write_line(self.wfile, "quit")
        read_line(self.rfile)

    # -- plumbing ----------------------------------------------------------
    def _round_trip(self, request: Request) -> list[str]:
        # Every verb funnels through here, so this one injection point
        # makes all Chirp traffic trace-carrying.
        self._inject_trace(request)
        write_line(self.wfile, chirp.encode_request(request))
        response, args = chirp.decode_response(read_line(self.rfile))
        if not response.ok:
            raise ChirpError(response.status, response.message)
        return args

    def _read_payload(self, args: list[str]) -> bytes:
        nbytes = int(args[0]) if args else 0
        return read_exact(self.rfile, nbytes)

    # -- authentication ---------------------------------------------------
    def _auth_handshake(self, credential: Credential) -> str:
        write_line(self.wfile, chirp.encode_request(
            Request(rtype=RequestType.AUTH, params={"mechanism": "gsi"})))
        response, _ = chirp.decode_response(read_line(self.rfile))
        if not response.ok:
            raise ChirpError(response.status, response.message)
        write_line(self.wfile,
                   base64.b64encode(GSIContext.initiate(credential)).decode())
        challenge = base64.b64decode(read_line(self.rfile))
        write_line(self.wfile,
                   base64.b64encode(
                       GSIContext.respond(credential, challenge)).decode())
        response, args = chirp.decode_response(read_line(self.rfile))
        if not response.ok:
            raise ChirpError(response.status, response.message)
        self.subject = args[0] if args else credential.subject
        return self.subject

    def authenticate(self, credential: Credential) -> str:
        """GSI handshake; returns the server-assigned user name.

        The credential is remembered: any reconnect performed by the
        retry layer re-authenticates before replaying the operation.
        """
        self._credential = credential

        def do() -> str:
            if self.subject is None:
                return self._auth_handshake(credential)
            return self.subject

        return self._op("authenticate", do)

    # -- file operations ----------------------------------------------------
    def get(self, path: str) -> bytes:
        """Retrieve a whole file."""

        def do() -> bytes:
            args = self._round_trip(Request(rtype=RequestType.GET, path=path))
            return read_exact(self.rfile, int(args[0]))

        return self._op(f"get {path}", do)

    def put(self, path: str, data: bytes) -> None:
        """Store a whole file (idempotent: a replay overwrites)."""

        def do() -> None:
            self._round_trip(Request(rtype=RequestType.PUT, path=path,
                                     length=len(data)))
            self.wfile.write(data)
            self.wfile.flush()
            response, args = chirp.decode_response(read_line(self.rfile))
            if not response.ok:
                raise ChirpError(response.status, response.message)
            self._check_put_crc(args, zlib.crc32(data) & 0xFFFFFFFF)

        self._op(f"put {path}", do)

    def put_stream(self, path: str, stream: BinaryIO, length: int) -> int:
        """Store ``length`` bytes read from ``stream``, never holding
        more than one pooled buffer in memory; returns bytes moved.

        The source is consumed as it is sent, so a mid-flight wire
        failure is *not* replayed (the bytes are gone) -- it surfaces
        to the caller, unlike :meth:`put` which retries.  The CRC32
        folded into the send loop is checked against the server's
        stored-CRC acknowledgement when the server provides one.
        """
        from repro.nest.io import copy_stream

        def do() -> int:
            self._round_trip(Request(rtype=RequestType.PUT, path=path,
                                     length=length))
            moved, crc = copy_stream(stream, self.wfile, length)
            if moved != length:
                raise ProtocolError(
                    f"source ended {length - moved} bytes early")
            self.wfile.flush()
            response, args = chirp.decode_response(read_line(self.rfile))
            if not response.ok:
                raise ChirpError(response.status, response.message)
            self._check_put_crc(args, crc)
            return moved

        return self._op(f"put_stream {path}", do, idempotent=False)

    @staticmethod
    def _check_put_crc(args: list[str], sent_crc: int) -> None:
        """End-to-end integrity: the server's PUT ack carries the CRC32
        it folded into its receive loop ("-" from servers that could
        not fold one); a mismatch means the wire or the store mangled
        the bytes, and retrying would just overwrite good data with the
        same corruption -- so it is fatal."""
        if not args or args[0] == "-":
            return
        stored_crc = int(args[0])
        if stored_crc != sent_crc:
            raise ChirpError(
                Status.SERVER_ERROR,
                f"stored crc {stored_crc:#010x} != sent crc {sent_crc:#010x}")

    def stat(self, path: str) -> dict[str, Any]:
        """File/directory metadata."""

        def do() -> dict[str, Any]:
            args = self._round_trip(Request(rtype=RequestType.STAT, path=path))
            return chirp.decode_stat(args)

        return self._op(f"stat {path}", do)

    def unlink(self, path: str) -> None:
        """Delete a file."""
        self._op(f"unlink {path}", lambda: self._round_trip(
            Request(rtype=RequestType.DELETE, path=path)))

    def mkdir(self, path: str) -> None:
        """Create a directory."""
        self._op(f"mkdir {path}", lambda: self._round_trip(
            Request(rtype=RequestType.MKDIR, path=path)))

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        self._op(f"rmdir {path}", lambda: self._round_trip(
            Request(rtype=RequestType.RMDIR, path=path)))

    def listdir(self, path: str) -> list[dict[str, Any]]:
        """Directory entries."""

        def do() -> list[dict[str, Any]]:
            args = self._round_trip(Request(rtype=RequestType.LIST, path=path))
            return json.loads(self._read_payload(args))

        return self._op(f"listdir {path}", do)

    def rename(self, path: str, new_path: str) -> None:
        """Rename/move within the server."""
        self._op(f"rename {path}", lambda: self._round_trip(
            Request(rtype=RequestType.RENAME, path=path,
                    params={"new_path": new_path})))

    def pread(self, path: str, offset: int, length: int) -> bytes:
        """Block read at an offset (Chirp's ``read`` verb)."""

        def do() -> bytes:
            args = self._round_trip(Request(rtype=RequestType.READ, path=path,
                                            offset=offset, length=length))
            return read_exact(self.rfile, int(args[0]))

        return self._op(f"pread {path}", do)

    def pwrite(self, path: str, offset: int, data: bytes) -> None:
        """Block write at an offset (idempotent: same bytes, same
        offset)."""

        def do() -> None:
            self._round_trip(Request(rtype=RequestType.WRITE, path=path,
                                     offset=offset, length=len(data)))
            self.wfile.write(data)
            self.wfile.flush()
            response, _ = chirp.decode_response(read_line(self.rfile))
            if not response.ok:
                raise ChirpError(response.status, response.message)

        self._op(f"pwrite {path}", do)

    # -- lots (Chirp is the only protocol with lot management) -------------
    def lot_create(self, capacity: int, duration: float,
                   owner: str | None = None) -> dict[str, Any]:
        """Reserve storage space; returns the lot description.

        ``owner`` creates a default lot for another user (including
        ``"anonymous"``) -- an administrator operation.  Not idempotent
        (a replay would reserve a second lot), so it is never retried
        unless the policy opts in.
        """
        params: dict[str, Any] = {"capacity": capacity, "duration": duration}
        if owner:
            params["owner"] = owner

        def do() -> dict[str, Any]:
            args = self._round_trip(Request(
                rtype=RequestType.LOT_CREATE, params=params))
            return {"lot_id": args[0], "capacity": int(args[1]),
                    "expires_at": float(args[2])}

        return self._op("lot_create", do, idempotent=False)

    def lot_renew(self, lot_id: str, duration: float) -> dict[str, Any]:
        """Extend a lot's duration."""

        def do() -> dict[str, Any]:
            args = self._round_trip(Request(
                rtype=RequestType.LOT_RENEW,
                params={"lot_id": lot_id, "duration": duration}))
            return {"lot_id": args[0], "capacity": int(args[1]),
                    "expires_at": float(args[2])}

        return self._op("lot_renew", do)

    def lot_delete(self, lot_id: str) -> dict[str, Any]:
        """Terminate a lot; returns orphaned paths."""

        def do() -> dict[str, Any]:
            args = self._round_trip(Request(rtype=RequestType.LOT_DELETE,
                                            params={"lot_id": lot_id}))
            return json.loads(self._read_payload(args))

        return self._op("lot_delete", do, idempotent=False)

    def lot_attach(self, lot_id: str, prefix: str) -> None:
        """Bind a path prefix to a lot: writes under it charge there."""
        self._op("lot_attach", lambda: self._round_trip(
            Request(rtype=RequestType.LOT_ATTACH, path=prefix,
                    params={"lot_id": lot_id})))

    def lot_stat(self, lot_id: str) -> dict[str, Any]:
        """Describe one lot."""

        def do() -> dict[str, Any]:
            args = self._round_trip(Request(rtype=RequestType.LOT_STAT,
                                            params={"lot_id": lot_id}))
            return json.loads(self._read_payload(args))

        return self._op("lot_stat", do)

    def lot_list(self) -> list[dict[str, Any]]:
        """All of this user's lots."""

        def do() -> list[dict[str, Any]]:
            args = self._round_trip(Request(rtype=RequestType.LOT_LIST))
            return json.loads(self._read_payload(args))

        return self._op("lot_list", do)

    # -- ACLs ----------------------------------------------------------------
    def acl_set(self, path: str, subject: str, rights: str) -> None:
        """Grant/replace rights on a directory."""
        self._op("acl_set", lambda: self._round_trip(
            Request(rtype=RequestType.ACL_SET, path=path,
                    params={"subject": subject, "rights": rights})))

    def acl_get(self, path: str) -> list[list[str]]:
        """Read a directory's ACL entries."""

        def do() -> list[list[str]]:
            args = self._round_trip(Request(rtype=RequestType.ACL_GET,
                                            path=path))
            return json.loads(self._read_payload(args))

        return self._op("acl_get", do)

    # -- integrity ---------------------------------------------------------
    def checksum(self, path: str) -> dict[str, int]:
        """Server-side CRC32 over a file's contents.

        Returns ``{"crc32": ..., "size": ...}``; the server reads the
        file through its own storage path, so comparing two servers'
        checksums verifies a third-party copy without moving the data
        again.
        """

        def do() -> dict[str, int]:
            args = self._round_trip(Request(rtype=RequestType.CHECKSUM,
                                            path=path))
            return {"crc32": int(args[0]), "size": int(args[1])}

        return self._op(f"checksum {path}", do)

    # -- third-party movement ---------------------------------------------
    def thirdput(self, path: str, host: str, port: int,
                 remote_path: str) -> int:
        """Ask the server to push ``path`` to another Chirp server.

        Data flows server-to-server; returns bytes moved.
        """

        def do() -> int:
            args = self._round_trip(Request(
                rtype=RequestType.THIRDPUT, path=path,
                params={"host": host, "port": port,
                        "remote_path": remote_path}))
            return int(args[0])

        return self._op(f"thirdput {path}", do)

    # -- discovery ------------------------------------------------------------
    def query(self) -> str:
        """The server's availability ClassAd (text form)."""

        def do() -> str:
            args = self._round_trip(Request(rtype=RequestType.QUERY))
            return self._read_payload(args).decode()

        return self._op("query", do)
