"""Session plumbing shared by every protocol client.

Each client is a *session* over one TCP connection: dial, optional
handshake (login / GSI / mount), then request-response operations.
:class:`SessionClient` centralises the parts PR 2 hardened:

* **dialling** through the optional ``faults=`` hook so chaos tests can
  refuse or sabotage connections deterministically;
* **typed errors** -- no public operation leaks a bare ``OSError``;
* **retry with reconnect** -- a transient failure mid-operation tears
  the connection down, re-dials, replays the session handshake
  (:meth:`_setup_session`), and retries the operation under the
  client's :class:`~repro.client.retry.RetryPolicy`, respecting
  per-operation idempotency.

Subclasses implement :meth:`_setup_session` for their handshake and
wrap public operations in :meth:`_op`.
"""

from __future__ import annotations

import socket
from typing import BinaryIO, Callable, Optional, TypeVar

from repro.client.errors import FatalError, TransientError, is_transient
from repro.client.retry import RetryPolicy
from repro.faults import FaultPlan
from repro.obs.spans import current_trace_context

T = TypeVar("T")

__all__ = ["SessionClient"]


class SessionClient:
    """Base class: one retryable TCP session against one server."""

    protocol = "base"

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.sock = None
        self.rfile: BinaryIO | None = None
        self.wfile: BinaryIO | None = None
        self._closed = False
        # The initial connect runs under the retry policy too:
        # dialling plus the session handshake is idempotent, so a
        # refused dial or a reset mid-banner is retried like any
        # other transient failure.
        self._op("connect", lambda: None)

    # -- connection lifecycle ----------------------------------------------
    def _dial(self, host: str, port: int, timeout: float | None = None):
        """Open one (possibly fault-wrapped) TCP connection."""
        timeout = self.timeout if timeout is None else timeout
        if self.faults is not None:
            return self.faults.wrap_connect(
                lambda: socket.create_connection((host, port), timeout=timeout),
                label=f"{self.protocol}-client",
            )
        return socket.create_connection((host, port), timeout=timeout)

    def _ensure_connected(self) -> None:
        if self.sock is not None:
            return
        if self._closed:
            raise FatalError(f"{self.protocol} client is closed")
        self.sock = self._dial(self.host, self.port)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")
        try:
            self._setup_session()
        except BaseException:
            self._teardown()
            raise

    def _setup_session(self) -> None:
        """Per-protocol handshake after (re)connect; default: none."""

    def _teardown(self) -> None:
        """Drop the connection quietly (before a reconnect or close)."""
        for stream in (self.wfile, self.rfile):
            if stream is None:
                continue
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
        self.sock = self.rfile = self.wfile = None

    def _goodbye(self) -> None:
        """Best-effort protocol farewell before close; default: none."""

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.sock is not None:
            try:
                self._goodbye()
            except Exception:  # noqa: BLE001 - farewell is best-effort
                pass
            self._teardown()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _inject_trace(request) -> None:
        """Stamp the thread's active span onto an outgoing request.

        Protocol encoders forward ``params["trace"]`` as the wire
        trace-context field (Chirp tagged argument, HTTP header); when
        nothing is being traced this is one thread-local read and no
        wire bytes at all.
        """
        token = current_trace_context()
        if token:
            request.params["trace"] = token

    # -- retryable operations ----------------------------------------------
    def _op(self, label: str, fn: Callable[[], T], *,
            idempotent: bool = True) -> T:
        """Run one protocol operation under the retry policy.

        Reconnects (with session handshake) before each attempt if the
        previous one tore the connection down.
        """

        def attempt() -> T:
            self._ensure_connected()
            return fn()

        return self.retry.call(
            attempt,
            idempotent=idempotent,
            reset=self._teardown,
            label=f"{self.protocol} {label}",
        )
