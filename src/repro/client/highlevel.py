"""High-level facade: pick the right protocol per operation.

The paper's section 8 frames client-side protocol selection (PFS, SRB)
as complementary to NeST's server-side flexibility: "they enable the
middleware and the server to negotiate and choose the most appropriate
protocol for any particular transfer (e.g., NFS locally and GridFTP
remotely)".  :class:`NestClient` implements that negotiation against a
server's advertised ports: Chirp for management (the only protocol with
lots and ACLs), a configurable protocol for data.
"""

from __future__ import annotations

from typing import Any

from repro.client.chirp import ChirpClient
from repro.client.ftp import FtpClient
from repro.client.gridftp import GridFtpClient
from repro.client.http import HttpClient
from repro.client.nfs import NfsClient
from repro.client.retry import RetryPolicy
from repro.faults import FaultPlan
from repro.nest.auth import Credential


class NestClient:
    """Management via Chirp + data via a chosen transfer protocol.

    ``retry`` and ``faults`` are threaded through to both underlying
    sessions, so one policy governs the facade end to end.
    """

    def __init__(
        self,
        host: str,
        ports: dict[str, int],
        data_protocol: str = "chirp",
        credential: Credential | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ):
        if data_protocol not in ("chirp", "http", "ftp", "gridftp", "nfs"):
            raise ValueError(f"unknown data protocol {data_protocol!r}")
        self.host = host
        self.ports = dict(ports)
        self.data_protocol = data_protocol
        self.credential = credential
        self.retry = retry
        self.faults = faults
        self.chirp = ChirpClient(host, self.ports["chirp"], retry=retry,
                                 faults=faults)
        if credential is not None:
            self.chirp.authenticate(credential)
        self._data = self._open_data_client()

    def _open_data_client(self):
        proto = self.data_protocol
        port = self.ports[proto]
        kwargs = {"retry": self.retry, "faults": self.faults}
        if proto == "chirp":
            return self.chirp
        if proto == "http":
            return HttpClient(self.host, port, **kwargs)
        if proto == "ftp":
            return FtpClient(self.host, port, **kwargs)
        if proto == "gridftp":
            return GridFtpClient(self.host, port, credential=self.credential,
                                 **kwargs)
        return NfsClient(self.host, port, **kwargs)

    def close(self) -> None:
        if self._data is not self.chirp:
            self._data.close()
        self.chirp.close()

    def __enter__(self) -> "NestClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- data path (protocol-selected) ---------------------------------------
    def read(self, path: str) -> bytes:
        """Fetch a whole file via the data protocol."""
        if self.data_protocol in ("chirp", "http"):
            return self._data.get(path)
        if self.data_protocol in ("ftp", "gridftp"):
            return self._data.retr(path)
        return self._data.read_file(path)

    def write(self, path: str, data: bytes) -> None:
        """Store a whole file via the data protocol."""
        if self.data_protocol in ("chirp", "http"):
            self._data.put(path, data)
        elif self.data_protocol in ("ftp", "gridftp"):
            self._data.stor(path, data)
        else:
            self._data.write_file(path, data)

    # -- management path (always Chirp) ----------------------------------------
    def mkdir(self, path: str) -> None:
        self.chirp.mkdir(path)

    def listdir(self, path: str) -> list[dict[str, Any]]:
        return self.chirp.listdir(path)

    def stat(self, path: str) -> dict[str, Any]:
        return self.chirp.stat(path)

    def unlink(self, path: str) -> None:
        self.chirp.unlink(path)

    def checksum(self, path: str) -> dict[str, int]:
        """Server-side CRC32 + size (Chirp ``checksum`` verb)."""
        return self.chirp.checksum(path)

    def reserve_space(self, capacity: int, duration: float) -> dict[str, Any]:
        """Create a lot (requires an authenticated Chirp session)."""
        return self.chirp.lot_create(capacity, duration)

    def release_space(self, lot_id: str) -> dict[str, Any]:
        """Terminate a lot."""
        return self.chirp.lot_delete(lot_id)

    def grant(self, path: str, subject: str, rights: str) -> None:
        """Set an ACL entry."""
        self.chirp.acl_set(path, subject, rights)

    def server_ad(self) -> str:
        """The server's availability ClassAd."""
        return self.chirp.query()
