"""Client library for NeST's protocols.

One client class per wire protocol, plus the :class:`NestClient`
facade, which picks a protocol per operation the way PFS/SRB middleware
would (the paper's section 8 calls the client-side and server-side
approaches complementary).

All clients speak to any compliant server -- the live
:class:`repro.nest.server.NestServer`, or the native JBOS servers in
:mod:`repro.jbos` -- and share one hardening substrate: a typed error
taxonomy (:mod:`repro.client.errors`), a retry policy with exponential
backoff, jitter, deadline and idempotency awareness
(:mod:`repro.client.retry`), and an optional fault-injection hook
(:mod:`repro.faults`).
"""

from repro.client.chirp import ChirpClient, ChirpError
from repro.client.errors import (
    ClientError,
    FatalError,
    RetryExhaustedError,
    TransferError,
    TransientError,
)
from repro.client.ftp import FtpClient, FtpError
from repro.client.gridftp import GridFtpClient, third_party_transfer
from repro.client.highlevel import NestClient
from repro.client.http import HttpClient, HttpError
from repro.client.ibp import IbpClient
from repro.client.nfs import NfsClient, NfsError
from repro.client.retry import NO_RETRY, RetryPolicy

__all__ = [
    "ChirpClient",
    "ChirpError",
    "ClientError",
    "FatalError",
    "FtpClient",
    "FtpError",
    "GridFtpClient",
    "HttpClient",
    "HttpError",
    "IbpClient",
    "NestClient",
    "NfsClient",
    "NfsError",
    "NO_RETRY",
    "RetryExhaustedError",
    "RetryPolicy",
    "TransferError",
    "TransientError",
    "third_party_transfer",
]
