"""Client library for NeST's protocols.

One client class per wire protocol, plus the :class:`NestClient`
facade, which picks a protocol per operation the way PFS/SRB middleware
would (the paper's section 8 calls the client-side and server-side
approaches complementary).

All clients speak to any compliant server -- the live
:class:`repro.nest.server.NestServer`, or the native JBOS servers in
:mod:`repro.jbos`.
"""

from repro.client.chirp import ChirpClient
from repro.client.http import HttpClient
from repro.client.ftp import FtpClient
from repro.client.gridftp import GridFtpClient, third_party_transfer
from repro.client.nfs import NfsClient
from repro.client.highlevel import NestClient

__all__ = [
    "ChirpClient",
    "HttpClient",
    "FtpClient",
    "GridFtpClient",
    "third_party_transfer",
    "NfsClient",
    "NestClient",
]
