"""NFS client: mount, lookup, and block-granular file access.

This plays the role of the kernel NFS client in the paper's
experiments: whole-file reads become streams of BLOCK_SIZE READ rpcs.

File handles are server-wide and survive reconnects, so retry here is
natural: a transient failure re-dials, re-mounts (when the session had
mounted), and replays the operation.  Non-OK ``nfsstat`` results raise
:class:`NfsError`, a fatal (non-retried) error.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.client.base import SessionClient
from repro.client.errors import FatalError
from repro.protocols import nfs
from repro.protocols.common import ProtocolError
from repro.protocols.xdr import Packer, Unpacker


class NfsError(FatalError):
    """An RPC returned a non-OK nfsstat."""

    def __init__(self, status: int):
        super().__init__(f"nfsstat {status}")
        self.status = status


class NfsClient(SessionClient):
    """A mounted NFS session."""

    protocol = "nfs"

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry=None, faults=None):
        self._xids = itertools.count(1)
        self.root: bytes | None = None
        self._mounted_path: str | None = None
        super().__init__(host, port, timeout=timeout, retry=retry,
                         faults=faults)

    # -- session -----------------------------------------------------------
    def _setup_session(self) -> None:
        self.root = None
        if self._mounted_path is not None:
            self.root = self._do_mount(self._mounted_path)

    # -- rpc plumbing -------------------------------------------------------
    def _call(self, prog: int, proc: int, args: bytes) -> Unpacker:
        xid = next(self._xids)
        nfs.write_record(self.wfile, nfs.pack_call(xid, prog, proc, args))
        reply_xid, results = nfs.unpack_reply(nfs.read_record(self.rfile))
        if reply_xid != xid:
            raise ProtocolError(f"xid mismatch {reply_xid} != {xid}")
        return results

    def _checked(self, prog: int, proc: int, args: bytes) -> Unpacker:
        u = self._call(prog, proc, args)
        status = u.unpack_uint()
        if status != nfs.NFS_OK:
            raise NfsError(status)
        return u

    # -- mount / lookup ----------------------------------------------------
    def _do_mount(self, dirpath: str) -> bytes:
        p = Packer()
        p.pack_string(dirpath)
        u = self._checked(nfs.PROG_MOUNT, nfs.MOUNTPROC_MNT, p.get_buffer())
        return u.unpack_fixed(nfs.FHSIZE)

    def mount(self, dirpath: str = "/") -> bytes:
        """MNT: obtain the root file handle (re-mounted automatically
        after any reconnect)."""

        def do() -> bytes:
            self.root = self._do_mount(dirpath)
            return self.root

        handle = self._op(f"mount {dirpath}", do)
        self._mounted_path = dirpath
        return handle

    def _lookup_raw(self, dirfh: bytes, name: str) -> tuple[bytes, dict[str, Any]]:
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_LOOKUP, p.get_buffer())
        handle = u.unpack_fixed(nfs.FHSIZE)
        return handle, nfs.unpack_fattr(u)

    def lookup(self, dirfh: bytes, name: str) -> tuple[bytes, dict[str, Any]]:
        """LOOKUP one component; returns (fhandle, attributes)."""
        return self._op(f"lookup {name}",
                        lambda: self._lookup_raw(dirfh, name))

    def _lookup_path_raw(self, path: str) -> tuple[bytes, dict[str, Any]]:
        if self.root is None:
            self._mounted_path = "/"
            self.root = self._do_mount("/")
        handle = self.root
        attrs: dict[str, Any] = {"type": nfs.NFDIR, "size": 0}
        for part in [p for p in path.split("/") if p]:
            handle, attrs = self._lookup_raw(handle, part)
        return handle, attrs

    def lookup_path(self, path: str) -> tuple[bytes, dict[str, Any]]:
        """Resolve an absolute path component by component."""
        return self._op(f"lookup_path {path}",
                        lambda: self._lookup_path_raw(path))

    def getattr(self, fh: bytes) -> dict[str, Any]:
        """GETATTR."""

        def do() -> dict[str, Any]:
            p = Packer()
            p.pack_fixed(fh)
            u = self._checked(nfs.PROG_NFS, nfs.PROC_GETATTR, p.get_buffer())
            return nfs.unpack_fattr(u)

        return self._op("getattr", do)

    # -- data ------------------------------------------------------------------
    def _read_block_raw(self, fh: bytes, offset: int, count: int) -> bytes:
        p = Packer()
        p.pack_fixed(fh)
        p.pack_hyper(offset)
        p.pack_uint(count)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_READ, p.get_buffer())
        nfs.unpack_fattr(u)
        return u.unpack_opaque()

    def read_block(self, fh: bytes, offset: int,
                   count: int = nfs.BLOCK_SIZE) -> bytes:
        """One READ rpc."""
        return self._op("read_block",
                        lambda: self._read_block_raw(fh, offset, count))

    def _write_block_raw(self, fh: bytes, offset: int,
                         data: bytes) -> dict[str, Any]:
        p = Packer()
        p.pack_fixed(fh)
        p.pack_hyper(offset)
        p.pack_opaque(data)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_WRITE, p.get_buffer())
        return nfs.unpack_fattr(u)

    def write_block(self, fh: bytes, offset: int, data: bytes) -> dict[str, Any]:
        """One WRITE rpc (idempotent: same bytes, same offset)."""
        return self._op("write_block",
                        lambda: self._write_block_raw(fh, offset, data))

    def read_file(self, path: str) -> bytes:
        """Whole-file read as a stream of block rpcs (the kernel-client
        behaviour that makes NFS latency-bound in Figs. 3/4)."""

        def do() -> bytes:
            fh, attrs = self._lookup_path_raw(path)
            out = bytearray()
            offset = 0
            while offset < attrs["size"]:
                block = self._read_block_raw(fh, offset, nfs.BLOCK_SIZE)
                if not block:
                    break
                out.extend(block)
                offset += len(block)
            return bytes(out)

        return self._op(f"read_file {path}", do)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file write as sequential block rpcs (creates first)."""

        def do() -> None:
            directory, _, name = path.rpartition("/")
            dirfh, _ = self._lookup_path_raw(directory or "/")
            fh = self._create_raw(dirfh, name)
            offset = 0
            while offset < len(data):
                chunk = data[offset:offset + nfs.BLOCK_SIZE]
                self._write_block_raw(fh, offset, chunk)
                offset += len(chunk)

        self._op(f"write_file {path}", do)

    # -- namespace ------------------------------------------------------------
    def _create_raw(self, dirfh: bytes, name: str) -> bytes:
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_CREATE, p.get_buffer())
        return u.unpack_fixed(nfs.FHSIZE)

    def create(self, dirfh: bytes, name: str) -> bytes:
        """CREATE an empty file; returns its handle."""
        return self._op(f"create {name}",
                        lambda: self._create_raw(dirfh, name))

    def mkdir(self, dirfh: bytes, name: str) -> bytes:
        """MKDIR; returns the new directory's handle."""

        def do() -> bytes:
            p = Packer()
            p.pack_fixed(dirfh)
            p.pack_string(name)
            u = self._checked(nfs.PROG_NFS, nfs.PROC_MKDIR, p.get_buffer())
            return u.unpack_fixed(nfs.FHSIZE)

        return self._op(f"mkdir {name}", do)

    def remove(self, dirfh: bytes, name: str) -> None:
        """REMOVE a file."""

        def do() -> None:
            p = Packer()
            p.pack_fixed(dirfh)
            p.pack_string(name)
            self._checked(nfs.PROG_NFS, nfs.PROC_REMOVE, p.get_buffer())

        self._op(f"remove {name}", do)

    def rmdir(self, dirfh: bytes, name: str) -> None:
        """RMDIR."""

        def do() -> None:
            p = Packer()
            p.pack_fixed(dirfh)
            p.pack_string(name)
            self._checked(nfs.PROG_NFS, nfs.PROC_RMDIR, p.get_buffer())

        self._op(f"rmdir {name}", do)

    def readdir(self, dirfh: bytes) -> list[tuple[str, int]]:
        """READDIR: (name, ftype) entries."""

        def do() -> list[tuple[str, int]]:
            p = Packer()
            p.pack_fixed(dirfh)
            u = self._checked(nfs.PROG_NFS, nfs.PROC_READDIR, p.get_buffer())
            count = u.unpack_uint()
            return [(u.unpack_string(), u.unpack_uint()) for _ in range(count)]

        return self._op("readdir", do)
