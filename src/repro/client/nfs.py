"""NFS client: mount, lookup, and block-granular file access.

This plays the role of the kernel NFS client in the paper's
experiments: whole-file reads become streams of BLOCK_SIZE READ rpcs.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any

from repro.protocols import nfs
from repro.protocols.common import ProtocolError
from repro.protocols.xdr import Packer, Unpacker


class NfsError(Exception):
    """An RPC returned a non-OK nfsstat."""

    def __init__(self, status: int):
        super().__init__(f"nfsstat {status}")
        self.status = status


class NfsClient:
    """A mounted NFS session."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")
        self._xids = itertools.count(1)
        self.root: bytes | None = None

    def close(self) -> None:
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        self.sock.close()

    def __enter__(self) -> "NfsClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rpc plumbing -------------------------------------------------------
    def _call(self, prog: int, proc: int, args: bytes) -> Unpacker:
        xid = next(self._xids)
        nfs.write_record(self.wfile, nfs.pack_call(xid, prog, proc, args))
        reply_xid, results = nfs.unpack_reply(nfs.read_record(self.rfile))
        if reply_xid != xid:
            raise ProtocolError(f"xid mismatch {reply_xid} != {xid}")
        return results

    def _checked(self, prog: int, proc: int, args: bytes) -> Unpacker:
        u = self._call(prog, proc, args)
        status = u.unpack_uint()
        if status != nfs.NFS_OK:
            raise NfsError(status)
        return u

    # -- mount / lookup ----------------------------------------------------
    def mount(self, dirpath: str = "/") -> bytes:
        """MNT: obtain the root file handle."""
        p = Packer()
        p.pack_string(dirpath)
        u = self._checked(nfs.PROG_MOUNT, nfs.MOUNTPROC_MNT, p.get_buffer())
        self.root = u.unpack_fixed(nfs.FHSIZE)
        return self.root

    def lookup(self, dirfh: bytes, name: str) -> tuple[bytes, dict[str, Any]]:
        """LOOKUP one component; returns (fhandle, attributes)."""
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_LOOKUP, p.get_buffer())
        handle = u.unpack_fixed(nfs.FHSIZE)
        return handle, nfs.unpack_fattr(u)

    def lookup_path(self, path: str) -> tuple[bytes, dict[str, Any]]:
        """Resolve an absolute path component by component."""
        if self.root is None:
            self.mount()
        handle = self.root
        attrs: dict[str, Any] = {"type": nfs.NFDIR, "size": 0}
        for part in [p for p in path.split("/") if p]:
            handle, attrs = self.lookup(handle, part)
        return handle, attrs

    def getattr(self, fh: bytes) -> dict[str, Any]:
        """GETATTR."""
        p = Packer()
        p.pack_fixed(fh)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_GETATTR, p.get_buffer())
        return nfs.unpack_fattr(u)

    # -- data ------------------------------------------------------------------
    def read_block(self, fh: bytes, offset: int,
                   count: int = nfs.BLOCK_SIZE) -> bytes:
        """One READ rpc."""
        p = Packer()
        p.pack_fixed(fh)
        p.pack_hyper(offset)
        p.pack_uint(count)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_READ, p.get_buffer())
        nfs.unpack_fattr(u)
        return u.unpack_opaque()

    def write_block(self, fh: bytes, offset: int, data: bytes) -> dict[str, Any]:
        """One WRITE rpc."""
        p = Packer()
        p.pack_fixed(fh)
        p.pack_hyper(offset)
        p.pack_opaque(data)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_WRITE, p.get_buffer())
        return nfs.unpack_fattr(u)

    def read_file(self, path: str) -> bytes:
        """Whole-file read as a stream of block rpcs (the kernel-client
        behaviour that makes NFS latency-bound in Figs. 3/4)."""
        fh, attrs = self.lookup_path(path)
        out = bytearray()
        offset = 0
        while offset < attrs["size"]:
            block = self.read_block(fh, offset)
            if not block:
                break
            out.extend(block)
            offset += len(block)
        return bytes(out)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file write as sequential block rpcs (creates first)."""
        directory, _, name = path.rpartition("/")
        dirfh, _ = self.lookup_path(directory or "/")
        fh = self.create(dirfh, name)
        offset = 0
        while offset < len(data):
            chunk = data[offset:offset + nfs.BLOCK_SIZE]
            self.write_block(fh, offset, chunk)
            offset += len(chunk)

    # -- namespace ------------------------------------------------------------
    def create(self, dirfh: bytes, name: str) -> bytes:
        """CREATE an empty file; returns its handle."""
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_CREATE, p.get_buffer())
        return u.unpack_fixed(nfs.FHSIZE)

    def mkdir(self, dirfh: bytes, name: str) -> bytes:
        """MKDIR; returns the new directory's handle."""
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_MKDIR, p.get_buffer())
        return u.unpack_fixed(nfs.FHSIZE)

    def remove(self, dirfh: bytes, name: str) -> None:
        """REMOVE a file."""
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        self._checked(nfs.PROG_NFS, nfs.PROC_REMOVE, p.get_buffer())

    def rmdir(self, dirfh: bytes, name: str) -> None:
        """RMDIR."""
        p = Packer()
        p.pack_fixed(dirfh)
        p.pack_string(name)
        self._checked(nfs.PROG_NFS, nfs.PROC_RMDIR, p.get_buffer())

    def readdir(self, dirfh: bytes) -> list[tuple[str, int]]:
        """READDIR: (name, ftype) entries."""
        p = Packer()
        p.pack_fixed(dirfh)
        u = self._checked(nfs.PROG_NFS, nfs.PROC_READDIR, p.get_buffer())
        count = u.unpack_uint()
        return [(u.unpack_string(), u.unpack_uint()) for _ in range(count)]
