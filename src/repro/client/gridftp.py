"""GridFTP client: GSI auth, parallel extended-block transfers, and
third-party transfers between two servers (paper, section 6 step 3).

Hardening notes (PR 2): parallel-stream workers are joined against the
client's configured timeout and any lane that fails to finish raises
:class:`~repro.client.errors.TransferError` -- previously a hung stream
was silently dropped and the assembled file truncated with success
status.  Data connections honour the constructor timeout instead of a
hardcoded 30s, and the whole session (AUTH + login + MODE E +
parallelism) is replayed on retry reconnects.
"""

from __future__ import annotations

import base64
import threading

from repro.client.errors import TransferError
from repro.client.ftp import FtpClient, FtpError
from repro.nest.auth import Credential, GSIContext
from repro.protocols import ftp, gridftp


class GridFtpClient(FtpClient):
    """An FTP session with the GridFTP extensions."""

    protocol = "gridftp"

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 credential: Credential | None = None, retry=None,
                 faults=None):
        self.credential = credential
        self.parallelism = 1
        self._mode_e = False
        super().__init__(host, port, timeout=timeout, login=True,
                         retry=retry, faults=faults)

    # -- session -----------------------------------------------------------
    def _setup_session(self) -> None:
        self._expect(ftp.READY)
        if self.credential is not None:
            self._do_auth(self.credential)
        self._do_login()
        if self._cwd:
            self.command(f"CWD {self._cwd}", expect=ftp.ACTION_OK)
        if self._mode_e:
            self._negotiate_mode_e(self.parallelism)

    # -- GSI ------------------------------------------------------------------
    def _do_auth(self, credential: Credential) -> None:
        self.command("AUTH GSSAPI", expect=334)
        cert = base64.b64encode(GSIContext.initiate(credential)).decode()
        code, text = self.command(f"ADAT {cert}", expect=ftp.AUTH_CONTINUE)
        token = text.split("ADAT=", 1)[1]
        challenge = base64.b64decode(token)
        response = base64.b64encode(
            GSIContext.respond(credential, challenge)).decode()
        self.command(f"ADAT {response}", expect=ftp.AUTH_OK)

    def authenticate(self, credential: Credential) -> None:
        """AUTH GSSAPI + two ADAT exchanges (toy-GSI handshake); the
        credential is replayed on reconnect."""
        self.credential = credential
        self._op("authenticate", lambda: self._do_auth(credential))

    # -- parallel extended-block transfers ------------------------------------
    def _negotiate_mode_e(self, streams: int) -> None:
        self.command("MODE E", expect=200)
        self.command(f"OPTS {gridftp.format_opts_retr(streams)}", expect=200)

    def set_parallelism(self, streams: int) -> None:
        """Negotiate MODE E with N parallel data streams."""
        self._op("set_parallelism",
                 lambda: self._negotiate_mode_e(streams))
        self.parallelism = streams
        self._mode_e = True

    def _spas_endpoints(self) -> list[tuple[str, int]]:
        _, text = self.command("SPAS", expect=229)
        endpoints = []
        for line in text.splitlines():
            line = line.strip()
            if line.count(",") == 5:
                nums = [int(x) for x in line.split(",")]
                endpoints.append((".".join(map(str, nums[:4])),
                                  nums[4] * 256 + nums[5]))
        return endpoints

    def _join_lanes(self, threads: list[threading.Thread],
                    conns: list, errors: list[BaseException]) -> None:
        """Join the lane workers against the configured timeout.

        A lane that has not finished when the timeout expires is a hung
        stream: close every lane socket (unblocking the worker) and
        raise :class:`TransferError` instead of silently returning a
        truncated byte range with success status.
        """
        deadline = self.timeout
        for t in threads:
            t.join(timeout=deadline)
        hung = [t for t in threads if t.is_alive()]
        if hung:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            raise TransferError(
                f"{len(hung)} of {len(threads)} parallel stream(s) hung "
                f"past {deadline:.1f}s; transfer would be truncated")
        if errors:
            raise TransferError(f"parallel stream failed: {errors[0]}")

    def retr_parallel(self, path: str) -> bytes:
        """Download over ``parallelism`` striped streams."""

        def do() -> bytes:
            endpoints = self._spas_endpoints()
            self.command(f"RETR {path}", expect=ftp.OPENING_DATA)
            blocks: dict[int, bytes] = {}
            lock = threading.Lock()
            errors: list[BaseException] = []
            conns: list = []

            def lane(endpoint: tuple[str, int]) -> None:
                try:
                    conn = self._dial(*endpoint)
                    with lock:
                        conns.append(conn)
                    stream = conn.makefile("rb")
                    try:
                        for offset, payload in gridftp.iter_blocks(stream):
                            with lock:
                                blocks[offset] = payload
                    finally:
                        stream.close()
                        conn.close()
                except BaseException as exc:  # noqa: BLE001 - checked in join
                    errors.append(exc)

            threads = [threading.Thread(target=lane, args=(ep,), daemon=True)
                       for ep in endpoints]
            for t in threads:
                t.start()
            self._join_lanes(threads, conns, errors)
            self._expect(ftp.TRANSFER_OK)
            out = bytearray()
            for offset in sorted(blocks):
                payload = blocks[offset]
                if offset + len(payload) > len(out):
                    out.extend(b"\x00" * (offset + len(payload) - len(out)))
                out[offset:offset + len(payload)] = payload
            return bytes(out)

        return self._op(f"retr_parallel {path}", do)

    def stor_parallel(self, path: str, data: bytes) -> None:
        """Upload over ``parallelism`` striped streams."""

        def do() -> None:
            endpoints = self._spas_endpoints()
            self.command(f"STOR {path}", expect=ftp.OPENING_DATA)
            lanes = gridftp.stripe_ranges(len(data), len(endpoints),
                                          256 * 1024)
            errors: list[BaseException] = []
            conns: list = []
            lock = threading.Lock()

            def lane(endpoint: tuple[str, int], extents, last: bool) -> None:
                try:
                    conn = self._dial(*endpoint)
                    with lock:
                        conns.append(conn)
                    out = conn.makefile("wb")
                    try:
                        for offset, length in extents:
                            gridftp.write_block(out, offset,
                                                data[offset:offset + length])
                        gridftp.write_eod(out, eof=last)
                        out.flush()
                    finally:
                        out.close()
                        conn.close()
                except BaseException as exc:  # noqa: BLE001 - checked in join
                    errors.append(exc)

            threads = [
                threading.Thread(target=lane, args=(ep, lanes[i], i == 0),
                                 daemon=True)
                for i, ep in enumerate(endpoints)
            ]
            for t in threads:
                t.start()
            self._join_lanes(threads, conns, errors)
            self._expect(ftp.TRANSFER_OK)

        self._op(f"stor_parallel {path}", do)


def third_party_transfer(
    source: GridFtpClient,
    source_path: str,
    destination: GridFtpClient,
    destination_path: str,
) -> None:
    """Server-to-server transfer orchestrated by a third party.

    The client pairs the destination's passive endpoint with a PORT
    command on the source, then issues STOR/RETR; the data flows
    directly between the two servers (stream mode), never through the
    orchestrator -- the paper's section 6 step 3.
    """
    _, text = destination.command("PASV", expect=ftp.PASSIVE)
    host, port = ftp.parse_pasv_reply(text)
    h = host.split(".")
    source.command(
        f"PORT {h[0]},{h[1]},{h[2]},{h[3]},{port // 256},{port % 256}",
        expect=200,
    )
    # Destination starts listening for the incoming store first.
    destination.command(f"STOR {destination_path}", expect=ftp.OPENING_DATA)
    source.command(f"RETR {source_path}", expect=ftp.OPENING_DATA)
    source._expect(ftp.TRANSFER_OK)
    destination._expect(ftp.TRANSFER_OK)
