"""GridFTP client: GSI auth, parallel extended-block transfers, and
third-party transfers between two servers (paper, section 6 step 3)."""

from __future__ import annotations

import base64
import socket
import threading

from repro.client.ftp import FtpClient, FtpError
from repro.nest.auth import Credential, GSIContext
from repro.protocols import ftp, gridftp


class GridFtpClient(FtpClient):
    """An FTP session with the GridFTP extensions."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 credential: Credential | None = None):
        super().__init__(host, port, timeout=timeout, login=False)
        if credential is not None:
            self.authenticate(credential)
        self.login()
        self.parallelism = 1

    # -- GSI ------------------------------------------------------------------
    def authenticate(self, credential: Credential) -> None:
        """AUTH GSSAPI + two ADAT exchanges (toy-GSI handshake)."""
        self.command("AUTH GSSAPI", expect=334)
        cert = base64.b64encode(GSIContext.initiate(credential)).decode()
        code, text = self.command(f"ADAT {cert}", expect=ftp.AUTH_CONTINUE)
        token = text.split("ADAT=", 1)[1]
        challenge = base64.b64decode(token)
        response = base64.b64encode(
            GSIContext.respond(credential, challenge)).decode()
        self.command(f"ADAT {response}", expect=ftp.AUTH_OK)

    # -- parallel extended-block transfers ------------------------------------
    def set_parallelism(self, streams: int) -> None:
        """Negotiate MODE E with N parallel data streams."""
        self.command("MODE E", expect=200)
        self.command(f"OPTS {gridftp.format_opts_retr(streams)}", expect=200)
        self.parallelism = streams

    def _spas_endpoints(self) -> list[tuple[str, int]]:
        _, text = self.command("SPAS", expect=229)
        endpoints = []
        for line in text.splitlines():
            line = line.strip()
            if line.count(",") == 5:
                nums = [int(x) for x in line.split(",")]
                endpoints.append((".".join(map(str, nums[:4])),
                                  nums[4] * 256 + nums[5]))
        return endpoints

    def retr_parallel(self, path: str) -> bytes:
        """Download over ``parallelism`` striped streams."""
        endpoints = self._spas_endpoints()
        self.command(f"RETR {path}", expect=ftp.OPENING_DATA)
        blocks: dict[int, bytes] = {}
        lock = threading.Lock()
        errors: list[BaseException] = []

        def lane(endpoint: tuple[str, int]) -> None:
            try:
                conn = socket.create_connection(endpoint, timeout=30)
                stream = conn.makefile("rb")
                try:
                    for offset, payload in gridftp.iter_blocks(stream):
                        with lock:
                            blocks[offset] = payload
                finally:
                    stream.close()
                    conn.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=lane, args=(ep,), daemon=True)
                   for ep in endpoints]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        self._expect(ftp.TRANSFER_OK)
        if errors:
            raise FtpError(ftp.ACTION_FAILED, str(errors[0]))
        out = bytearray()
        for offset in sorted(blocks):
            payload = blocks[offset]
            if offset + len(payload) > len(out):
                out.extend(b"\x00" * (offset + len(payload) - len(out)))
            out[offset:offset + len(payload)] = payload
        return bytes(out)

    def stor_parallel(self, path: str, data: bytes) -> None:
        """Upload over ``parallelism`` striped streams."""
        endpoints = self._spas_endpoints()
        self.command(f"STOR {path}", expect=ftp.OPENING_DATA)
        lanes = gridftp.stripe_ranges(len(data), len(endpoints), 256 * 1024)
        errors: list[BaseException] = []

        def lane(endpoint: tuple[str, int], extents, last: bool) -> None:
            try:
                conn = socket.create_connection(endpoint, timeout=30)
                out = conn.makefile("wb")
                try:
                    for offset, length in extents:
                        gridftp.write_block(out, offset,
                                            data[offset:offset + length])
                    gridftp.write_eod(out, eof=last)
                    out.flush()
                finally:
                    out.close()
                    conn.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=lane, args=(ep, lanes[i], i == 0),
                             daemon=True)
            for i, ep in enumerate(endpoints)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        self._expect(ftp.TRANSFER_OK)
        if errors:
            raise FtpError(ftp.ACTION_FAILED, str(errors[0]))


def third_party_transfer(
    source: GridFtpClient,
    source_path: str,
    destination: GridFtpClient,
    destination_path: str,
) -> None:
    """Server-to-server transfer orchestrated by a third party.

    The client pairs the destination's passive endpoint with a PORT
    command on the source, then issues STOR/RETR; the data flows
    directly between the two servers (stream mode), never through the
    orchestrator -- the paper's section 6 step 3.
    """
    _, text = destination.command("PASV", expect=ftp.PASSIVE)
    host, port = ftp.parse_pasv_reply(text)
    h = host.split(".")
    source.command(
        f"PORT {h[0]},{h[1]},{h[2]},{h[3]},{port // 256},{port % 256}",
        expect=200,
    )
    # Destination starts listening for the incoming store first.
    destination.command(f"STOR {destination_path}", expect=ftp.OPENING_DATA)
    source.command(f"RETR {source_path}", expect=ftp.OPENING_DATA)
    source._expect(ftp.TRANSFER_OK)
    destination._expect(ftp.TRANSFER_OK)
