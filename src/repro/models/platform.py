"""Per-platform cost profiles for the simulated substrate.

The paper runs its experiments on two clusters:

* "linux": Pentium machines, Linux 2.2.19, IBM 9LZX disks, Gigabit
  Ethernet (delivered single-protocol peak about 35 MB/s in Fig. 3);
* "solaris": Netra T1 machines, Solaris 8, 100 Mbit/s Ethernet.

A :class:`PlatformProfile` gathers every hardware/OS constant the
models need.  The *relative* costs are what the experiments depend on
(e.g. Solaris' expensive thread operations versus cheap event
dispatch drive Fig. 5's left panel), so the absolute values are
calibrated to the paper's measured envelopes rather than to any modern
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MB = 1_000_000
KB = 1_000
MiB = 1 << 20
KiB = 1 << 10


@dataclass(frozen=True)
class PlatformProfile:
    """Hardware and OS constants for one simulated platform."""

    name: str

    # Network path.
    link_bw: float  #: server port capacity, bytes/s (delivered)
    client_nic_bw: float  #: per-client cap, bytes/s
    net_latency: float  #: one-way message latency, seconds

    # Disk.
    disk_read_bw: float  #: bytes/s
    disk_write_bw: float  #: bytes/s
    disk_seek: float  #: seconds per non-sequential access

    # Memory and buffer cache.
    mem_copy_bw: float  #: bytes/s for cache hits / copies
    cache_bytes: int  #: kernel buffer cache size
    block_size: int  #: filesystem block size
    dirty_headroom: int  #: write-behind absorbed before writers block

    # Per-request CPU costs.
    request_parse_cost: float  #: parse + dispatch one client request
    syscall_cost: float  #: one kernel crossing (send/recv/read/write)

    # Concurrency-model costs (the heart of Fig. 5).
    event_dispatch_cost: float  #: event-loop wakeup + handler dispatch
    thread_create_cost: float  #: spawn a service thread
    thread_switch_cost: float  #: context switch between threads
    process_create_cost: float  #: fork a service process
    process_switch_cost: float  #: context switch between processes

    # Effective I/O granularity per concurrency model: an event loop
    # works in small non-blocking units; a blocking thread reads big
    # readahead-sized runs.
    event_chunk: int
    thread_chunk: int

    def scaled(self, **overrides) -> "PlatformProfile":
        """A copy with selected constants replaced (for ablations)."""
        return replace(self, **overrides)


#: Linux 2.2.19 / Pentium / IBM 9LZX / Gigabit Ethernet cluster.
LINUX = PlatformProfile(
    name="linux",
    link_bw=35.0 * MB,
    client_nic_bw=35.0 * MB,
    net_latency=150e-6,
    disk_read_bw=22.0 * MB,
    disk_write_bw=22.0 * MB,
    disk_seek=8e-3,
    mem_copy_bw=400.0 * MB,
    cache_bytes=256 * MiB,
    block_size=8 * KiB,
    dirty_headroom=24 * MiB,
    request_parse_cost=120e-6,
    syscall_cost=15e-6,
    event_dispatch_cost=40e-6,
    thread_create_cost=250e-6,
    thread_switch_cost=25e-6,
    process_create_cost=1.2e-3,
    process_switch_cost=60e-6,
    event_chunk=64 * KiB,
    thread_chunk=256 * KiB,
)

#: Solaris 8 / Netra T1 / 100 Mbit Ethernet cluster.  Thread operations
#: on the 500 MHz UltraSPARC IIi are markedly more expensive relative to
#: event dispatch, which is what Fig. 5 (left) measures.
SOLARIS = PlatformProfile(
    name="solaris",
    link_bw=11.5 * MB,
    client_nic_bw=11.5 * MB,
    net_latency=300e-6,
    disk_read_bw=15.0 * MB,
    disk_write_bw=15.0 * MB,
    disk_seek=10e-3,
    mem_copy_bw=150.0 * MB,
    cache_bytes=128 * MiB,
    block_size=8 * KiB,
    dirty_headroom=16 * MiB,
    request_parse_cost=400e-6,
    syscall_cost=60e-6,
    event_dispatch_cost=120e-6,
    thread_create_cost=1.4e-3,
    thread_switch_cost=120e-6,
    process_create_cost=5.0e-3,
    process_switch_cost=250e-6,
    event_chunk=32 * KiB,
    thread_chunk=128 * KiB,
)

_PLATFORMS = {"linux": LINUX, "solaris": SOLARIS}


def get_platform(name: str) -> PlatformProfile:
    """Look up a platform profile by name ("linux" or "solaris")."""
    try:
        return _PLATFORMS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {sorted(_PLATFORMS)}"
        ) from None
