"""Seek-aware disk model.

A single spindle serves one request at a time (FIFO).  A request pays a
seek whenever it does not continue sequentially from the previous
access (different file, or a hole in the offset), then streams at the
platter bandwidth.  This captures the effect that matters to the
paper's experiments: interleaving chunks from many concurrent streams
costs seeks, while long sequential runs approach full bandwidth.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.core import Environment
from repro.sim.resources import Resource


class Disk:
    """A disk with ``read_bw``/``write_bw`` bytes/s and ``seek_time`` seconds."""

    def __init__(
        self,
        env: Environment,
        read_bw: float,
        write_bw: float,
        seek_time: float,
        name: str = "disk",
    ):
        self.env = env
        self.read_bw = float(read_bw)
        self.write_bw = float(write_bw)
        self.seek_time = float(seek_time)
        self.name = name
        self._arm = Resource(env, capacity=1)
        self._head: tuple[object, float] | None = None  # (file_id, next offset)
        #: Lifetime counters for experiment reporting.
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.seeks = 0

    def read(self, file_id: object, offset: float, nbytes: float) -> Generator:
        """Process step: read ``nbytes`` of ``file_id`` starting at ``offset``."""
        yield from self._io(file_id, offset, nbytes, self.read_bw, write=False)

    def write(self, file_id: object, offset: float, nbytes: float) -> Generator:
        """Process step: write ``nbytes`` of ``file_id`` starting at ``offset``."""
        yield from self._io(file_id, offset, nbytes, self.write_bw, write=True)

    def _io(
        self, file_id: object, offset: float, nbytes: float, bw: float, write: bool
    ) -> Generator:
        if nbytes <= 0:
            return
        with self._arm.request() as grant:
            yield grant
            if self._head != (file_id, offset):
                self.seeks += 1
                # Seek + stream as one batched timeout: the arm is held
                # throughout, so nothing can observe the intermediate
                # instant, and the chain lands at the bit-exact same
                # completion time as two back-to-back yields.
                yield self.env.timeout_chain((self.seek_time, nbytes / bw))
            else:
                yield self.env.timeout(nbytes / bw)
            self._head = (file_id, offset + nbytes)
            if write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes

    @property
    def queue_length(self) -> int:
        """Requests waiting for the arm (a contention signal for schedulers)."""
        return self._arm.queue_length
