"""Max-min fair-share network link model.

Concurrent TCP flows through one switch port share its capacity
approximately max-min fairly; each flow may additionally be capped by
the remote NIC (e.g. the 100 Mbit Netra clients).  The model is fluid:
every active flow progresses at its current allocation, and the
allocation is recomputed whenever the set of active flows changes.

This is the behaviour Figs. 3 and 4 of the paper depend on: total
delivered bandwidth saturates at the link capacity, and the per-flow
split is decided by who is actively sending -- which is exactly the
knob NeST's transfer-manager scheduling turns.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment, Event, SimulationError


class _Flow:
    __slots__ = ("remaining", "cap", "rate", "event", "group")

    def __init__(self, remaining: float, cap: float, event: Event,
                 group: str | None = None):
        self.remaining = remaining
        self.cap = cap
        self.rate = 0.0
        self.event = event
        self.group = group


_EPSILON_BYTES = 1e-6
_EPSILON_TIME = 1e-12


class FairShareLink:
    """A shared link of ``capacity`` bytes/second with max-min fair flows."""

    def __init__(self, env: Environment, capacity: float, name: str = "link"):
        if capacity <= 0:
            raise SimulationError("link capacity must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = env.now
        self._generation = 0
        #: Optional aggregate caps per flow group (e.g. one protocol's
        #: flows collectively limited by its implementation).
        self.group_caps: dict[str, float] = {}
        #: Total bytes ever delivered (for utilization accounting).
        self.bytes_delivered = 0.0

    # -- public API ---------------------------------------------------------
    def set_group_cap(self, group: str, cap: float) -> None:
        """Limit the aggregate rate of all flows tagged ``group``."""
        self.group_caps[group] = float(cap)

    def transfer(self, nbytes: float, cap: float | None = None,
                 group: str | None = None) -> Event:
        """Send ``nbytes`` through the link; the event fires on completion.

        ``cap`` limits this flow's rate (bytes/s), modelling the slower
        endpoint of the path; ``group`` tags the flow for an aggregate
        group cap set via :meth:`set_group_cap`.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        ev = Event(self.env)
        if nbytes == 0:
            ev.succeed(0.0)
            return ev
        self._settle()
        flow = _Flow(float(nbytes), float(cap) if cap else float("inf"), ev,
                     group=group)
        self._flows.append(flow)
        self._reallocate()
        return ev

    @property
    def active_flows(self) -> int:
        """Number of flows currently in progress."""
        return len(self._flows)

    def current_rate(self) -> float:
        """Aggregate bytes/second currently being delivered."""
        return sum(f.rate for f in self._flows)

    # -- internals ----------------------------------------------------------
    def _settle(self) -> None:
        """Advance all flows to the current time at their assigned rates."""
        elapsed = self.env.now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                moved = flow.rate * elapsed
                flow.remaining -= moved
                self.bytes_delivered += moved
        self._last_update = self.env.now
        finished = [f for f in self._flows if f.remaining <= _EPSILON_BYTES]
        if finished:
            self._flows = [f for f in self._flows if f.remaining > _EPSILON_BYTES]
            for flow in finished:
                flow.event.succeed(self.env.now)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and schedule the next completion."""
        self._generation += 1
        if not self._flows:
            return
        # Group caps become tighter per-flow caps for symmetric members:
        # each of a group's n active flows may use at most cap/n, which
        # is exact max-min for symmetric flows (our workloads) and a
        # close bound otherwise.
        counts: dict[str, int] = {}
        for f in self._flows:
            if f.group is not None and f.group in self.group_caps:
                counts[f.group] = counts.get(f.group, 0) + 1
        effective: dict[int, float] = {}
        for f in self._flows:
            cap = f.cap
            if f.group is not None and f.group in self.group_caps:
                cap = min(cap, self.group_caps[f.group] / counts[f.group])
            effective[id(f)] = cap
        # Water-filling with per-flow caps.
        pending = list(self._flows)
        budget = self.capacity
        while pending:
            fair = budget / len(pending)
            capped = [f for f in pending if effective[id(f)] <= fair]
            if not capped:
                for f in pending:
                    f.rate = fair
                break
            for f in capped:
                f.rate = effective[id(f)]
                budget -= f.rate
            pending = [f for f in pending if effective[id(f)] > fair]
            if budget <= 0:
                for f in pending:
                    f.rate = 0.0
                break
        # Next flow to finish decides when we wake up next.
        horizon = min(
            (f.remaining / f.rate) for f in self._flows if f.rate > 0
        )
        horizon = max(horizon, _EPSILON_TIME)
        generation = self._generation
        wake = self.env.timeout(horizon)
        wake.callbacks.append(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer allocation
        self._settle()
        self._reallocate()
