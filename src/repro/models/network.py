"""Max-min fair-share network link model.

Concurrent TCP flows through one switch port share its capacity
approximately max-min fairly; each flow may additionally be capped by
the remote NIC (e.g. the 100 Mbit Netra clients).  The model is fluid:
every active flow progresses at its current allocation, and the
allocation is recomputed whenever the set of active flows changes.

This is the behaviour Figs. 3 and 4 of the paper depend on: total
delivered bandwidth saturates at the link capacity, and the per-flow
split is decided by who is actively sending -- which is exactly the
knob NeST's transfer-manager scheduling turns.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment, Event, SimulationError


class _Flow:
    __slots__ = ("remaining", "cap", "rate", "event", "group")

    def __init__(self, remaining: float, cap: float, event: Event,
                 group: str | None = None):
        self.remaining = remaining
        self.cap = cap
        self.rate = 0.0
        self.event = event
        self.group = group


_EPSILON_BYTES = 1e-6
_EPSILON_TIME = 1e-12


class FairShareLink:
    """A shared link of ``capacity`` bytes/second with max-min fair flows."""

    def __init__(self, env: Environment, capacity: float, name: str = "link"):
        if capacity <= 0:
            raise SimulationError("link capacity must be positive")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = env.now
        self._generation = 0
        #: Optional aggregate caps per flow group (e.g. one protocol's
        #: flows collectively limited by its implementation).
        self.group_caps: dict[str, float] = {}
        #: Total bytes ever delivered (for utilization accounting).
        self.bytes_delivered = 0.0
        #: Max-min allocations keyed by the *ordered* tuple of effective
        #: per-flow caps.  The water-fill result is a pure function of
        #: that tuple (capacity is constant), and keeping the key ordered
        #: preserves the exact ``budget -= rate`` float sequence, so a
        #: cached allocation is bit-identical to a recomputed one.
        self._alloc_cache: dict[tuple, tuple] = {}
        #: perf counters (see repro.perf): allocation runs vs cache hits.
        self.reallocations = 0
        self.alloc_cache_hits = 0

    # -- public API ---------------------------------------------------------
    def set_group_cap(self, group: str, cap: float) -> None:
        """Limit the aggregate rate of all flows tagged ``group``."""
        self.group_caps[group] = float(cap)

    def transfer(self, nbytes: float, cap: float | None = None,
                 group: str | None = None) -> Event:
        """Send ``nbytes`` through the link; the event fires on completion.

        ``cap`` limits this flow's rate (bytes/s), modelling the slower
        endpoint of the path; ``group`` tags the flow for an aggregate
        group cap set via :meth:`set_group_cap`.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        ev = Event(self.env)
        if nbytes == 0:
            ev.succeed(0.0)
            return ev
        self._settle()
        flow = _Flow(float(nbytes), float(cap) if cap else float("inf"), ev,
                     group=group)
        self._flows.append(flow)
        self._reallocate()
        return ev

    @property
    def active_flows(self) -> int:
        """Number of flows currently in progress."""
        return len(self._flows)

    def current_rate(self) -> float:
        """Aggregate bytes/second currently being delivered."""
        return sum(f.rate for f in self._flows)

    # -- internals ----------------------------------------------------------
    def _settle(self) -> None:
        """Advance all flows to the current time at their assigned rates."""
        now = self.env.now
        flows = self._flows
        any_done = False
        elapsed = now - self._last_update
        if elapsed > 0:
            # Local accumulation with the same per-flow addition order is
            # bit-identical to adding onto the attribute each iteration.
            delivered = self.bytes_delivered
            for flow in flows:
                moved = flow.rate * elapsed
                flow.remaining -= moved
                delivered += moved
                if flow.remaining <= _EPSILON_BYTES:
                    any_done = True
            self.bytes_delivered = delivered
        else:
            for flow in flows:
                if flow.remaining <= _EPSILON_BYTES:
                    any_done = True
                    break
        self._last_update = now
        if any_done:
            finished = [f for f in flows if f.remaining <= _EPSILON_BYTES]
            self._flows = [f for f in flows if f.remaining > _EPSILON_BYTES]
            for flow in finished:
                flow.event.succeed(now)

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and schedule the next completion."""
        self._generation += 1
        flows = self._flows
        if not flows:
            return
        self.reallocations += 1
        # Group caps become tighter per-flow caps for symmetric members:
        # each of a group's n active flows may use at most cap/n, which
        # is exact max-min for symmetric flows (our workloads) and a
        # close bound otherwise.
        group_caps = self.group_caps
        if group_caps:
            counts: dict[str, int] = {}
            for f in flows:
                g = f.group
                if g is not None and g in group_caps:
                    counts[g] = counts.get(g, 0) + 1
            eff = []
            for f in flows:
                cap = f.cap
                g = f.group
                if g is not None and g in group_caps:
                    share = group_caps[g] / counts[g]
                    if share < cap:
                        cap = share
                eff.append(cap)
        else:
            eff = [f.cap for f in flows]
        # ``horizon`` (time to the next completion) is folded into each
        # rate-assignment loop below: same divisions, same minimum as a
        # separate ``min()`` pass, one traversal less.
        horizon = float("inf")
        if len(flows) == 1:
            # Single flow: the water-fill reduces to min(cap, capacity),
            # spelled with the same comparison it would perform.
            f = flows[0]
            e = eff[0]
            rate = e if e <= self.capacity else self.capacity
            f.rate = rate
            if rate > 0:
                horizon = f.remaining / rate
        else:
            key = tuple(eff)
            cached = self._alloc_cache.get(key)
            if cached is not None:
                self.alloc_cache_hits += 1
                for f, rate in zip(flows, cached):
                    f.rate = rate
                    if rate > 0:
                        h = f.remaining / rate
                        if h < horizon:
                            horizon = h
            else:
                # Water-filling with per-flow caps.
                pending = list(zip(flows, eff))
                budget = self.capacity
                while pending:
                    fair = budget / len(pending)
                    capped = [fe for fe in pending if fe[1] <= fair]
                    if not capped:
                        for f, _e in pending:
                            f.rate = fair
                        break
                    for f, e in capped:
                        f.rate = e
                        budget -= e
                    pending = [fe for fe in pending if fe[1] > fair]
                    if budget <= 0:
                        for f, _e in pending:
                            f.rate = 0.0
                        break
                if len(self._alloc_cache) >= 512:
                    self._alloc_cache.clear()
                self._alloc_cache[key] = tuple(f.rate for f in flows)
                for f in flows:
                    rate = f.rate
                    if rate > 0:
                        h = f.remaining / rate
                        if h < horizon:
                            horizon = h
        if horizon == float("inf"):
            # No flow is moving: mirror the seed's empty-min() error.
            raise SimulationError("reallocation with no positive rate")
        horizon = max(horizon, _EPSILON_TIME)
        generation = self._generation
        wake = self.env.timeout(horizon)
        wake.callbacks.append(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer allocation
        self._settle()
        self._reallocate()
