"""Per-user disk quotas and their I/O cost model.

The paper implements NeST *lots* on top of the filesystem quota
mechanism and measures its overhead in Fig. 6: write bandwidth drops by
roughly 50 % in the worst case (a single long sequential stream), while
small writes see negligible cost.

Accounting (:class:`QuotaTable`) and cost (the parameters consumed by
:class:`repro.models.filesystem.FileSystemModel`) are separated:

* accounting: every user has a block limit; allocations beyond it fail
  with :exc:`OverQuota` -- this is what gives lots their guarantee;
* cost: while a stream still has write-behind headroom in the buffer
  cache, quota-file updates coalesce in memory and cost nothing
  observable.  Once the stream is disk-bound, every data block flushed
  also pays a synchronous quota-file update of one metadata block,
  which is what halves throughput for long streams.

This matches both of Fig. 6's observations (negligible at small sizes,
approaching 50 % for long streams) without appealing to unavailable
ext2 internals; see DESIGN.md section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class OverQuota(Exception):
    """Raised when an allocation would exceed the user's quota."""

    def __init__(self, user: str, requested: int, available: int):
        super().__init__(
            f"user {user!r} requested {requested} bytes but only "
            f"{available} available under quota"
        )
        self.user = user
        self.requested = requested
        self.available = available


@dataclass
class QuotaEntry:
    """One user's quota state (bytes, not blocks, for clarity)."""

    limit: int
    used: int = 0

    @property
    def available(self) -> int:
        return max(0, self.limit - self.used)


@dataclass
class QuotaTable:
    """Per-user byte quotas with charge/release accounting.

    Users absent from the table are unconstrained (matching a
    filesystem where quotas exist only for configured users).
    """

    entries: dict[str, QuotaEntry] = field(default_factory=dict)

    def set_limit(self, user: str, limit_bytes: int) -> None:
        """Create or resize a user's quota, keeping current usage."""
        entry = self.entries.get(user)
        if entry is None:
            self.entries[user] = QuotaEntry(limit=int(limit_bytes))
        else:
            entry.limit = int(limit_bytes)

    def remove(self, user: str) -> None:
        """Drop a user's quota (they become unconstrained)."""
        self.entries.pop(user, None)

    def limit_of(self, user: str) -> int | None:
        """The user's byte limit, or None if unconstrained."""
        entry = self.entries.get(user)
        return entry.limit if entry else None

    def used_by(self, user: str) -> int:
        """Bytes currently charged to the user."""
        entry = self.entries.get(user)
        return entry.used if entry else 0

    def available_to(self, user: str) -> int | None:
        """Bytes the user may still allocate, or None if unconstrained."""
        entry = self.entries.get(user)
        return entry.available if entry else None

    def charge(self, user: str, nbytes: int) -> None:
        """Charge an allocation; raises :exc:`OverQuota` if it won't fit."""
        if nbytes < 0:
            raise ValueError("negative charge")
        entry = self.entries.get(user)
        if entry is None:
            return
        if entry.used + nbytes > entry.limit:
            raise OverQuota(user, nbytes, entry.available)
        entry.used += nbytes

    def release(self, user: str, nbytes: int) -> None:
        """Return bytes to the user's quota (floored at zero)."""
        if nbytes < 0:
            raise ValueError("negative release")
        entry = self.entries.get(user)
        if entry is not None:
            entry.used = max(0, entry.used - nbytes)

    def would_fit(self, user: str, nbytes: int) -> bool:
        """True if ``charge(user, nbytes)`` would succeed."""
        entry = self.entries.get(user)
        return entry is None or entry.used + nbytes <= entry.limit
