"""LRU kernel buffer cache model (block bookkeeping).

The cache tracks which ``(file_id, block)`` pairs are resident and
whether they are dirty.  It is pure bookkeeping -- it spends no
simulated time itself; the filesystem model charges memory-copy time
for hits and disk time for misses and write-back.

NeST's *gray-box* cache estimate (:mod:`repro.nest.graybox`) is a
second, independent instance of the same structure fed only with the
accesses NeST itself performed -- exactly the technique of
Arpaci-Dusseau's gray-box work the paper cites for cache-aware
scheduling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable


class BufferCache:
    """An LRU cache of fixed-size blocks with a byte capacity."""

    def __init__(self, capacity_bytes: int, block_size: int = 8192):
        if capacity_bytes < 0 or block_size <= 0:
            raise ValueError("invalid cache geometry")
        self.capacity_bytes = int(capacity_bytes)
        self.block_size = int(block_size)
        self.capacity_blocks = self.capacity_bytes // self.block_size
        # key -> dirty flag; OrderedDict keeps LRU order (MRU at end).
        self._blocks: "OrderedDict[tuple[Hashable, int], bool]" = OrderedDict()
        # The dirty subset, kept in the same relative LRU order as
        # ``_blocks`` (every reorder of a dirty key is mirrored), so
        # dirty-byte counts and oldest-dirty scans need not walk the
        # whole cache.
        self._dirty: "OrderedDict[tuple[Hashable, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- geometry -----------------------------------------------------------
    def blocks_of(self, offset: int, nbytes: int) -> range:
        """Block numbers covering ``[offset, offset + nbytes)``."""
        if nbytes <= 0:
            return range(0)
        first = offset // self.block_size
        last = (offset + nbytes - 1) // self.block_size
        return range(first, last + 1)

    # -- state queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._blocks) * self.block_size

    @property
    def dirty_bytes(self) -> int:
        """Bytes cached and not yet written back."""
        return len(self._dirty) * self.block_size

    def contains(self, file_id: Hashable, block: int) -> bool:
        """True if the block is resident (does not touch LRU order)."""
        return (file_id, block) in self._blocks

    def resident_fraction(self, file_id: Hashable, size_bytes: int) -> float:
        """Fraction of a file's blocks currently resident."""
        blocks = self.blocks_of(0, size_bytes)
        if len(blocks) == 0:
            return 1.0
        hits = sum(1 for b in blocks if (file_id, b) in self._blocks)
        return hits / len(blocks)

    # -- access ----------------------------------------------------------------
    def access_read(
        self, file_id: Hashable, offset: int, nbytes: int
    ) -> tuple[int, int, list[tuple[Hashable, int]]]:
        """Record a read; returns (hit_bytes, miss_bytes, evicted_dirty).

        Missing blocks are inserted (the read populates the cache);
        ``evicted_dirty`` lists dirty blocks pushed out by the insertions,
        which the caller must write back.
        """
        hit_blocks = 0
        miss_blocks = 0
        evicted: list[tuple[Hashable, int]] = []
        for b in self.blocks_of(offset, nbytes):
            key = (file_id, b)
            if key in self._blocks:
                hit_blocks += 1
                self._blocks.move_to_end(key)
                if key in self._dirty:
                    self._dirty.move_to_end(key)
            else:
                miss_blocks += 1
                evicted.extend(self._insert(key, dirty=False))
        self.hits += hit_blocks
        self.misses += miss_blocks
        return hit_blocks * self.block_size, miss_blocks * self.block_size, evicted

    def access_write(
        self, file_id: Hashable, offset: int, nbytes: int
    ) -> list[tuple[Hashable, int]]:
        """Record a write (blocks become dirty); returns evicted dirty blocks."""
        evicted: list[tuple[Hashable, int]] = []
        for b in self.blocks_of(offset, nbytes):
            key = (file_id, b)
            if key in self._blocks:
                self._blocks[key] = True
                self._blocks.move_to_end(key)
                self._dirty[key] = None
                self._dirty.move_to_end(key)
            else:
                evicted.extend(self._insert(key, dirty=True))
        return evicted

    def clean(self, keys: Iterable[tuple[Hashable, int]]) -> None:
        """Mark blocks as written back (no longer dirty)."""
        for key in keys:
            if key in self._blocks:
                self._blocks[key] = False
                self._dirty.pop(key, None)

    def dirty_blocks_of(self, file_id: Hashable) -> list[tuple[Hashable, int]]:
        """All dirty blocks belonging to ``file_id``."""
        return [k for k in self._dirty if k[0] == file_id]

    def oldest_dirty(self, max_blocks: int) -> list[tuple[Hashable, int]]:
        """Up to ``max_blocks`` dirty blocks, oldest (LRU) first."""
        run: list[tuple[Hashable, int]] = []
        for key in self._dirty:
            run.append(key)
            if len(run) >= max_blocks:
                break
        return run

    def invalidate_file(self, file_id: Hashable) -> None:
        """Drop every block of ``file_id`` (e.g. on delete)."""
        for key in [k for k in self._blocks if k[0] == file_id]:
            del self._blocks[key]
            self._dirty.pop(key, None)

    def _insert(self, key: tuple[Hashable, int], dirty: bool) -> list[tuple[Hashable, int]]:
        evicted: list[tuple[Hashable, int]] = []
        if self.capacity_blocks == 0:
            # Degenerate cache: writes are immediately "evicted".
            return [key] if dirty else []
        while len(self._blocks) >= self.capacity_blocks:
            victim, was_dirty = self._blocks.popitem(last=False)
            if was_dirty:
                del self._dirty[victim]
                evicted.append(victim)
        self._blocks[key] = dirty
        if dirty:
            self._dirty[key] = None
        return evicted
