"""Hardware and operating-system models for the simulated substrate.

The NeST paper's evaluation ran on 2002 hardware: Pentium/Linux-2.2
machines with IBM 9LZX disks on Gigabit Ethernet, and Netra-T1/Solaris-8
machines on 100 Mbit Ethernet.  These modules model that testbed on top
of the DES kernel in :mod:`repro.sim`:

* :mod:`repro.models.network` -- a max-min fair-share link (TCP flows
  sharing a switch port),
* :mod:`repro.models.disk` -- a seek-aware disk with serialized access,
* :mod:`repro.models.cache` -- an LRU kernel buffer cache (block
  bookkeeping; the *time* of hits/misses is charged by the filesystem),
* :mod:`repro.models.quota` -- per-user disk quotas and the synchronous
  quota-update traffic they add,
* :mod:`repro.models.filesystem` -- the composition: a local filesystem
  with write-behind caching, quota enforcement, and space accounting,
* :mod:`repro.models.platform` -- per-platform cost profiles ("linux",
  "solaris") covering thread/process/event dispatch costs, NIC and disk
  speeds, and cache sizes.

Calibration targets come from the paper's own measurements (e.g. the
delivered single-protocol peak of ~35 MB/s on the GigE cluster) --
see DESIGN.md section 1.
"""

from repro.models.network import FairShareLink
from repro.models.disk import Disk
from repro.models.cache import BufferCache
from repro.models.quota import QuotaTable, OverQuota
from repro.models.filesystem import FileSystemModel, FileMeta
from repro.models.platform import PlatformProfile, LINUX, SOLARIS, get_platform

__all__ = [
    "FairShareLink",
    "Disk",
    "BufferCache",
    "QuotaTable",
    "OverQuota",
    "FileSystemModel",
    "FileMeta",
    "PlatformProfile",
    "LINUX",
    "SOLARIS",
    "get_platform",
]
