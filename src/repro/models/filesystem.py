"""The local-filesystem model: cache + disk + quotas composed.

This is the OS-level substrate the simulated NeST runs on.  It owns a
:class:`~repro.models.cache.BufferCache`, a
:class:`~repro.models.disk.Disk`, and a
:class:`~repro.models.quota.QuotaTable`, and exposes generator methods
(``yield from fs.read(...)``) that spend simulated time:

* **reads** cost a memory copy for resident blocks and disk I/O for the
  rest (populating the cache);
* **writes** land in the cache (write-behind) until the dirty headroom
  is exhausted, after which the writer blocks on flushing -- and, with
  quotas enabled, every flushed data block also pays a synchronous
  quota-file update (the Fig. 6 overhead; see
  :mod:`repro.models.quota`);
* **space accounting** charges the owner's quota on allocation, which
  is how quota-backed lots are enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Hashable

from repro.models.cache import BufferCache
from repro.models.disk import Disk
from repro.models.platform import PlatformProfile
from repro.models.quota import OverQuota, QuotaTable
from repro.sim.core import Environment


@dataclass
class FileMeta:
    """Metadata for one simulated file."""

    path: str
    owner: str
    size: int = 0
    file_id: Hashable = field(default=None)

    def __post_init__(self) -> None:
        if self.file_id is None:
            self.file_id = self.path


class FileSystemModel:
    """A simulated local filesystem with write-behind cache and quotas."""

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        capacity_bytes: int = 0,
        quotas_enabled: bool = False,
        quota_io_blocks_per_data_block: float = 0.45,
    ):
        self.env = env
        self.platform = platform
        self.capacity_bytes = int(capacity_bytes) or 100 * (1 << 30)
        self.quotas_enabled = quotas_enabled
        #: Metadata blocks written per flushed data block when quotas
        #: are on.  The default 0.45, combined with the two seeks each
        #: flush batch pays to visit the quota area, reproduces the
        #: paper's ~50 % worst case for long sequential streams.
        self.quota_io_blocks_per_data_block = quota_io_blocks_per_data_block
        self.cache = BufferCache(platform.cache_bytes, platform.block_size)
        self.disk = Disk(
            env,
            read_bw=platform.disk_read_bw,
            write_bw=platform.disk_write_bw,
            seek_time=platform.disk_seek,
        )
        self.quotas = QuotaTable()
        self.files: dict[str, FileMeta] = {}
        self.used_bytes = 0

    # ------------------------------------------------------------------
    # metadata operations (instantaneous: "order of milliseconds" ops are
    # charged by the storage manager, not the fs model)
    # ------------------------------------------------------------------
    def create(self, path: str, owner: str) -> FileMeta:
        """Create an empty file owned by ``owner``."""
        if path in self.files:
            raise FileExistsError(path)
        meta = FileMeta(path=path, owner=owner)
        self.files[path] = meta
        return meta

    def lookup(self, path: str) -> FileMeta:
        """Return the file's metadata or raise ``FileNotFoundError``."""
        try:
            return self.files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def delete(self, path: str) -> None:
        """Remove a file, releasing its space and quota charge."""
        meta = self.lookup(path)
        self.cache.invalidate_file(meta.file_id)
        self.quotas.release(meta.owner, meta.size)
        self.used_bytes -= meta.size
        del self.files[path]

    def free_bytes(self) -> int:
        """Unallocated capacity."""
        return self.capacity_bytes - self.used_bytes

    # ------------------------------------------------------------------
    # data path (generator methods; yield from inside a process)
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int, nbytes: int) -> Generator:
        """Read ``nbytes`` at ``offset``: cache hits at memory speed,
        misses from disk (cache is populated; evicted dirty blocks are
        written back first)."""
        meta = self.lookup(path)
        nbytes = max(0, min(nbytes, meta.size - offset))
        if nbytes <= 0:
            return
        hit_bytes, miss_bytes, evicted = self.cache.access_read(
            meta.file_id, offset, nbytes
        )
        if evicted:
            yield from self._writeback(evicted)
        if hit_bytes:
            yield self.env.timeout(hit_bytes / self.platform.mem_copy_bw)
        if miss_bytes:
            yield from self.disk.read(meta.file_id, offset, miss_bytes)

    def write(self, path: str, offset: int, nbytes: int) -> Generator:
        """Write ``nbytes`` at ``offset`` with write-behind semantics.

        Raises :exc:`OverQuota` (before spending any time) if the
        allocation growth would exceed the owner's quota, and
        :exc:`OSError` if the filesystem itself is full.
        """
        meta = self.lookup(path)
        if nbytes <= 0:
            return
        growth = max(0, offset + nbytes - meta.size)
        if growth:
            if growth > self.free_bytes():
                raise OSError(f"filesystem full writing {path!r}")
            self.quotas.charge(meta.owner, growth)  # may raise OverQuota
            meta.size += growth
            self.used_bytes += growth
        # Copy into the cache.
        yield self.env.timeout(nbytes / self.platform.mem_copy_bw)
        evicted = self.cache.access_write(meta.file_id, offset, nbytes)
        if evicted:
            yield from self._writeback(evicted, quota_user=meta.owner)
        # Dirty-headroom throttle: the writer blocks until the cache is
        # back under the headroom (this is where Fig. 6's quota
        # surcharge is paid).
        while self.cache.dirty_bytes > self.platform.dirty_headroom:
            dirty = self._oldest_dirty_run()
            if not dirty:
                break
            yield from self._flush_blocks(dirty, quota_surcharge=True)

    def sync(self, path: str) -> Generator:
        """Flush all of a file's dirty blocks (fsync).

        The sync path writes the coalesced quota block once, so its
        quota surcharge is a single metadata block rather than
        per-data-block (see :mod:`repro.models.quota`).
        """
        meta = self.lookup(path)
        dirty = sorted(self.cache.dirty_blocks_of(meta.file_id), key=lambda k: k[1])
        yield from self._flush_blocks(dirty, quota_surcharge=False)
        if self.quotas_enabled and dirty:
            yield from self.disk.write(
                "__quota__", 0, self.platform.block_size
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _oldest_dirty_run(self, max_blocks: int = 64) -> list[tuple[Hashable, int]]:
        """Up to ``max_blocks`` dirty blocks in LRU order, grouped so a
        contiguous run from one file flushes as one sequential write."""
        run = self.cache.oldest_dirty(max_blocks)
        run.sort(key=lambda k: (str(k[0]), k[1]))
        return run

    def _writeback(
        self, blocks: list[tuple[Hashable, int]], quota_user: str | None = None
    ) -> Generator:
        if blocks:
            yield from self._flush_blocks(sorted(blocks, key=lambda k: (str(k[0]), k[1])),
                                          quota_surcharge=True)

    def _flush_blocks(
        self, blocks: list[tuple[Hashable, int]], quota_surcharge: bool
    ) -> Generator:
        """Write the given cache blocks to disk as contiguous runs."""
        if not blocks:
            return
        bs = self.platform.block_size
        # Group into (file_id, start_block, count) runs.
        runs: list[tuple[Hashable, int, int]] = []
        for file_id, block in blocks:
            if runs and runs[-1][0] == file_id and runs[-1][1] + runs[-1][2] == block:
                runs[-1] = (file_id, runs[-1][1], runs[-1][2] + 1)
            else:
                runs.append((file_id, block, 1))
        for file_id, start, count in runs:
            yield from self.disk.write(file_id, start * bs, count * bs)
            if self.quotas_enabled and quota_surcharge:
                surcharge = count * self.quota_io_blocks_per_data_block * bs
                if surcharge > 0:
                    yield from self.disk.write("__quota__", 0, surcharge)
        self.cache.clean(blocks)


__all__ = ["FileSystemModel", "FileMeta", "OverQuota"]
