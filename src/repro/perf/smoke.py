"""Sub-second perf smoke: ``python -m repro.perf.smoke``.

Runs a deliberately small kernel microbenchmark (well under a second of
wall clock) and appends the record to the ``BENCH_kernel.json``
trajectory, so a quick "did I just slow the kernel down?" check is one
command with no figure-scale waiting.  The simulated outcome is
deterministic; only the wall-clock column varies run to run.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.log import console
from repro.perf.bench import record_kernel

#: Small enough to finish in well under a second on any plausible host.
SMOKE_PROCESSES = 60
SMOKE_STEPS = 20


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.smoke",
        description="sub-second kernel perf smoke (appends to the trajectory)",
    )
    parser.add_argument("--path", default="BENCH_kernel.json",
                        help="trajectory file to append to")
    parser.add_argument("--label", default="smoke",
                        help="label stored with the record")
    args = parser.parse_args(argv)
    record = record_kernel(path=args.path, label=args.label,
                           n_processes=SMOKE_PROCESSES, steps=SMOKE_STEPS)
    counters = record["counters"]
    console(
        f"smoke: {record['wall_seconds']:.3f}s wall, "
        f"{record['events_per_second']:,} events/s, "
        f"pool hit rate {counters['pool_hit_rate']:.1%} "
        f"-> appended to {args.path}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
