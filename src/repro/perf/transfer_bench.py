"""Live loopback transfer benchmark: the bytes/sec trajectory.

Two phases against real sockets on localhost, appending one record to
``BENCH_transfer.json`` so the data-path's throughput has a history
the same way the kernel and figure benches do:

* **GET** -- seed files into a ``LocalFSStore``-backed NeST, then pull
  them back over Chirp.  With the zero-copy layer this is the sendfile
  path end to end: file pages move kernel-to-kernel and the fast-path
  counters say how many quanta went zero-copy vs through the pooled
  fallback.  Every retrieved payload is CRC-checked against the CRC
  computed at seed time -- client-side only, so the server never
  re-reads what it just sent.
* **concurrent PUT** -- N writer threads store files into a durable
  (``state_dir``) appliance concurrently.  Every put journals two
  metadata records (put_begin + put_commit), so this phase measures
  group commit directly: the journal's ``fsync_count`` over
  ``records_appended`` is the fsyncs-per-record figure, 1.0 without
  batching and far below it when concurrent appenders share flushes.

Both phases run tiny in ``--smoke`` mode (the ``transfer`` verify
lane): counters and integrity are asserted, wall-clock numbers are
reported but nothing is asserted about them, and the history file is
left alone so CI noise never pollutes the trajectory.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
import zlib

from repro.nest import io as fastio
from repro.perf.bench import _environment_stamp, append_record

HISTORY_PATH = "BENCH_transfer.json"

#: Phase sizes: (writers, files_per_writer, put_bytes, get_files,
#: get_bytes).  Smoke keeps the same shape at trivial sizes.
FULL_SIZES = (16, 8, 64 * 1024, 12, 8 * 1024 * 1024)
SMOKE_SIZES = (4, 2, 8 * 1024, 2, 256 * 1024)


def _payload(nbytes: int) -> bytes:
    pattern = bytes(range(256))
    return (pattern * (nbytes // len(pattern) + 1))[:nbytes]


def _counter_delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before[key] for key in after}


def run_get_phase(files: int, file_bytes: int) -> dict:
    """Seed then retrieve ``files`` files; returns throughput, fast-path
    counter deltas, and the integrity verdict."""
    from repro.client.chirp import ChirpClient
    from repro.nest.backends import LocalFSStore
    from repro.nest.config import NestConfig
    from repro.nest.server import NestServer

    payload = _payload(file_bytes)
    expect_crc = zlib.crc32(payload) & 0xFFFFFFFF
    with tempfile.TemporaryDirectory(prefix="nest-xferbench-") as root:
        config = NestConfig(name="bench-get", protocols=("chirp",))
        store = LocalFSStore(os.path.join(root, "data"))
        with NestServer(config, store=store) as server:
            host, port = server.endpoint("chirp")
            client = ChirpClient(host, port)
            try:
                # Seeding exercises the pooled receive path; the put
                # ack's folded CRC is verified inside the client.
                for i in range(files):
                    client.put(f"/bench-{i}.dat", payload)
                counters0 = fastio.COUNTERS.snapshot()
                pool0 = fastio.DEFAULT_POOL.snapshot()
                crc_ok = True
                t0 = time.perf_counter()
                for i in range(files):
                    data = client.get(f"/bench-{i}.dat")
                    if (len(data) != file_bytes
                            or zlib.crc32(data) & 0xFFFFFFFF != expect_crc):
                        crc_ok = False
                elapsed = time.perf_counter() - t0
            finally:
                client.close()
    total = files * file_bytes
    counters = _counter_delta(counters0, fastio.COUNTERS.snapshot())
    pool = fastio.DEFAULT_POOL.snapshot()
    return {
        "files": files,
        "file_bytes": file_bytes,
        "bytes": total,
        "seconds": round(elapsed, 6),
        "mb_per_second": round(total / elapsed / 1e6, 1),
        "crc_ok": crc_ok,
        "sendfile_sends": counters["sendfile_sends"],
        "sendfile_bytes": counters["sendfile_bytes"],
        "fallback_sends": counters["fallback_sends"],
        "buffer_pool_hit_rate": round(pool["hit_rate"], 4),
        "buffer_pool_hits": pool["hits"] - pool0["hits"],
    }


def run_put_phase(writers: int, files_per_writer: int,
                  file_bytes: int) -> dict:
    """Concurrent puts into a durable appliance; returns throughput and
    the journal's group-commit figures."""
    from repro.client.chirp import ChirpClient
    from repro.nest.config import NestConfig
    from repro.nest.server import NestServer

    payload = _payload(file_bytes)
    with tempfile.TemporaryDirectory(prefix="nest-xferbench-") as root:
        # A small group-commit dally lets concurrent appenders pile
        # onto each flush: on hardware where fsync is nearly free the
        # batching would otherwise never get a chance to form.
        config = NestConfig(name="bench-put", protocols=("chirp",),
                            state_dir=os.path.join(root, "state"),
                            snapshot_every=0,
                            journal_batch_delay=0.002)
        with NestServer(config) as server:
            host, port = server.endpoint("chirp")
            barrier = threading.Barrier(writers + 1)
            errors: list[BaseException] = []

            def writer(w: int) -> None:
                client = ChirpClient(host, port)
                try:
                    barrier.wait()
                    for i in range(files_per_writer):
                        client.put(f"/w{w}-f{i}.dat", payload)
                except BaseException as exc:  # noqa: BLE001 - reported
                    errors.append(exc)
                finally:
                    client.close()

            threads = [threading.Thread(target=writer, args=(w,))
                       for w in range(writers)]
            for t in threads:
                t.start()
            barrier.wait()
            t0 = time.perf_counter()
            for t in threads:
                t.join(timeout=120)
            elapsed = time.perf_counter() - t0
            if errors:
                raise errors[0]
            journal = server.durability.journal
            fsyncs = journal.fsync_count
            records = journal.records_appended
    puts = writers * files_per_writer
    total = puts * file_bytes
    return {
        "writers": writers,
        "puts": puts,
        "file_bytes": file_bytes,
        "bytes": total,
        "seconds": round(elapsed, 6),
        "mb_per_second": round(total / elapsed / 1e6, 1),
        "journal_records": records,
        "fsyncs": fsyncs,
        "fsyncs_per_record": round(fsyncs / records, 4) if records else 0.0,
    }


def _check_sane(record: dict) -> None:
    """Counter sanity (the smoke lane's contract): integrity held, the
    fast path actually ran, and the journal batched.  No timing
    thresholds -- wall-clock numbers are data, not assertions."""
    get, put = record["get"], record["put"]
    if not get["crc_ok"]:
        raise AssertionError("GET payload failed CRC verification")
    if get["sendfile_sends"] + get["fallback_sends"] <= 0:
        raise AssertionError("no transfer quanta counted on the GET path")
    if not 0.0 <= get["buffer_pool_hit_rate"] <= 1.0:
        raise AssertionError(
            f"buffer pool hit rate insane: {get['buffer_pool_hit_rate']}")
    if put["journal_records"] < 2 * put["puts"]:
        raise AssertionError(
            f"{put['puts']} puts journaled only "
            f"{put['journal_records']} records")
    if not 0 < put["fsyncs"] <= put["journal_records"]:
        raise AssertionError(
            f"fsync count insane: {put['fsyncs']} for "
            f"{put['journal_records']} records")


def run(smoke: bool = False, label: str = "",
        history_path: str = HISTORY_PATH,
        record_history: bool | None = None) -> dict:
    """Run both phases; append to the trajectory unless smoking."""
    writers, per_writer, put_bytes, get_files, get_bytes = (
        SMOKE_SIZES if smoke else FULL_SIZES)
    record = {
        "bench": "transfer",
        "label": label or ("smoke" if smoke else "zero-copy"),
        "smoke": smoke,
        "get": run_get_phase(get_files, get_bytes),
        "put": run_put_phase(writers, per_writer, put_bytes),
    }
    record.update(_environment_stamp())
    _check_sane(record)
    if record_history is None:
        record_history = not smoke
    if record_history:
        append_record(history_path, record)
    return record


def render(record: dict) -> str:
    get, put = record["get"], record["put"]
    lines = [
        f"GET : {get['mb_per_second']:8.1f} MB/s  "
        f"({get['files']} x {get['file_bytes']} B in {get['seconds']:.3f}s, "
        f"crc {'ok' if get['crc_ok'] else 'MISMATCH'})",
        f"      {get['sendfile_sends']} sendfile / "
        f"{get['fallback_sends']} fallback sends, "
        f"buffer-pool hit rate {get['buffer_pool_hit_rate']:.0%}",
        f"PUT : {put['mb_per_second']:8.1f} MB/s  "
        f"({put['puts']} puts by {put['writers']} writers in "
        f"{put['seconds']:.3f}s)",
        f"      {put['fsyncs']} fsyncs / {put['journal_records']} journal "
        f"records = {put['fsyncs_per_record']:.3f} fsyncs per record",
    ]
    return "\n".join(lines)
