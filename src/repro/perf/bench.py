"""Wall-clock benchmark trajectory: kernel microbench + figure benches.

Every run appends one labelled record to a JSON history file
(``BENCH_kernel.json`` / ``BENCH_figures.json`` at the repo root by
default), so the repository carries its own performance trajectory:
later PRs compare their records against earlier ones to prove a win or
catch a regression.

The figure records also store the regenerated figure numbers, which is
how the "optimizations must not change simulated results" invariant is
checked across history.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from typing import Any, Callable

from repro.perf.counters import KernelCounters
from repro.perf.timer import WallClockTimer
from repro.perf.workloads import kernel_microbench_workload

#: All figure benchmarks of the trajectory, in paper order.
FIGURES = ("fig3", "fig4", "fig5", "fig6")


def _environment_stamp() -> dict:
    return {
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def append_record(path: str, record: dict) -> dict:
    """Append ``record`` to the JSON history at ``path`` (created on
    first use); returns the full history document."""
    doc = {"schema": 1, "runs": []}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                doc = loaded
        except (OSError, ValueError):
            pass  # unreadable history: start a fresh document
    doc["runs"].append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# kernel microbenchmark
# ----------------------------------------------------------------------
def run_kernel_bench(n_processes: int = 200, steps: int = 50) -> dict:
    """Run the pure-kernel microbenchmark once; returns its record."""
    with WallClockTimer() as timer:
        env = kernel_microbench_workload(n_processes=n_processes, steps=steps)
    counters = KernelCounters.snapshot(env)
    processed = counters.events_processed + counters.direct_resumes
    return {
        "bench": "kernel_microbench",
        "n_processes": n_processes,
        "steps": steps,
        "wall_seconds": round(timer.elapsed, 6),
        "events_per_second": (
            round(processed / timer.elapsed) if timer.elapsed > 0 else None
        ),
        "counters": counters.__dict__ | {"pool_hit_rate": round(counters.pool_hit_rate, 4)},
    }


# ----------------------------------------------------------------------
# figure benchmarks
# ----------------------------------------------------------------------
def _summarize_fig3(result: Any) -> dict:
    return {
        "single_nest": {k: round(v, 3) for k, v in result.single_nest.items()},
        "single_native": {k: round(v, 3) for k, v in result.single_native.items()},
        "mixed_nest": {k: round(v, 3) for k, v in result.mixed_nest.items()},
        "mixed_jbos": {k: round(v, 3) for k, v in result.mixed_jbos.items()},
        "mixed_nest_total": round(result.mixed_nest_total, 3),
        "mixed_jbos_total": round(result.mixed_jbos_total, 3),
    }


def _summarize_fig4(result: Any) -> dict:
    return {
        row.label: {
            "total": round(row.total_mbps, 3),
            "per_protocol": {k: round(v, 3)
                             for k, v in row.per_protocol_mbps.items()},
            "fairness": round(row.fairness, 4) if row.fairness is not None else None,
        }
        for row in result.rows
    }


def _summarize_fig5(result: Any) -> dict:
    return {
        "solaris_1kb_latency_ms": {
            k: round(m.avg_latency_ms, 4) for k, m in result.solaris_1kb.items()
        },
        "linux_10mb_mbps": {
            k: round(m.bandwidth_mbps, 3) for k, m in result.linux_10mb.items()
        },
    }


def _summarize_fig6(result: Any) -> dict:
    return {
        "disabled_mbps": {str(k): round(v, 3)
                          for k, v in result.disabled_mbps.items()},
        "enabled_mbps": {str(k): round(v, 3)
                         for k, v in result.enabled_mbps.items()},
        "worst_case_ratio": round(result.worst_case_ratio(), 4),
    }


_SUMMARIZERS: dict[str, Callable[[Any], dict]] = {
    "fig3": _summarize_fig3,
    "fig4": _summarize_fig4,
    "fig5": _summarize_fig5,
    "fig6": _summarize_fig6,
}


def run_figure_bench(figures: tuple[str, ...] = FIGURES) -> dict:
    """Time regenerating each figure; returns the trajectory record."""
    import importlib

    record: dict = {"bench": "figures", "figures": {}}
    total = 0.0
    for name in figures:
        mod = importlib.import_module(f"repro.bench.{name}")
        with WallClockTimer() as timer:
            result = mod.run()
        total += timer.elapsed
        record["figures"][name] = {
            "wall_seconds": round(timer.elapsed, 3),
            "numbers": _SUMMARIZERS[name](result),
        }
    record["total_wall_seconds"] = round(total, 3)
    return record


def record_kernel(path: str = "BENCH_kernel.json", label: str = "",
                  n_processes: int = 200, steps: int = 50) -> dict:
    """Run the kernel microbench and append it to the trajectory."""
    record = run_kernel_bench(n_processes=n_processes, steps=steps)
    record["label"] = label
    record.update(_environment_stamp())
    append_record(path, record)
    return record


def record_figures(path: str = "BENCH_figures.json", label: str = "",
                   figures: tuple[str, ...] = FIGURES) -> dict:
    """Run the figure benches and append them to the trajectory."""
    record = run_figure_bench(figures)
    record["label"] = label
    record.update(_environment_stamp())
    append_record(path, record)
    return record
