"""Wall-clock timing for benchmarks.

Simulated time is free; the perf trajectory cares about how much *real*
time the kernel burns regenerating it.  :class:`WallClockTimer` is a
re-entrant-friendly context manager around ``time.perf_counter``.
"""

from __future__ import annotations

import time


class WallClockTimer:
    """Measure elapsed wall-clock seconds around a block.

    ::

        with WallClockTimer() as t:
            fig3.run()
        console(f"{t.elapsed:.3f}s")

    The timer can be reused; each ``with`` block restarts it, and
    ``elapsed`` reads the last completed (or still-running) interval.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "WallClockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._elapsed = time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds of the last completed interval (live while running)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed
