"""Snapshots of the hot-path counters kept by kernel, link, and gate.

The counted quantities live as plain integer attributes on the counted
objects themselves (an attribute increment is the cheapest thing the
hot path can afford); this module only *reads* them.  Every read uses
``getattr`` with a zero default so the snapshot code also works against
kernels that predate a given counter.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from repro.sim.core import Environment


@dataclass
class KernelCounters:
    """Event-kernel counters for one :class:`Environment`."""

    events_scheduled: int = 0
    events_processed: int = 0
    direct_resumes: int = 0
    timeouts_created: int = 0
    timeouts_reused: int = 0
    heap_peak: int = 0

    @classmethod
    def snapshot(cls, env: Environment) -> "KernelCounters":
        return cls(
            events_scheduled=getattr(env, "events_scheduled", 0),
            events_processed=getattr(env, "events_processed", 0),
            direct_resumes=getattr(env, "direct_resumes", 0),
            timeouts_created=getattr(env, "timeouts_created", 0),
            timeouts_reused=getattr(env, "timeouts_reused", 0),
            heap_peak=getattr(env, "heap_peak", 0),
        )

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of timeouts served from the free-list pool."""
        total = self.timeouts_created + self.timeouts_reused
        return self.timeouts_reused / total if total else 0.0


@dataclass
class LinkCounters:
    """Counters for one :class:`~repro.models.network.FairShareLink`."""

    name: str = "link"
    reallocations: int = 0
    alloc_cache_hits: int = 0
    active_flows: int = 0
    bytes_delivered: float = 0.0

    @classmethod
    def snapshot(cls, link: Any) -> "LinkCounters":
        return cls(
            name=getattr(link, "name", "link"),
            reallocations=getattr(link, "reallocations", 0),
            alloc_cache_hits=getattr(link, "alloc_cache_hits", 0),
            active_flows=getattr(link, "active_flows", 0),
            bytes_delivered=getattr(link, "bytes_delivered", 0.0),
        )


@dataclass
class GateCounters:
    """Counters for one :class:`~repro.simnest.gate.PumpGate`."""

    grants: int = 0
    arbitrations: int = 0

    @classmethod
    def snapshot(cls, gate: Any) -> "GateCounters":
        return cls(
            grants=getattr(gate, "grants", 0),
            arbitrations=getattr(gate, "arbitrations", 0),
        )


@dataclass
class PerfReport:
    """One combined counter snapshot, ready to serialize."""

    kernel: KernelCounters = field(default_factory=KernelCounters)
    links: list[LinkCounters] = field(default_factory=list)
    gates: list[GateCounters] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    def publish(self, registry: Any = None) -> None:
        """Re-home this snapshot onto a metrics registry (the process
        registry by default), so the sim hot-path counters appear in
        the same Prometheus exposition as the live stack's metrics.

        The counted objects keep their plain integer attributes -- the
        hot path never touches the registry; publishing is a one-shot
        copy at snapshot time.
        """
        from repro.obs.metrics import global_registry

        reg = registry if registry is not None else global_registry()
        kernel = reg.gauge(
            "repro_sim_kernel_counter",
            "Event-kernel hot-path counters (latest snapshot).",
            labelnames=("counter",))
        for name, value in asdict(self.kernel).items():
            kernel.set(value, counter=name)
        links = reg.gauge(
            "repro_sim_link_counter",
            "Fair-share link counters (latest snapshot).",
            labelnames=("link", "counter"))
        for link in self.links:
            for name, value in asdict(link).items():
                if name != "name":
                    links.set(value, link=link.name, counter=name)
        gates = reg.gauge(
            "repro_sim_gate_counter",
            "Pump-gate counters (latest snapshot).",
            labelnames=("gate", "counter"))
        for index, gate in enumerate(self.gates):
            for name, value in asdict(gate).items():
                gates.set(value, gate=str(index), counter=name)

    def render(self) -> str:
        """Human-readable counter table."""
        k = self.kernel
        lines = [
            "kernel counters",
            f"  events scheduled   {k.events_scheduled:>12}",
            f"  events processed   {k.events_processed:>12}",
            f"  direct resumes     {k.direct_resumes:>12}",
            f"  timeouts created   {k.timeouts_created:>12}",
            f"  timeouts reused    {k.timeouts_reused:>12}"
            f"  ({k.pool_hit_rate:.1%} pool hit rate)",
            f"  heap high-water    {k.heap_peak:>12}",
        ]
        for link in self.links:
            lines.append(
                f"link {link.name!r}: {link.reallocations} reallocations "
                f"({link.alloc_cache_hits} allocation-cache hits), "
                f"{link.bytes_delivered / 1e6:.1f} MB delivered"
            )
        for gate in self.gates:
            lines.append(
                f"gate: {gate.grants} grants, {gate.arbitrations} arbitrations"
            )
        return "\n".join(lines)


def collect(env: Environment, links: Iterable[Any] = (),
            gates: Iterable[Any] = ()) -> PerfReport:
    """Snapshot every counter of one simulation run."""
    return PerfReport(
        kernel=KernelCounters.snapshot(env),
        links=[LinkCounters.snapshot(l) for l in links],
        gates=[GateCounters.snapshot(g) for g in gates],
    )


def collect_server(server: Any) -> PerfReport:
    """Snapshot counters from a SimNest-like server (env, link, gate)."""
    return collect(server.env, links=[server.link], gates=[server.gate])
