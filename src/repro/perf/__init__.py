"""Performance instrumentation for the simulated substrate.

The perf layer has three jobs:

* **counters** -- cheap integer counters the kernel, link, and gate
  maintain on their hot paths (events scheduled/pooled, heap high-water
  mark, link reallocations, gate grants), snapshotted into plain
  dataclasses by :mod:`repro.perf.counters`;
* **timing** -- the :class:`~repro.perf.timer.WallClockTimer` context
  manager used by every benchmark;
* **trajectory** -- :mod:`repro.perf.bench` runs the kernel
  microbenchmark and the fig3--fig6 figure benchmarks and appends the
  results to ``BENCH_kernel.json`` / ``BENCH_figures.json``, so each PR
  from this one onward leaves a recorded wall-clock trajectory that can
  prove a regression or a win.

Run ``repro perf --help`` (or ``python -m repro.perf.smoke``) for the
command-line surface.
"""

from repro.perf.counters import (GateCounters, KernelCounters, LinkCounters,
                                 PerfReport, collect)
from repro.perf.timer import WallClockTimer

__all__ = [
    "GateCounters",
    "KernelCounters",
    "LinkCounters",
    "PerfReport",
    "WallClockTimer",
    "collect",
]
