"""Deterministic perf/regression workloads.

Two users:

* the **determinism regression test** replays
  :func:`traced_mixed_workload` and asserts the event-completion order
  and final byte counts are bit-identical to golden values captured
  from the seed kernel (the optimized kernel must not change a single
  simulated outcome);
* the **kernel microbenchmark** (:func:`kernel_microbench_workload`)
  exercises the kernel's hot machinery -- timeouts, process resumes,
  already-fired events, the fair-share link -- without the full server
  stack, so its events/second is a clean kernel-speed signal.

Everything here is closed-form deterministic: no randomness, no wall
clock leaks into simulated results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.models.platform import LINUX, PlatformProfile
from repro.nest.config import NestConfig
from repro.sim.core import Environment
from repro.simnest.server import SimNest
from repro.simnest.workload import _spawn_clients

#: Protocols of the fig3-style mixed trace (one whole-file streamer,
#: one capped streamer, one block protocol: every kernel path).
TRACE_PROTOCOLS = ("chirp", "gridftp", "http", "nfs")


@dataclass
class TraceResult:
    """Everything the determinism test compares against golden data."""

    #: (sim_time_repr, protocol, nbytes) per chunk moved, in completion
    #: order; ``repr`` of the float keeps the comparison bit-exact.
    records: list[tuple[str, str, int]] = field(default_factory=list)
    final_bytes: dict[str, int] = field(default_factory=dict)
    requests: dict[str, int] = field(default_factory=dict)
    latency_count: int = 0
    latency_sum_repr: str = "0.0"
    end_time_repr: str = "0.0"

    def sha256(self) -> str:
        """Digest of the full completion-order trace."""
        h = hashlib.sha256()
        for when, proto, nbytes in self.records:
            h.update(f"{when}|{proto}|{nbytes}\n".encode())
        return h.hexdigest()

    def to_golden(self, head: int = 20) -> dict:
        """The JSON payload stored as the golden file."""
        return {
            "n_records": len(self.records),
            "trace_sha256": self.sha256(),
            "head": [list(r) for r in self.records[:head]],
            "final_bytes": self.final_bytes,
            "requests": self.requests,
            "latency_count": self.latency_count,
            "latency_sum_repr": self.latency_sum_repr,
            "end_time_repr": self.end_time_repr,
        }


def traced_mixed_workload(
    platform: PlatformProfile = LINUX,
    horizon: float = 0.6,
    n_clients: int = 2,
    file_mb: int = 1,
    return_server: bool = False,
):
    """Run the fig3-style mixed workload, recording every chunk moved.

    The per-chunk ``stats.moved`` stream is a faithful proxy for the
    kernel's event-completion order: each record is emitted when one
    scheduling unit of data finishes its service cycle, so any change
    in event ordering, timing arithmetic, or tie-breaking shows up as a
    diverging trace.
    """
    env = Environment()
    server = SimNest(env, platform, NestConfig(scheduling="fcfs"))
    result = TraceResult()

    stats = server.stats
    original_moved = type(stats).moved

    def recording_moved(protocol: str, nbytes: int) -> None:
        result.records.append((repr(env.now), protocol, nbytes))
        original_moved(stats, protocol, nbytes)

    stats.moved = recording_moved
    _spawn_clients(
        env,
        get_server=lambda _p: server,
        get_cap=lambda _p: None,
        protocols=list(TRACE_PROTOCOLS),
        n_clients=n_clients,
        file_bytes=file_mb * 1_000_000,
        files_per_client=10_000,
    )
    env.run(until=horizon)
    result.final_bytes = dict(sorted(stats.progress_by_protocol.items()))
    result.requests = dict(sorted(stats.requests_by_protocol.items()))
    result.latency_count = len(stats.latencies)
    result.latency_sum_repr = repr(sum(stats.latencies))
    result.end_time_repr = repr(env.now)
    if return_server:
        return result, server
    return result


def kernel_microbench_workload(
    n_processes: int = 200,
    steps: int = 50,
    env: Environment | None = None,
) -> Environment:
    """A pure-kernel stress mix: timeouts, waits on shared events,
    already-fired events, interrupts, and a fair-share link.

    Returns the finished environment so callers can read its counters.
    """
    from repro.models.network import FairShareLink

    env = env or Environment()
    link = FairShareLink(env, capacity=1e6, name="bench-link")
    beat = env.event()
    last_fired = None

    def metronome():
        nonlocal beat, last_fired
        for _ in range(steps):
            yield env.timeout(1.0)
            last_fired, beat = beat, env.event()
            last_fired.succeed()

    def worker(i: int):
        for s in range(steps):
            # A chain of small timeouts (the pooled fast path).
            yield env.timeout(0.1 + (i % 7) * 0.01)
            yield env.timeout(0.05)
            if i % 3 == 0:
                # Wait on the shared beat event.
                yield beat
            elif i % 3 == 1 and last_fired is not None:
                # Yield an event that has already fired: the kernel's
                # direct-resume (was: bridge-event) path.
                yield last_fired
            if i % 5 == 0:
                yield link.transfer(1000.0 + i, cap=5e4)

    def interrupter(victim):
        yield env.timeout(steps / 2)
        if victim.is_alive:
            victim.interrupt("bench")

    env.process(metronome(), name="metronome")
    victims = []
    for i in range(n_processes):
        def patient(i=i):
            try:
                yield env.timeout(10 * steps)
            except Exception:
                yield env.timeout(0.5)

        env.process(worker(i), name=f"worker-{i}")
        if i % 50 == 0:
            v = env.process(patient(), name=f"patient-{i}")
            victims.append(v)
            env.process(interrupter(v), name=f"interrupter-{i}")
    env.run()
    return env
