"""Live concurrency benchmark: how many connections one NeST holds.

The paper's Fig. 5 point made concrete on real sockets: ramp up N
concurrent localhost Chirp connections against (a) the classic
thread-per-connection server and (b) the event-driven server, issue a
``stat`` round-trip on every connection while *all* of them stay open,
then sweep every held connection again to prove each one is still
being served.  Each model's record captures the connection target, the
error count (the contract: zero), ramp and sweep wall-clock, and the
process's thread count at full load -- the architectural signature:
thread-per-connection needs ~one thread per held connection, the event
path holds thousands of connections on a fixed worker pool.

The thread-per-connection target is deliberately far below the event
target.  That asymmetry *is* the result -- a 5,000-thread ramp would
prove nothing except that thread stacks are expensive -- and the
baseline entry in ``BENCH_concurrency.json`` records the threaded
architecture's shape at a load it can reasonably carry.

``--smoke`` (the verify lane) keeps the same two-model shape at tiny
connection counts, asserts the counters (zero errors, the thread-count
signatures), and leaves the trajectory file alone.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.perf.bench import _environment_stamp, append_record

HISTORY_PATH = "BENCH_concurrency.json"

#: Per-model concurrent-connection targets.
FULL_TARGETS = {"threaded": 512, "events": 5000}
SMOKE_TARGETS = {"threaded": 32, "events": 96}


def _stat_roundtrip(sock: socket.socket, buf: bytearray) -> bool:
    """One raw ``stat /`` exchange; True when the reply line is ok.

    Raw sockets on purpose: a ChirpClient per connection would be
    fine, but the bench's client side must stay so cheap that the
    measured ceiling is the *server's*.
    """
    sock.sendall(b"stat /\r\n")
    n = 0
    while True:
        got = sock.recv_into(memoryview(buf)[n:], len(buf) - n)
        if not got:
            return False
        n += got
        if buf[n - 1] == 0x0A:  # reply is exactly one LF-terminated line
            return bytes(buf[:2]) == b"ok"
        if n >= len(buf):
            return False


def run_model(model: str, connections: int) -> dict:
    """Hold ``connections`` concurrent connections against one model."""
    from repro.nest.config import NestConfig
    from repro.nest.server import NestServer

    config = NestConfig(
        name=f"bench-{model}", protocols=("chirp",),
        concurrency_server="events" if model == "events" else "threaded",
        management=False)
    socks: list[socket.socket] = []
    errors = 0
    buf = bytearray(4096)
    with NestServer(config) as server:
        host, port = server.endpoint("chirp")
        t0 = time.perf_counter()
        for _ in range(connections):
            try:
                sock = socket.create_connection((host, port), timeout=10.0)
                sock.settimeout(10.0)
                if not _stat_roundtrip(sock, buf):
                    errors += 1
                socks.append(sock)
            except OSError:
                errors += 1
        ramp_seconds = time.perf_counter() - t0
        # Full load: every connection open and served at least once.
        peak_threads = threading.active_count()
        held = server.active_connections()
        t1 = time.perf_counter()
        for sock in socks:
            try:
                if not _stat_roundtrip(sock, buf):
                    errors += 1
            except OSError:
                errors += 1
        sweep_seconds = time.perf_counter() - t1
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
    requests = 2 * len(socks)
    elapsed = ramp_seconds + sweep_seconds
    return {
        "model": model,
        "target": connections,
        "connections": len(socks),
        "held_connections": held,
        "errors": errors,
        "ramp_seconds": round(ramp_seconds, 6),
        "sweep_seconds": round(sweep_seconds, 6),
        "requests": requests,
        "requests_per_second": round(requests / elapsed, 1) if elapsed else 0.0,
        "peak_threads": peak_threads,
    }


def _check_sane(record: dict) -> None:
    """Counter/shape sanity (the smoke lane's contract): zero errors,
    every targeted connection held concurrently, and each model shows
    its architectural thread signature.  No timing thresholds."""
    threaded, events = record["threaded"], record["events"]
    for entry in (threaded, events):
        if entry["errors"]:
            raise AssertionError(
                f"{entry['model']}: {entry['errors']} request errors")
        if entry["connections"] != entry["target"]:
            raise AssertionError(
                f"{entry['model']}: opened {entry['connections']} of "
                f"{entry['target']} connections")
        if entry["held_connections"] < entry["target"]:
            raise AssertionError(
                f"{entry['model']}: held only {entry['held_connections']} "
                f"of {entry['target']} connections concurrently")
    # Thread-per-connection: at least one live thread per held conn.
    if threaded["peak_threads"] < threaded["connections"]:
        raise AssertionError(
            f"threaded path shows {threaded['peak_threads']} threads for "
            f"{threaded['connections']} connections -- not "
            "thread-per-connection?")
    # Event path: the whole point -- thread count independent of (and
    # far below) the held-connection count.
    if events["peak_threads"] >= events["connections"] / 2:
        raise AssertionError(
            f"event path used {events['peak_threads']} threads for "
            f"{events['connections']} connections -- not event-driven?")


def run(smoke: bool = False, label: str = "",
        connections: int | None = None,
        history_path: str = HISTORY_PATH,
        record_history: bool | None = None) -> dict:
    """Both models back to back; append to the trajectory unless
    smoking.  ``connections`` overrides the *event* target (the
    threaded baseline keeps its own scale)."""
    targets = dict(SMOKE_TARGETS if smoke else FULL_TARGETS)
    if connections:
        targets["events"] = connections
    record = {
        "bench": "concurrency",
        "label": label or ("smoke" if smoke else "event-core"),
        "smoke": smoke,
        "threaded": run_model("threaded", targets["threaded"]),
        "events": run_model("events", targets["events"]),
    }
    record.update(_environment_stamp())
    _check_sane(record)
    if record_history is None:
        record_history = not smoke
    if record_history:
        append_record(history_path, record)
    return record


def render(record: dict) -> str:
    lines = []
    for key in ("threaded", "events"):
        e = record[key]
        lines.append(
            f"{e['model']:<9} {e['connections']:6d} concurrent conns "
            f"({e['errors']} errors) ramp {e['ramp_seconds']:.3f}s, "
            f"sweep {e['sweep_seconds']:.3f}s, "
            f"{e['requests_per_second']:.0f} req/s, "
            f"{e['peak_threads']} threads at peak")
    t, ev = record["threaded"], record["events"]
    if t["connections"]:
        lines.append(
            f"event path held {ev['connections'] / t['connections']:.1f}x "
            f"the connections on "
            f"{ev['peak_threads'] / max(t['peak_threads'], 1):.2f}x "
            f"the threads")
    return "\n".join(lines)
