"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures to exercise its discussion
sections: cache-aware scheduling (section 4.2), the non-work-conserving
stride variant (section 7.2's future work), NeST-managed versus
quota-backed lot enforcement (sections 5 and 7.4), and the Apache
mod_throttle comparison (section 4.2's related-work argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.fairness import jains_fairness, proportional_shares
from repro.bench.fig6 import measure_write
from repro.models.platform import LINUX, PlatformProfile
from repro.nest.config import NestConfig
from repro.sim.core import Environment
from repro.simnest.clients import ClientLog, whole_file_client
from repro.simnest.server import SimNest
from repro.simnest.workload import run_mixed_protocols

MB = 1_000_000


# ---------------------------------------------------------------------------
# 1. cache-aware scheduling vs FIFO
# ---------------------------------------------------------------------------


@dataclass
class CacheAwareResult:
    """Mean response times and throughput under both schedulers."""

    fifo_mean_response: float = 0.0
    cache_aware_mean_response: float = 0.0
    fifo_throughput_mbps: float = 0.0
    cache_aware_throughput_mbps: float = 0.0
    #: mean response of the *cached* requests only (the SJF winners)
    fifo_cached_response: float = 0.0
    cache_aware_cached_response: float = 0.0


def _cache_mix_run(policy: str, platform: PlatformProfile,
                   n_cached: int = 18, n_uncached: int = 18,
                   file_bytes: int = 10 * MB) -> tuple[float, float, float]:
    """One burst of cached+uncached requests under ``policy``.

    The cached working set nearly fills the buffer cache, so under FIFO
    the cold streams' reads evict cached files *before they are served*
    -- turning hits into misses.  Cache-aware scheduling serves them
    first, which is exactly the paper's reduced-disk-contention
    throughput argument.

    Returns (mean response, mean cached-only response, throughput MB/s).
    """
    env = Environment()
    cfg = NestConfig(scheduling=policy, concurrency="threads",
                     transfer_workers=4)
    server = SimNest(env, platform, cfg)
    logs: list[ClientLog] = []
    cached_paths = set()
    for i in range(n_cached):
        path = f"/mix/cached-{i}"
        server.populate(path, file_bytes, resident=True)
        cached_paths.add(path)
        log = ClientLog(protocol="chirp")
        logs.append(log)
        env.process(whole_file_client(env, server, "chirp", [path], log))
    for i in range(n_uncached):
        path = f"/mix/cold-{i}"
        server.populate(path, file_bytes, resident=False)
        log = ClientLog(protocol="chirp")
        logs.append(log)
        env.process(whole_file_client(env, server, "chirp", [path], log))
    env.run()
    responses = [r.elapsed for log in logs for r in log.results]
    cached = [r.elapsed for log in logs for r in log.results
              if r.path in cached_paths]
    total_bytes = sum(r.nbytes for log in logs for r in log.results)
    makespan = max(r.end for log in logs for r in log.results)
    return (
        sum(responses) / len(responses),
        sum(cached) / len(cached),
        total_bytes / makespan / MB,
    )


def run_cache_aware(platform: PlatformProfile = LINUX) -> CacheAwareResult:
    """Cache-aware scheduling approximates SJF: cached requests finish
    first, improving mean response time; throughput should not
    regress."""
    result = CacheAwareResult()
    (result.fifo_mean_response, result.fifo_cached_response,
     result.fifo_throughput_mbps) = _cache_mix_run("fcfs", platform)
    (result.cache_aware_mean_response, result.cache_aware_cached_response,
     result.cache_aware_throughput_mbps) = _cache_mix_run("cache-aware", platform)
    return result


# ---------------------------------------------------------------------------
# 2. work-conserving vs non-work-conserving stride (1:1:1:4)
# ---------------------------------------------------------------------------


@dataclass
class IdlenessResult:
    """The NFS-heavy allocation under both stride variants."""

    work_conserving_fairness: float = 0.0
    anticipatory_fairness: float = 0.0
    work_conserving_total_mbps: float = 0.0
    anticipatory_total_mbps: float = 0.0


PROTOCOLS = ("chirp", "gridftp", "http", "nfs")
NFS_HEAVY = {"chirp": 1.0, "gridftp": 1.0, "http": 1.0, "nfs": 4.0}


def run_idleness(platform: PlatformProfile = LINUX,
                 horizon: float = 12.0) -> IdlenessResult:
    """Does anticipatory idling repair 1:1:1:4 fairness, at what cost?

    The paper proposes the non-work-conserving policy precisely for
    this case: "such a policy might pay a slight penalty in average
    response time for improved allocation control"."""
    result = IdlenessResult()
    for work_conserving in (True, False):
        cfg = NestConfig(scheduling="stride", shares=dict(NFS_HEAVY),
                         work_conserving=work_conserving)
        m = run_mixed_protocols(platform, "nest", config=cfg,
                                protocols=PROTOCOLS, horizon=horizon)
        per = [m.bandwidth_mbps(p) for p in PROTOCOLS]
        total = m.bandwidth_mbps()
        desired = proportional_shares(total, [NFS_HEAVY[p] for p in PROTOCOLS])
        fairness = jains_fairness(per, desired)
        if work_conserving:
            result.work_conserving_fairness = fairness
            result.work_conserving_total_mbps = total
        else:
            result.anticipatory_fairness = fairness
            result.anticipatory_total_mbps = total
    return result


# ---------------------------------------------------------------------------
# 3. lot enforcement: quota-backed vs NeST-managed
# ---------------------------------------------------------------------------


@dataclass
class EnforcementResult:
    """Write overhead and accounting precision of the two modes."""

    quota_write_mbps: float = 0.0
    nest_write_mbps: float = 0.0
    #: In quota mode a user can overfill one lot (the paper's caveat);
    #: NeST-managed enforcement rejects the overfill.
    quota_allows_overfill: bool = False
    nest_allows_overfill: bool = False


def run_enforcement(platform: PlatformProfile = LINUX,
                    write_mb: int = 200) -> EnforcementResult:
    """The paper's section 7.4 question: is NeST-managed enforcement
    "worth the performance improvement and the ability to distinguish
    lots correctly"?"""
    from repro.nest.lots import LotError, LotManager

    result = EnforcementResult()
    # Overhead: quota mode pays the kernel quota I/O (Fig. 6); NeST
    # accounting is user-level bookkeeping on the write path.
    result.quota_write_mbps = measure_write(write_mb * MB, True, platform)
    result.nest_write_mbps = measure_write(write_mb * MB, False, platform)
    # Accounting: two 100-byte lots, one 150-byte file.
    for mode in ("quota", "nest"):
        mgr = LotManager(10_000, clock=lambda: 0.0, enforcement=mode)
        mgr.create_lot("u", 100, duration=10)
        mgr.create_lot("u", 100, duration=10)
        try:
            mgr.charge("u", "/f", 150)
            first_lot = next(iter(mgr.lots.values()))
            overfilled = first_lot.used > first_lot.capacity
        except LotError:
            overfilled = False
        if mode == "quota":
            result.quota_allows_overfill = overfilled
        else:
            result.nest_allows_overfill = overfilled
    return result


# ---------------------------------------------------------------------------
# 4. per-user proportional shares (§4.2's stated extension)
# ---------------------------------------------------------------------------


@dataclass
class UserShareResult:
    """Two users on the same protocol under user-keyed stride shares."""

    vip_mbps: float = 0.0
    guest_mbps: float = 0.0
    requested_ratio: float = 3.0

    @property
    def achieved_ratio(self) -> float:
        return self.vip_mbps / self.guest_mbps if self.guest_mbps else 0.0


def run_user_shares(platform: PlatformProfile = LINUX,
                    ratio: float = 3.0,
                    horizon: float = 10.0,
                    warmup: float = 2.0) -> UserShareResult:
    """Same protocol, different users: the per-protocol scheduler is
    blind here, but ``share_by="user"`` stride can still split the
    bandwidth ``ratio`` : 1."""
    from repro.sim.core import Environment
    from repro.simnest.clients import whole_file_client
    from repro.simnest.server import SimNest

    env = Environment()
    # Fewer worker slots than jobs, so the scheduler (not free slots)
    # decides who pumps next.
    cfg = NestConfig(scheduling="stride", share_by="user",
                     shares={"vip": ratio, "guest": 1.0},
                     transfer_workers=4)
    server = SimNest(env, platform, cfg)
    for user in ("vip", "guest"):
        for i in range(4):
            path = f"/us/{user}-{i}"
            server.populate(path, 10 * MB, resident=True)
            log = ClientLog(protocol="http")
            env.process(whole_file_client(
                env, server, "http", [path] * 10_000, log, user=user))
    env.run(until=warmup)
    before = _bytes_by_user(server)
    env.run(until=horizon)
    after = _bytes_by_user(server)
    window = horizon - warmup
    return UserShareResult(
        vip_mbps=(after.get("vip", 0) - before.get("vip", 0)) / window / MB,
        guest_mbps=(after.get("guest", 0) - before.get("guest", 0)) / window / MB,
        requested_ratio=ratio,
    )


def _bytes_by_user(server) -> dict[str, int]:
    """Bytes delivered per user: completed requests plus the partial
    progress of jobs still in flight."""
    totals: dict[str, int] = dict(server.stats.bytes_by_user)
    for job in server.scheduler._jobs:
        totals[job.user] = totals.get(job.user, 0) + job.bytes_moved
    return totals


# ---------------------------------------------------------------------------
# 5. JBOS + Apache-style throttling cannot shape cross-protocol traffic
# ---------------------------------------------------------------------------


@dataclass
class ThrottleResult:
    """Mixed workload under JBOS with only the HTTP server throttled."""

    unthrottled: dict[str, float] = field(default_factory=dict)
    throttled: dict[str, float] = field(default_factory=dict)
    nfs_gain_mbps: float = 0.0  #: how much of the freed bandwidth NFS got


def run_throttle(platform: PlatformProfile = LINUX,
                 http_cap_mbps: float = 2.0,
                 horizon: float = 12.0) -> ThrottleResult:
    """Throttling Apache shapes only HTTP: the freed bandwidth goes to
    whoever TCP favours (the other whole-file protocols), not to a
    protocol an administrator might want to boost (NFS) -- NeST's
    cross-protocol stride has no JBOS equivalent."""
    result = ThrottleResult()
    base = run_mixed_protocols(platform, "jbos", protocols=PROTOCOLS,
                               horizon=horizon)
    capped = run_mixed_protocols(platform, "jbos", protocols=PROTOCOLS,
                                 horizon=horizon,
                                 throttle={"http": http_cap_mbps * MB})
    for p in PROTOCOLS:
        result.unthrottled[p] = base.bandwidth_mbps(p)
        result.throttled[p] = capped.bandwidth_mbps(p)
    result.nfs_gain_mbps = result.throttled["nfs"] - result.unthrottled["nfs"]
    return result



# ---------------------------------------------------------------------------
# 6. SEDA-style staged concurrency (§4.1's "more advanced architectures")
# ---------------------------------------------------------------------------


@dataclass
class SedaResult:
    """Mixed-overload behaviour of threads / events / seda."""

    bandwidth_mbps: dict[str, float] = field(default_factory=dict)
    small_latency_ms: dict[str, float] = field(default_factory=dict)


def run_seda_overload(platform: PlatformProfile = LINUX,
                      n_small: int = 300, n_big: int = 8,
                      horizon: float = 12.0, warmup: float = 3.0) -> SedaResult:
    """Hundreds of small cached requests plus a few disk-bound streams.

    The paper plans to investigate "more advanced concurrency
    architectures (e.g., SEDA ...)".  This ablation shows why: under
    mixed overload, thread-per-request pays growing scheduling costs,
    the event loop's small-request latency is poisoned by disk reads
    blocking the loop, and the staged design (fast path for cache hits,
    bounded disk stage for misses) keeps both metrics healthy.
    """
    from repro.sim.core import Environment
    from repro.simnest.server import SimNest

    result = SedaResult()
    for model in ("threads", "events", "seda"):
        env = Environment()
        cfg = NestConfig(concurrency=model, concurrency_models=(model,),
                         transfer_workers=1024, scheduling="fcfs",
                         capacity_bytes=50 * (1 << 30))
        server = SimNest(env, platform, cfg)
        small_logs: list[ClientLog] = []
        server.populate("/hot", 4096, resident=True)
        for _ in range(n_small):
            log = ClientLog(protocol="chirp")
            small_logs.append(log)
            env.process(whole_file_client(env, server, "chirp",
                                          ["/hot"] * 100_000, log))
        for c in range(n_big):
            paths = [f"/cold/{c}-{i}" for i in range(40)]
            for p in paths:
                server.populate(p, 10 * MB, resident=False)
            log = ClientLog(protocol="chirp")
            env.process(whole_file_client(env, server, "chirp", paths, log))
        env.run(until=warmup)
        before = sum(server.stats.progress_by_protocol.values())
        env.run(until=horizon)
        after = sum(server.stats.progress_by_protocol.values())
        lats = [r.elapsed for log in small_logs for r in log.results
                if r.start >= warmup]
        result.bandwidth_mbps[model] = (after - before) / (horizon - warmup) / MB
        result.small_latency_ms[model] = (
            sum(lats) / len(lats) * 1e3 if lats else float("nan")
        )
    return result

def report_all() -> str:  # pragma: no cover - convenience entry point
    """Run every ablation and render a combined report."""
    lines = []
    ca = run_cache_aware()
    lines += [
        "Ablation: cache-aware vs FIFO",
        f"  mean response  fifo={ca.fifo_mean_response:.2f}s "
        f"cache-aware={ca.cache_aware_mean_response:.2f}s",
        f"  cached-only    fifo={ca.fifo_cached_response:.2f}s "
        f"cache-aware={ca.cache_aware_cached_response:.2f}s",
        f"  throughput     fifo={ca.fifo_throughput_mbps:.1f} "
        f"cache-aware={ca.cache_aware_throughput_mbps:.1f} MB/s",
    ]
    idle = run_idleness()
    lines += [
        "Ablation: work-conserving vs anticipatory stride (1:1:1:4)",
        f"  fairness  wc={idle.work_conserving_fairness:.3f} "
        f"anticipatory={idle.anticipatory_fairness:.3f}",
        f"  total     wc={idle.work_conserving_total_mbps:.1f} "
        f"anticipatory={idle.anticipatory_total_mbps:.1f} MB/s",
    ]
    enf = run_enforcement()
    lines += [
        "Ablation: lot enforcement",
        f"  200MB write  quota={enf.quota_write_mbps:.1f} "
        f"nest-managed={enf.nest_write_mbps:.1f} MB/s",
        f"  overfill one lot allowed?  quota={enf.quota_allows_overfill} "
        f"nest={enf.nest_allows_overfill}",
    ]
    seda = run_seda_overload()
    lines += [
        "Ablation: SEDA staged concurrency under mixed overload",
        f"  bandwidth MB/s   { {k: round(v, 1) for k, v in seda.bandwidth_mbps.items()} }",
        f"  small-req ms     { {k: round(v, 1) for k, v in seda.small_latency_ms.items()} }",
    ]
    shares = run_user_shares()
    lines += [
        "Ablation: per-user proportional shares (3:1, same protocol)",
        f"  vip={shares.vip_mbps:.1f} guest={shares.guest_mbps:.1f} MB/s "
        f"achieved={shares.achieved_ratio:.2f}",
    ]
    thr = run_throttle()
    lines += [
        "Ablation: JBOS + Apache-style HTTP throttle",
        f"  unthrottled {thr.unthrottled}",
        f"  throttled   {thr.throttled}",
        f"  NFS gained  {thr.nfs_gain_mbps:.1f} MB/s of the freed bandwidth",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    from repro.obs.log import console

    console(report_all())
