"""Figure 3 -- Multiple Protocols.

"The experiment measures bandwidth when four clients request 10 MB
files for each protocol.  In the first four sets of bars, only a single
protocol is used within each workload (and thus only a single server
for JBOS).  In the last set of bars, the workload contains all
protocols."

Paper observations this module must reproduce:

* delivered bandwidth varies widely across protocols: Chirp and HTTP at
  the network peak (~35 MB/s), GridFTP and NFS at roughly half;
* NeST performs very close to each native server;
* in the mixed workload, total bandwidth is similar for NeST and JBOS
  (~33-35 MB/s), but NFS receives *less* under NeST's FIFO transfer
  manager than under JBOS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.platform import LINUX, PlatformProfile
from repro.nest.config import NestConfig
from repro.simnest.workload import run_mixed_protocols, run_single_protocol

#: The per-protocol bars, in the paper's order.
SINGLE_PROTOCOLS = ("chirp", "ftp", "gridftp", "http", "nfs")
#: The mixed-workload protocol set (matching Fig. 4's classes).
MIXED_PROTOCOLS = ("chirp", "gridftp", "http", "nfs")


@dataclass
class Fig3Result:
    """All bars of the figure, in MB/s."""

    single_nest: dict[str, float] = field(default_factory=dict)
    single_native: dict[str, float] = field(default_factory=dict)
    mixed_nest: dict[str, float] = field(default_factory=dict)
    mixed_jbos: dict[str, float] = field(default_factory=dict)
    mixed_nest_total: float = 0.0
    mixed_jbos_total: float = 0.0


def run(platform: PlatformProfile = LINUX, horizon: float = 12.0) -> Fig3Result:
    """Regenerate every bar of Figure 3."""
    result = Fig3Result()
    for proto in SINGLE_PROTOCOLS:
        result.single_nest[proto] = run_single_protocol(
            proto, platform, "nest", horizon=horizon
        ).bandwidth_mbps()
        result.single_native[proto] = run_single_protocol(
            proto, platform, "jbos", horizon=horizon
        ).bandwidth_mbps()
    nest_cfg = NestConfig(scheduling="fcfs")
    mixed_nest = run_mixed_protocols(
        platform, "nest", config=nest_cfg, protocols=MIXED_PROTOCOLS, horizon=horizon
    )
    mixed_jbos = run_mixed_protocols(
        platform, "jbos", protocols=MIXED_PROTOCOLS, horizon=horizon
    )
    for proto in MIXED_PROTOCOLS:
        result.mixed_nest[proto] = mixed_nest.bandwidth_mbps(proto)
        result.mixed_jbos[proto] = mixed_jbos.bandwidth_mbps(proto)
    result.mixed_nest_total = mixed_nest.bandwidth_mbps()
    result.mixed_jbos_total = mixed_jbos.bandwidth_mbps()
    return result


def report(result: Fig3Result) -> str:
    """Render the figure's bars as a table (MB/s)."""
    lines = ["Figure 3: Multiple Protocols (server bandwidth, MB/s)",
             f"{'workload':<12} {'NeST':>8} {'native/JBOS':>12}"]
    for proto in SINGLE_PROTOCOLS:
        lines.append(
            f"{proto:<12} {result.single_nest[proto]:>8.1f} "
            f"{result.single_native[proto]:>12.1f}"
        )
    lines.append(
        f"{'mixed total':<12} {result.mixed_nest_total:>8.1f} "
        f"{result.mixed_jbos_total:>12.1f}"
    )
    for proto in MIXED_PROTOCOLS:
        lines.append(
            f"{'  ' + proto:<12} {result.mixed_nest[proto]:>8.1f} "
            f"{result.mixed_jbos[proto]:>12.1f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - convenience entry point
    from repro.obs.log import console

    console(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
