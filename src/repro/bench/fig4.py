"""Figure 4 -- Proportional Protocol Scheduling.

Same workload as Fig. 3's mixed bars, NeST only, under the byte-based
stride scheduler at ratios (Chirp : GridFTP : HTTP : NFS) of FIFO,
1:1:1:1, 1:2:1:1, 3:1:2:1, and 1:1:1:4.

Paper observations this module must reproduce:

* the proportional-share scheduler pays a total-bandwidth penalty
  (~24-28 MB/s against FIFO's ~33 MB/s);
* Jain's fairness exceeds 0.98 for 1:1:1:1, 1:2:1:1 and 3:1:2:1;
* the NFS-heavy 1:1:1:4 allocation falls short (paper: 0.87), because
  a work-conserving scheduler cannot conjure NFS requests that the
  latency-bound clients have not issued.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.fairness import jains_fairness, proportional_shares
from repro.models.platform import LINUX, PlatformProfile
from repro.nest.config import NestConfig
from repro.simnest.workload import run_mixed_protocols

#: Scheduling configurations, in the paper's order.  None = FIFO.
CONFIGURATIONS: list[tuple[str, tuple[int, ...] | None]] = [
    ("FIFO", None),
    ("1:1:1:1", (1, 1, 1, 1)),
    ("1:2:1:1", (1, 2, 1, 1)),
    ("3:1:2:1", (3, 1, 2, 1)),
    ("1:1:1:4", (1, 1, 1, 4)),
]

PROTOCOLS = ("chirp", "gridftp", "http", "nfs")


@dataclass
class Fig4Row:
    """One set of bars: a scheduling configuration's outcome."""

    label: str
    total_mbps: float
    per_protocol_mbps: dict[str, float]
    desired_mbps: dict[str, float] | None  #: None for FIFO
    fairness: float | None  #: Jain's index; None for FIFO


@dataclass
class Fig4Result:
    rows: list[Fig4Row] = field(default_factory=list)

    def row(self, label: str) -> Fig4Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)


def run(
    platform: PlatformProfile = LINUX,
    horizon: float = 12.0,
    work_conserving: bool = True,
) -> Fig4Result:
    """Regenerate every set of bars of Figure 4.

    ``work_conserving=False`` runs the paper's proposed future-work
    policy instead (see the non-work-conserving ablation bench).
    """
    result = Fig4Result()
    for label, ratios in CONFIGURATIONS:
        if ratios is None:
            cfg = NestConfig(scheduling="fcfs")
        else:
            cfg = NestConfig(
                scheduling="stride",
                shares=dict(zip(PROTOCOLS, (float(r) for r in ratios))),
                work_conserving=work_conserving,
            )
        measured = run_mixed_protocols(
            platform, "nest", config=cfg, protocols=PROTOCOLS, horizon=horizon
        )
        per = {p: measured.bandwidth_mbps(p) for p in PROTOCOLS}
        total = measured.bandwidth_mbps()
        if ratios is None:
            result.rows.append(Fig4Row(label, total, per, None, None))
        else:
            desired = dict(
                zip(PROTOCOLS, proportional_shares(total, [float(r) for r in ratios]))
            )
            fairness = jains_fairness(
                [per[p] for p in PROTOCOLS], [desired[p] for p in PROTOCOLS]
            )
            result.rows.append(Fig4Row(label, total, per, desired, fairness))
    return result


def report(result: Fig4Result) -> str:
    """Render the figure as a table."""
    lines = ["Figure 4: Proportional Protocol Scheduling (MB/s)",
             f"{'config':<9} {'total':>6} "
             + " ".join(f"{p:>8}" for p in PROTOCOLS) + f" {'Jain':>6}"]
    for row in result.rows:
        fairness = f"{row.fairness:.3f}" if row.fairness is not None else "   -"
        lines.append(
            f"{row.label:<9} {row.total_mbps:>6.1f} "
            + " ".join(f"{row.per_protocol_mbps[p]:>8.1f}" for p in PROTOCOLS)
            + f" {fairness:>6}"
        )
        if row.desired_mbps is not None:
            lines.append(
                f"{'  desired':<9} {'':>6} "
                + " ".join(f"{row.desired_mbps[p]:>8.1f}" for p in PROTOCOLS)
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    from repro.obs.log import console

    console(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
