"""Jain's fairness index, as used in Fig. 4 (footnote 2 of the paper).

For N components with delivered allocations :math:`d_i` and desired
allocations :math:`w_i`, let :math:`x_i = d_i / w_i`.  Then

.. math:: F = \\frac{(\\sum_i x_i)^2}{N \\sum_i x_i^2}

A value of 1 indicates an ideal allocation; lower values indicate
skew.  [Chiu & Jain 1989]
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def jains_fairness(delivered: Sequence[float], desired: Sequence[float]) -> float:
    """Jain's index of how well ``delivered`` matches ``desired``.

    Raises ValueError on mismatched lengths or non-positive desired
    shares; a zero delivered allocation is legal (it just hurts the
    index).
    """
    if len(delivered) != len(desired):
        raise ValueError("delivered and desired must have equal length")
    if len(delivered) == 0:
        raise ValueError("need at least one component")
    desired_arr = np.asarray(desired, dtype=float)
    if np.any(desired_arr <= 0):
        raise ValueError("desired shares must be positive")
    x = np.asarray(delivered, dtype=float) / desired_arr
    denom = len(x) * float(np.sum(x * x))
    if denom == 0:
        return 0.0
    return float(np.sum(x)) ** 2 / denom


def proportional_shares(total: float, ratios: Sequence[float]) -> list[float]:
    """Split ``total`` according to ``ratios`` (the figure's 'desired' lines)."""
    s = sum(ratios)
    if s <= 0:
        raise ValueError("ratios must sum to a positive value")
    return [total * r / s for r in ratios]
