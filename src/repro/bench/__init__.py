"""Experiment harness: one module per figure of the paper's evaluation.

Each module exposes a ``run()`` returning a structured result and a
``report()`` that prints the same rows/series the paper's figure shows.
The benchmarks under ``benchmarks/`` call these and assert the paper's
*shape* claims (who wins, by what factor, where crossovers fall).

========================  =====================================================
:mod:`repro.bench.fig3`   Multiple Protocols: NeST vs native servers (JBOS)
:mod:`repro.bench.fig4`   Proportional Protocol Scheduling (stride + Jain)
:mod:`repro.bench.fig5`   Adaptive Concurrency (Solaris latency, Linux bw)
:mod:`repro.bench.fig6`   Overhead of Lots (quota write penalty vs size)
:mod:`repro.bench.ablations`  design-choice ablations from DESIGN.md
========================  =====================================================
"""

from repro.bench.fairness import jains_fairness
from repro.bench import fig3, fig4, fig5, fig6, ablations

__all__ = ["jains_fairness", "fig3", "fig4", "fig5", "fig6", "ablations"]
