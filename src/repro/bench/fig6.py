"""Figure 6 -- Performance Overhead of Lots.

A single sequential write stream of 20..200 MB (step 20) against the
local filesystem, with the quota mechanism (NeST's lot implementation)
enabled and disabled.

Paper observations this module must reproduce:

* for small writes the cost of quotas is negligible;
* the cost "increases quickly with file size";
* in the worst case (long single sequential stream) write bandwidth
  drops by roughly 50 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.filesystem import FileSystemModel
from repro.models.platform import LINUX, PlatformProfile
from repro.sim.core import Environment

MB = 1_000_000

#: Write sizes along the figure's x axis, in MB.
WRITE_SIZES_MB = tuple(range(20, 201, 20))


@dataclass
class Fig6Result:
    """Two bandwidth series (MB/s) indexed by write size (MB)."""

    sizes_mb: tuple[int, ...] = WRITE_SIZES_MB
    disabled_mbps: dict[int, float] = field(default_factory=dict)
    enabled_mbps: dict[int, float] = field(default_factory=dict)

    def worst_case_ratio(self) -> float:
        """enabled/disabled at the largest write size."""
        largest = max(self.sizes_mb)
        return self.enabled_mbps[largest] / self.disabled_mbps[largest]


def measure_write(
    size_bytes: int,
    quotas_enabled: bool,
    platform: PlatformProfile = LINUX,
    chunk: int = 1 << 20,
) -> float:
    """Bandwidth (MB/s) of one sequential write stream, fsync at close."""
    env = Environment()
    fs = FileSystemModel(env, platform, quotas_enabled=quotas_enabled)
    fs.quotas.set_limit("writer", size_bytes * 2)
    fs.create("/fig6/stream", "writer")

    def writer():
        offset = 0
        while offset < size_bytes:
            n = min(chunk, size_bytes - offset)
            yield from fs.write("/fig6/stream", offset, n)
            offset += n
        yield from fs.sync("/fig6/stream")

    proc = env.process(writer())
    env.run(proc)
    return size_bytes / env.now / MB


def run(platform: PlatformProfile = LINUX) -> Fig6Result:
    """Regenerate both series of Figure 6."""
    result = Fig6Result()
    for size_mb in WRITE_SIZES_MB:
        size = size_mb * MB
        result.disabled_mbps[size_mb] = measure_write(size, False, platform)
        result.enabled_mbps[size_mb] = measure_write(size, True, platform)
    return result


def report(result: Fig6Result) -> str:
    """Render the two series as a table."""
    lines = ["Figure 6: Overhead of Lots (write bandwidth, MB/s)",
             f"{'size MB':>8} {'disabled':>9} {'enabled':>9} {'ratio':>6}"]
    for size_mb in result.sizes_mb:
        d = result.disabled_mbps[size_mb]
        e = result.enabled_mbps[size_mb]
        lines.append(f"{size_mb:>8} {d:>9.1f} {e:>9.1f} {e / d:>6.2f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    from repro.obs.log import console

    console(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
