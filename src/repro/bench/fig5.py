"""Figure 5 -- Adaptive Concurrency.

Left panel: Solaris platform, 1 KB in-cache requests, average request
latency under events / threads / adaptive (the event model wins, the
adaptive scheme lands between the two).

Right panel: Linux platform, 10 MB uncached (disk-bound) requests,
delivered bandwidth under the same three schemes (the thread model
wins, adaptive comes close but pays a visible adaptation cost).

The process model is disabled in both, exactly as in the paper ("the
process model is disabled in these experiments for the sake of
clarity"); a separate ablation turns it back on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.platform import LINUX, SOLARIS, PlatformProfile
from repro.nest.config import NestConfig
from repro.sim.core import Environment
from repro.simnest.clients import ClientLog, whole_file_client
from repro.simnest.server import SimNest

#: Concurrency schemes measured, in the paper's order.
SCHEMES = ("events", "threads", "adaptive")


@dataclass
class ConcurrencyMeasurement:
    """One bar: a scheme's latency and bandwidth plus the request mix."""

    scheme: str
    avg_latency_ms: float
    bandwidth_mbps: float
    model_mix: dict[str, int] = field(default_factory=dict)


@dataclass
class Fig5Result:
    solaris_1kb: dict[str, ConcurrencyMeasurement] = field(default_factory=dict)
    linux_10mb: dict[str, ConcurrencyMeasurement] = field(default_factory=dict)


def run_concurrency_workload(
    platform: PlatformProfile,
    file_bytes: int,
    scheme: str,
    resident: bool,
    n_clients: int = 4,
    files_per_client: int = 20_000,
    horizon: float = 8.0,
    warmup: float = 1.0,
    models: tuple[str, ...] = ("threads", "events"),
) -> ConcurrencyMeasurement:
    """Measure one scheme on one workload (steady-state window)."""
    env = Environment()
    cfg = NestConfig(
        concurrency=scheme, concurrency_models=models, scheduling="fcfs"
    )
    server = SimNest(env, platform, cfg)
    for c in range(n_clients):
        if resident:
            paths = [f"/fig5/f-{c}"] * files_per_client
            server.populate(paths[0], file_bytes, resident=True)
        else:
            paths = [f"/fig5/f-{c}-{i}" for i in range(files_per_client)]
            for p in paths:
                server.populate(p, file_bytes, resident=False)
        log = ClientLog(protocol="chirp")
        env.process(whole_file_client(env, server, "chirp", paths, log))
    env.run(until=warmup)
    bytes0 = sum(server.stats.progress_by_protocol.values())
    lat_index = len(server.stats.latencies)
    env.run(until=horizon)
    bytes1 = sum(server.stats.progress_by_protocol.values())
    window = horizon - warmup
    latencies = server.stats.latencies[lat_index:]
    avg_latency = (sum(latencies) / len(latencies)) if latencies else float("nan")
    return ConcurrencyMeasurement(
        scheme=scheme,
        avg_latency_ms=avg_latency * 1e3,
        bandwidth_mbps=(bytes1 - bytes0) / window / 1e6,
        model_mix=dict(server.stats.model_assignments),
    )


def run(
    solaris: PlatformProfile = SOLARIS,
    linux: PlatformProfile = LINUX,
    horizon_small: float = 8.0,
    horizon_large: float = 40.0,
) -> Fig5Result:
    """Regenerate both panels of Figure 5."""
    result = Fig5Result()
    for scheme in SCHEMES:
        result.solaris_1kb[scheme] = run_concurrency_workload(
            solaris, 1024, scheme, resident=True, horizon=horizon_small
        )
        result.linux_10mb[scheme] = run_concurrency_workload(
            linux, 10_000_000, scheme, resident=False,
            files_per_client=60, horizon=horizon_large, warmup=4.0,
        )
    return result


def report(result: Fig5Result) -> str:
    """Render both panels as tables."""
    lines = ["Figure 5: Adaptive Concurrency",
             "left: Solaris, 1 KB in-cache (avg time per request, ms)"]
    for scheme in SCHEMES:
        m = result.solaris_1kb[scheme]
        lines.append(f"  {scheme:<9} {m.avg_latency_ms:>6.2f} ms   mix={m.model_mix}")
    lines.append("right: Linux, 10 MB uncached (server bandwidth, MB/s)")
    for scheme in SCHEMES:
        m = result.linux_10mb[scheme]
        lines.append(f"  {scheme:<9} {m.bandwidth_mbps:>6.2f} MB/s mix={m.model_mix}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    from repro.obs.log import console

    console(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
