"""Placement: choose which appliances receive new replica copies.

Vazhkudai, Tuecke, and Foster's replica selection work ranks Globus
storage servers by predicted transfer performance; the paper's own
discovery story ranks NeSTs by their advertised ClassAds.  The policies
here consume exactly those ads, so "where should the next copy go?" is
answered from the same collector state the execution manager matches
against:

* :class:`RandomKPlacement` -- uniform seeded choice (the baseline
  replica-catalog behaviour);
* :class:`SpaceWeightedPlacement` -- seeded weighted choice by
  ``GrantableSpace``, i.e. lot-grantable free space, spreading copies
  toward the emptiest appliances;
* :class:`ThroughputWeightedPlacement` -- deterministic rank by the
  live-health ``ThroughputMBps`` attribute (observed performance, the
  PR 3 health feed), tie-broken by free space;
* :class:`LoadAwarePlacement` -- deterministic rank by *idleness*
  (shallowest ``QueueDepth`` first), the autoscaler's choice for
  shedding a flash crowd onto peers with headroom.

Every policy filters out sites advertising ``SloDegraded``: a peer
already burning its error budget never receives new copies.

A policy only *chooses*; :func:`reserve` then guarantees the space by
creating a **lot** on each chosen appliance over Chirp before any data
moves, exactly as the execution manager reserves space before staging
(Figure 2, step 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.classads import ClassAd
from repro.client.chirp import ChirpClient
from repro.client.errors import ClientError
from repro.nest.advertise import storage_request_ad, throughput_request_ad
from repro.nest.auth import Credential
from repro.obs.log import get_logger
from repro.protocols.common import PROTOCOL_NAMES

logger = get_logger(__name__)

__all__ = [
    "SiteInfo",
    "PlacementTarget",
    "PlacementPolicy",
    "RandomKPlacement",
    "SpaceWeightedPlacement",
    "ThroughputWeightedPlacement",
    "LoadAwarePlacement",
    "make_policy",
    "reserve",
    "throughput_ranked_sites",
]


@dataclass(frozen=True)
class SiteInfo:
    """One appliance's endpoints, extracted from its availability ad."""

    name: str
    host: str
    ports: dict[str, int] = field(hash=False)

    @classmethod
    def from_ad(cls, ad: ClassAd) -> "SiteInfo":
        ports: dict[str, int] = {}
        for proto in (*PROTOCOL_NAMES, "ibp", "mgmt"):
            value = ad.eval(f"{proto.capitalize()}Port")
            if isinstance(value, int) and not isinstance(value, bool):
                ports[proto] = value
        return cls(name=str(ad.eval("Name")), host=str(ad.eval("Host")),
                   ports=ports)


@dataclass
class PlacementTarget:
    """A chosen site with its space reservation."""

    site: SiteInfo
    lot_id: Optional[str] = None
    lot_capacity: int = 0


def _grantable(ad: ClassAd) -> float:
    value = ad.eval("GrantableSpace")
    return float(value) if isinstance(value, (int, float)) else 0.0


def _throughput(ad: ClassAd) -> float:
    value = ad.eval("ThroughputMBps")
    return float(value) if isinstance(value, (int, float)) else 0.0


class PlacementPolicy:
    """Base: query the collector for fitting sites, then choose K."""

    name = "base"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def candidates(self, collector, size: int,
                   exclude: Sequence[str] = ()) -> list[ClassAd]:
        """Storage ads that could hold a ``size``-byte replica, minus
        excluded sites (those already holding a copy) and minus sites
        advertising ``SloDegraded`` -- a peer burning its error budget
        must not be handed more load (``Collector.fastest`` already
        demotes them for reads; placement must skip them for writes)."""
        skip = set(exclude)
        request = storage_request_ad(max(int(size), 1), protocol="gridftp")
        return [ad for ad in collector.query(request)
                if str(ad.eval("Name")) not in skip
                and ad.eval("SloDegraded") is not True]

    def choose(self, candidates: list[ClassAd], k: int) -> list[ClassAd]:
        raise NotImplementedError

    def place(self, collector, size: int, k: int,
              exclude: Sequence[str] = ()) -> list[ClassAd]:
        """Choose up to ``k`` target sites for a new ``size``-byte copy."""
        if k <= 0:
            return []
        return self.choose(self.candidates(collector, size, exclude), k)


class RandomKPlacement(PlacementPolicy):
    """Uniform seeded sample of K fitting sites."""

    name = "random"

    def choose(self, candidates: list[ClassAd], k: int) -> list[ClassAd]:
        pool = list(candidates)
        self._rng.shuffle(pool)
        return pool[:k]


class SpaceWeightedPlacement(PlacementPolicy):
    """Seeded weighted sample (without replacement) by grantable space.

    An appliance with twice the lot-grantable free space is twice as
    likely to take the next copy, so the fleet fills evenly instead of
    hammering whichever site happens to sort first.
    """

    name = "space"

    def choose(self, candidates: list[ClassAd], k: int) -> list[ClassAd]:
        pool = list(candidates)
        chosen: list[ClassAd] = []
        while pool and len(chosen) < k:
            weights = [max(_grantable(ad), 1.0) for ad in pool]
            total = sum(weights)
            point = self._rng.random() * total
            acc = 0.0
            index = len(pool) - 1
            for i, w in enumerate(weights):
                acc += w
                if point < acc:
                    index = i
                    break
            chosen.append(pool.pop(index))
        return chosen


class ThroughputWeightedPlacement(PlacementPolicy):
    """Deterministic rank by measured throughput (PR 3 health attr).

    Prefers the appliance that is *demonstrably* moving data fastest
    right now -- the replica-selection signal of the related work --
    falling back to free space, then name, so the order is total.
    """

    name = "throughput"

    def choose(self, candidates: list[ClassAd], k: int) -> list[ClassAd]:
        ranked = sorted(
            candidates,
            key=lambda ad: (-_throughput(ad), -_grantable(ad),
                            str(ad.eval("Name"))),
        )
        return ranked[:k]


class LoadAwarePlacement(PlacementPolicy):
    """Deterministic rank by *idleness*: shallowest queue first.

    The autoscaler's policy: an overloaded appliance shedding a flash
    crowd wants the peer with the most headroom, not (as throughput
    ranking would pick) the peer already moving the most data -- under
    a flash crowd that is usually the overloaded node's busiest
    neighbour.  Ties break by measured throughput, then free space,
    then name.
    """

    name = "load"

    def choose(self, candidates: list[ClassAd], k: int) -> list[ClassAd]:
        def queue_depth(ad: ClassAd) -> float:
            value = ad.eval("QueueDepth")
            return float(value) if isinstance(value, (int, float)) else 0.0

        ranked = sorted(
            candidates,
            key=lambda ad: (queue_depth(ad), -_throughput(ad),
                            -_grantable(ad), str(ad.eval("Name"))),
        )
        return ranked[:k]


_POLICIES = {
    RandomKPlacement.name: RandomKPlacement,
    SpaceWeightedPlacement.name: SpaceWeightedPlacement,
    ThroughputWeightedPlacement.name: ThroughputWeightedPlacement,
    LoadAwarePlacement.name: LoadAwarePlacement,
}


def make_policy(spec: str, seed: int = 0) -> PlacementPolicy:
    """Policy by name: ``random``, ``space``, ``throughput``, or
    ``load``."""
    try:
        return _POLICIES[spec](seed=seed)
    except KeyError:
        raise ValueError(
            f"unknown placement policy {spec!r}; "
            f"choose from {sorted(_POLICIES)}") from None


def reserve(ads: Sequence[ClassAd], size: int, duration: float,
            credential: Credential, retry=None) -> list[PlacementTarget]:
    """Create a lot on each chosen site before any data moves.

    Returns the targets whose reservation succeeded (possibly fewer
    than asked -- a site may refuse if its grantable space changed
    since it advertised); the caller treats a shortfall as a deficit
    for the next repair pass, not an error.
    """
    targets: list[PlacementTarget] = []
    for ad in ads:
        site = SiteInfo.from_ad(ad)
        try:
            chirp = ChirpClient(site.host, site.ports["chirp"], retry=retry)
            try:
                chirp.authenticate(credential)
                lot = chirp.lot_create(max(int(size), 1), duration)
            finally:
                chirp.close()
        except (ClientError, OSError, KeyError) as exc:
            logger.warning("reserve: lot on %s failed: %s", site.name, exc)
            continue
        targets.append(PlacementTarget(site=site, lot_id=lot["lot_id"],
                                       lot_capacity=lot["capacity"]))
    return targets


def throughput_ranked_sites(collector, sites: Sequence[str]) -> list[str]:
    """Order ``sites`` by the collector's measured-throughput ranking.

    Reuses the same ``ThroughputMBps``-ranked query behind
    :meth:`repro.grid.discovery.Collector.fastest`; sites with no live
    ad (TTL-expired or withdrawn) are omitted entirely -- they are what
    the repair loop exists to replace, not read targets.
    """
    order = {str(ad.eval("Name")): i
             for i, ad in enumerate(collector.query(throughput_request_ad(0)))}
    live = [s for s in sites if s in order]
    live.sort(key=lambda s: (order[s], s))
    return live
