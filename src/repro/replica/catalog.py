"""The replica catalog: logical names -> physical replica locations.

Allcock et al.'s replica-management architecture pairs a *catalog*
(logical file name -> the storage systems holding a copy) with a
*selection* step that ranks those copies; NeST's contribution is that
each location is a discoverable appliance that already advertises into
a ClassAd collector.  :class:`ReplicaCatalog` is that catalog for a
fleet of NeSTs: every logical name maps to a set of per-site
:class:`Replica` records carrying the replica's lifecycle state

* ``copying`` -- a transfer to this site is in flight (not readable);
* ``valid``   -- the copy verified against the source checksum;
* ``suspect`` -- a transfer fault or dead-site signal implicates it;
  the repair loop re-verifies or re-replicates.

The catalog advertises one ``ReplicaSet`` ClassAd per logical name into
the same :class:`~repro.grid.discovery.Collector` the appliances
advertise into, so an execution manager can matchmake on
``ReplicaCount`` / ``Locations`` exactly as it matches on
``GrantableSpace`` -- "where can I run this job near a copy of its
input?" becomes a ClassAd query.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.classads import ClassAd
from repro.classads.parser import parse_expression
from repro.obs.metrics import MetricsRegistry, global_registry

__all__ = [
    "COPYING",
    "VALID",
    "SUSPECT",
    "Replica",
    "ReplicaCatalog",
    "replica_request_ad",
]

#: Replica lifecycle states.
COPYING = "copying"
VALID = "valid"
SUSPECT = "suspect"

_STATES = (COPYING, VALID, SUSPECT)


@dataclass
class Replica:
    """One physical copy of a logical file on one appliance."""

    site: str  #: the NeST's advertised Name
    path: str  #: path of the copy on that site
    state: str = COPYING
    size: int = 0
    checksum: Optional[int] = None  #: CRC32 (Chirp ``checksum`` verb)
    registered_at: float = 0.0
    state_changed_at: float = field(default=0.0, compare=False)

    def describe(self) -> dict[str, Any]:
        """JSON-able record (status rendering, tests)."""
        return {
            "site": self.site,
            "path": self.path,
            "state": self.state,
            "size": self.size,
            "checksum": self.checksum,
        }


class ReplicaCatalog:
    """Thread-safe mapping of logical names to replica locations."""

    def __init__(
        self,
        collector=None,
        clock: Callable[[], float] = time.time,
        registry: MetricsRegistry | None = None,
        ad_ttl: float | None = None,
    ):
        self.collector = collector
        self.clock = clock
        self.ad_ttl = ad_ttl
        self._lock = threading.Lock()
        #: logical name -> {site name -> Replica}
        self._sets: dict[str, dict[str, Replica]] = {}
        #: metadata-journal sink (see :mod:`repro.durability`); None
        #: keeps the catalog memory-only.
        self.journal: Callable[..., Any] | None = None
        reg = registry if registry is not None else global_registry()
        self._m_transitions = reg.counter(
            "replica_state_transitions_total",
            "Replica lifecycle transitions recorded by the catalog.",
            labelnames=("state",))
        reg.gauge_callback(
            "replica_logical_files", self._count_logicals,
            "Logical names tracked by the replica catalog.")
        reg.gauge_callback(
            "replica_valid_copies", self._count_valid,
            "Replica copies currently in the valid state.")

    # -- mutation ----------------------------------------------------------
    def _emit(self, rtype: str, **fields) -> None:
        if self.journal is not None:
            self.journal(rtype, **fields)

    def register(self, logical: str, site: str, path: str, *,
                 size: int = 0, state: str = COPYING) -> Replica:
        """Record a (new or replacing) replica of ``logical`` on ``site``."""
        if state not in _STATES:
            raise ValueError(f"unknown replica state {state!r}")
        now = self.clock()
        replica = Replica(site=site, path=path, state=state, size=size,
                          registered_at=now, state_changed_at=now)
        with self._lock:
            self._sets.setdefault(logical, {})[site] = replica
        self._emit("replica_register", logical=logical, site=site,
                   path=path, size=size, state=state)
        self._m_transitions.inc(state=state)
        self._readvertise(logical)
        return replica

    def _transition(self, logical: str, site: str, state: str,
                    checksum: Optional[int] = None,
                    size: Optional[int] = None) -> Replica:
        with self._lock:
            replica = self._sets.get(logical, {}).get(site)
            if replica is None:
                raise KeyError(f"no replica of {logical!r} on {site!r}")
            replica.state = state
            replica.state_changed_at = self.clock()
            if checksum is not None:
                replica.checksum = checksum
            if size is not None:
                replica.size = size
        self._emit("replica_state", logical=logical, site=site, state=state,
                   checksum=checksum, size=size)
        self._m_transitions.inc(state=state)
        self._readvertise(logical)
        return replica

    def mark_valid(self, logical: str, site: str,
                   checksum: Optional[int] = None,
                   size: Optional[int] = None) -> Replica:
        """The copy on ``site`` verified; it is now readable."""
        return self._transition(logical, site, VALID, checksum, size)

    def mark_suspect(self, logical: str, site: str) -> Replica:
        """A fault implicated the copy on ``site``; stop reading it."""
        return self._transition(logical, site, SUSPECT)

    def drop(self, logical: str, site: str) -> None:
        """Remove the record of ``logical``'s copy on ``site``."""
        with self._lock:
            replicas = self._sets.get(logical)
            if replicas is not None:
                replicas.pop(site, None)
                if not replicas:
                    del self._sets[logical]
        self._emit("replica_drop", logical=logical, site=site)
        self._readvertise(logical)

    def drop_site(self, site: str) -> int:
        """Remove every replica recorded on ``site`` (site decommission);
        returns how many were dropped."""
        touched: list[str] = []
        with self._lock:
            for logical, replicas in list(self._sets.items()):
                if site in replicas:
                    del replicas[site]
                    touched.append(logical)
                    if not replicas:
                        del self._sets[logical]
        for logical in touched:
            self._emit("replica_drop", logical=logical, site=site)
            self._readvertise(logical)
        return len(touched)

    # -- durability (snapshot + journal replay; see repro.durability) ------
    def serialize(self) -> dict[str, Any]:
        """Full catalog state, JSON-able, for compacted snapshots."""
        with self._lock:
            return {
                logical: [
                    {"site": r.site, "path": r.path, "state": r.state,
                     "size": r.size, "checksum": r.checksum,
                     "registered_at": r.registered_at}
                    for r in replicas.values()
                ]
                for logical, replicas in sorted(self._sets.items())
            }

    def restore(self, data: dict[str, Any]) -> None:
        """Replace catalog contents with a snapshot's (no ads emitted;
        recovery advertises once the whole catalog is rebuilt)."""
        with self._lock:
            self._sets.clear()
            for logical, replicas in data.items():
                for rec in replicas:
                    at = float(rec.get("registered_at", 0.0))
                    self._sets.setdefault(logical, {})[rec["site"]] = Replica(
                        site=rec["site"], path=rec.get("path", ""),
                        state=rec.get("state", COPYING),
                        size=int(rec.get("size", 0)),
                        checksum=rec.get("checksum"),
                        registered_at=at, state_changed_at=at)

    def apply_record(self, rec: dict[str, Any]) -> bool:
        """Apply one replayed journal record; returns whether the type
        was ours.  Never re-emits or advertises -- replay is silent."""
        rtype = rec.get("type")
        if rtype == "replica_register":
            at = self.clock()
            with self._lock:
                self._sets.setdefault(rec["logical"], {})[rec["site"]] = (
                    Replica(site=rec["site"], path=rec.get("path", ""),
                            state=rec.get("state", COPYING),
                            size=int(rec.get("size", 0)),
                            registered_at=at, state_changed_at=at))
            return True
        if rtype == "replica_state":
            with self._lock:
                replica = self._sets.get(rec["logical"], {}).get(rec["site"])
                if replica is not None:
                    replica.state = rec.get("state", replica.state)
                    if rec.get("checksum") is not None:
                        replica.checksum = rec["checksum"]
                    if rec.get("size") is not None:
                        replica.size = int(rec["size"])
            return True
        if rtype == "replica_drop":
            with self._lock:
                replicas = self._sets.get(rec["logical"])
                if replicas is not None:
                    replicas.pop(rec["site"], None)
                    if not replicas:
                        del self._sets[rec["logical"]]
            return True
        return False

    # -- queries -----------------------------------------------------------
    def logicals(self) -> list[str]:
        with self._lock:
            return sorted(self._sets)

    def locations(self, logical: str) -> list[Replica]:
        """Every recorded replica of ``logical`` (any state)."""
        with self._lock:
            return list(self._sets.get(logical, {}).values())

    def valid_locations(self, logical: str) -> list[Replica]:
        """Readable replicas only."""
        return [r for r in self.locations(logical) if r.state == VALID]

    def sites(self, logical: str) -> set[str]:
        """Sites holding any copy of ``logical`` -- placement must not
        put a second copy on any of these."""
        with self._lock:
            return set(self._sets.get(logical, {}))

    def replica_count(self, logical: str) -> int:
        return len(self.valid_locations(logical))

    def deficits(self, target: int) -> dict[str, int]:
        """Logical names short of ``target`` valid copies -> how many
        more each needs (the repair loop's worklist)."""
        out: dict[str, int] = {}
        for logical in self.logicals():
            missing = target - self.replica_count(logical)
            if missing > 0:
                out[logical] = missing
        return out

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """A JSON-able view of the whole catalog."""
        with self._lock:
            return {
                logical: [r.describe() for r in replicas.values()]
                for logical, replicas in sorted(self._sets.items())
            }

    def _count_logicals(self) -> float:
        with self._lock:
            return float(len(self._sets))

    def _count_valid(self) -> float:
        with self._lock:
            return float(sum(
                1 for replicas in self._sets.values()
                for r in replicas.values() if r.state == VALID))

    # -- advertisement ------------------------------------------------------
    def ad_for(self, logical: str) -> ClassAd:
        """This logical name's ``ReplicaSet`` ClassAd."""
        replicas = self.locations(logical)
        valid = [r for r in replicas if r.state == VALID]
        ad = ClassAd({
            "Type": "ReplicaSet",
            "Name": f"replica::{logical}",
            "LogicalName": logical,
            "ReplicaCount": len(valid),
            "Locations": sorted(r.site for r in valid),
            "AllLocations": sorted(r.site for r in replicas),
            "Size": max((r.size for r in valid), default=0),
        })
        ad["Requirements"] = parse_expression(
            'other.Type == "ReplicaQuery"')
        return ad

    def advertise(self, logical: str | None = None) -> None:
        """Publish ``ReplicaSet`` ads (one logical, or all of them)."""
        if self.collector is None:
            return
        targets = [logical] if logical is not None else self.logicals()
        for name in targets:
            if self.locations(name):
                self.collector.advertise(self.ad_for(name), ttl=self.ad_ttl)
            else:
                self.collector.withdraw(f"replica::{name}")

    def _readvertise(self, logical: str) -> None:
        """Keep the collector in sync after any mutation."""
        self.advertise(logical)


def replica_request_ad(logical: str | None = None,
                       min_replicas: int = 1) -> ClassAd:
    """A request ad an execution manager submits to find replica sets.

    Constrains to one logical name when given, requires at least
    ``min_replicas`` valid copies, and ranks by copy count (more
    replicas = more scheduling freedom).
    """
    requirements = (f'other.Type == "ReplicaSet" '
                    f"&& other.ReplicaCount >= my.MinReplicas")
    if logical is not None:
        requirements += f' && other.LogicalName == "{logical}"'
    ad = ClassAd({"Type": "ReplicaQuery", "MinReplicas": int(min_replicas)})
    ad["Requirements"] = parse_expression(requirements)
    ad["Rank"] = parse_expression("other.ReplicaCount")
    return ad
