"""Replica federation across a fleet of NeSTs.

The paper's discovery story (section 6) makes each appliance a
matchmakable Grid resource; this package builds on that to keep K
verified copies of every logical file spread over the fleet:

* :mod:`repro.replica.catalog` -- logical name -> replica locations,
  advertised as ``ReplicaSet`` ClassAds;
* :mod:`repro.replica.placement` -- who gets the next copy (random /
  space-weighted / throughput-weighted), with lot reservation;
* :mod:`repro.replica.replicator` -- third-party GridFTP fan-out,
  checksum verification, and the repair loop;
* :mod:`repro.replica.federation` -- the client that resolves logical
  names and fails over across replicas;
* :mod:`repro.replica.fleet` -- N live appliances packaged for tests
  and the CLI demo.
"""

from repro.replica.catalog import (
    COPYING,
    SUSPECT,
    VALID,
    Replica,
    ReplicaCatalog,
    replica_request_ad,
)
from repro.replica.federation import FederatedClient
from repro.replica.fleet import Fleet, render_status, run_demo
from repro.replica.placement import (
    PlacementPolicy,
    PlacementTarget,
    RandomKPlacement,
    SiteInfo,
    SpaceWeightedPlacement,
    ThroughputWeightedPlacement,
    make_policy,
    reserve,
    throughput_ranked_sites,
)
from repro.replica.replicator import (
    CopyReport,
    RepairReport,
    ReplicationError,
    Replicator,
)

__all__ = [
    "COPYING",
    "SUSPECT",
    "VALID",
    "Replica",
    "ReplicaCatalog",
    "replica_request_ad",
    "FederatedClient",
    "Fleet",
    "render_status",
    "run_demo",
    "PlacementPolicy",
    "PlacementTarget",
    "RandomKPlacement",
    "SiteInfo",
    "SpaceWeightedPlacement",
    "ThroughputWeightedPlacement",
    "make_policy",
    "reserve",
    "throughput_ranked_sites",
    "CopyReport",
    "RepairReport",
    "ReplicationError",
    "Replicator",
]
