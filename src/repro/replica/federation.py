"""The federated client: one namespace over a fleet of appliances.

``FederatedClient`` gives applications the paper's manageability story
from the *consumer* side: callers name **logical files**, the replica
catalog resolves them to physical copies, and the collector's
measured-throughput ranking (the machinery behind
:meth:`~repro.grid.discovery.Collector.fastest`) decides which copy to
read first.  A replica that fails with a :class:`TransientError` is
marked *suspect* -- feeding the repair loop -- and the read fails over
to the next-ranked copy, so a dying appliance is a performance blip,
not an application error.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Optional

from repro.client.errors import ClientError, TransientError
from repro.client.highlevel import NestClient
from repro.client.retry import RetryPolicy
from repro.nest.auth import Credential
from repro.obs import Observability
from repro.obs.log import get_logger
from repro.replica.catalog import ReplicaCatalog
from repro.replica.placement import SiteInfo, throughput_ranked_sites
from repro.replica.replicator import ReplicationError, Replicator

logger = get_logger(__name__)


class FederatedClient:
    """Read/write logical files against whichever replicas are alive."""

    def __init__(
        self,
        catalog: ReplicaCatalog,
        collector,
        replicator: Replicator,
        credential: Credential | None = None,
        data_protocol: str = "chirp",
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
    ):
        self.catalog = catalog
        self.collector = collector
        self.replicator = replicator
        self.credential = credential
        self.data_protocol = data_protocol
        self.retry = retry or RetryPolicy(max_attempts=2, base_delay=0.05,
                                          max_delay=0.2, deadline=10.0)
        self.obs = obs or replicator.obs
        self._clients: dict[str, NestClient] = {}
        self._lock = threading.Lock()
        reg = self.obs.registry
        self._m_reads = reg.counter(
            "federated_reads_total",
            "Federated logical reads, by outcome.", labelnames=("outcome",))
        self._m_failovers = reg.counter(
            "federated_failovers_total",
            "Reads that had to skip a failed replica and try the next.")

    # -- per-site sessions ---------------------------------------------------
    def _client(self, site: str) -> NestClient:
        with self._lock:
            cached = self._clients.get(site)
        if cached is not None:
            return cached
        ad = self.collector.lookup(site)
        if ad is None:
            raise TransientError(f"site {site!r} has no live advertisement")
        info = SiteInfo.from_ad(ad)
        client = NestClient(info.host, info.ports,
                            data_protocol=self.data_protocol,
                            credential=self.credential, retry=self.retry)
        with self._lock:
            self._clients[site] = client
        return client

    def _drop_client(self, site: str) -> None:
        with self._lock:
            client = self._clients.pop(site, None)
        if client is not None:
            try:
                client.close()
            except (ClientError, OSError):
                pass

    def close(self) -> None:
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            try:
                client.close()
            except (ClientError, OSError):
                pass

    def __enter__(self) -> "FederatedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- resolution ----------------------------------------------------------
    def resolve(self, logical: str) -> list[str]:
        """Valid replica sites, fastest (measured throughput) first.

        Sites with no live collector ad are excluded: they cannot be
        dialled and are already the repair loop's problem.
        """
        valid = self.catalog.valid_locations(logical)
        if not valid:
            raise ReplicationError(f"no valid replica of {logical!r}")
        return throughput_ranked_sites(self.collector,
                                       [r.site for r in valid])

    # -- reads ---------------------------------------------------------------
    def read(self, logical: str) -> bytes:
        """Fetch a logical file from the fastest live replica, failing
        over on transient faults.  Each fetched copy is verified
        against the catalog's CRC32 before being returned.

        The read runs inside a pushed span (a child of whatever the
        caller is tracing, or a fresh trace), so the per-site protocol
        clients inject its context onto the wire and the serving
        appliance's request span joins the same distributed trace.
        """
        span = self.obs.tracer.span("federated.read", logical=logical)
        with span:
            checksums = {r.site: r.checksum
                         for r in self.catalog.valid_locations(logical)}
            sites = self.resolve(logical)
            if not sites:
                raise ReplicationError(
                    f"no live replica of {logical!r} (all sites dark)")
            path = self.replicator.path_for(logical)
            errors: list[str] = []
            for attempt, site in enumerate(sites):
                if attempt:
                    self._m_failovers.inc()
                try:
                    data = self._client(site).read(path)
                except TransientError as exc:
                    # Dying site: implicate the copy and move on.
                    self.catalog.mark_suspect(logical, site)
                    self._drop_client(site)
                    errors.append(f"{site}: {exc}")
                    span.add("failovers")
                    continue
                want = checksums.get(site)
                if want is not None and zlib.crc32(data) & 0xFFFFFFFF != want:
                    self.catalog.mark_suspect(logical, site)
                    errors.append(f"{site}: checksum mismatch")
                    span.add("corrupt")
                    continue
                self._m_reads.inc(outcome="ok")
                span.set(site=site, nbytes=len(data))
                return data
            self._m_reads.inc(outcome="error")
            raise ReplicationError(
                f"every replica of {logical!r} failed: {'; '.join(errors)}")

    # -- writes --------------------------------------------------------------
    def write(self, logical: str, data: bytes,
              overwrite: bool = False) -> list[str]:
        """Store a logical file at the target replication factor.

        Delegates to the replicator: primary copy to the best-ranked
        appliance, then third-party fan-out.  Returns the sites that
        hold valid copies afterwards.
        """
        if self.catalog.locations(logical):
            if not overwrite:
                raise ReplicationError(
                    f"logical name {logical!r} already exists")
            for replica in self.catalog.locations(logical):
                self.catalog.drop(logical, replica.site)
        self.replicator.store(logical, data)
        return sorted(r.site for r in self.catalog.valid_locations(logical))

    # -- introspection -------------------------------------------------------
    def describe(self, logical: str) -> dict[str, Any]:
        """Where a logical file lives right now (dashboards, tests)."""
        return {
            "logical": logical,
            "replicas": [r.describe() for r in
                         self.catalog.locations(logical)],
            "ranked": throughput_ranked_sites(
                self.collector,
                [r.site for r in self.catalog.valid_locations(logical)]),
        }
