"""A fleet of live NeSTs federated behind one replica catalog.

:class:`Fleet` is the deployment the paper gestures at in section 6 --
several appliances, each advertising into the shared discovery system
-- packaged for tests, the CLI demo, and the kill-and-heal acceptance
scenario.  :func:`run_demo` is the executable version of the
federation story: seed files at replication factor K, murder an
appliance mid-workload, and show every read still succeeding while the
repair loop restores the factor.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.faults import FaultPlan
from repro.grid.discovery import Collector
from repro.nest.auth import CertificateAuthority, Credential
from repro.nest.config import NestConfig
from repro.nest.server import NestServer
from repro.obs.log import get_logger
from repro.replica.catalog import ReplicaCatalog
from repro.replica.federation import FederatedClient
from repro.replica.placement import make_policy
from repro.replica.replicator import Replicator

logger = get_logger(__name__)

#: default per-site capacity for demo fleets, small enough that the
#: space-weighted policy has something to weigh.
DEMO_CAPACITY = 256 * 1024 * 1024


class Fleet:
    """N live appliances + a collector + a shared toy-GSI domain."""

    def __init__(
        self,
        sites: int = 3,
        name_prefix: str = "nest",
        collector: Optional[Collector] = None,
        ca: Optional[CertificateAuthority] = None,
        ad_ttl: Optional[float] = None,
        readvertise_interval: float = 0.0,
        capacity_bytes: int = DEMO_CAPACITY,
        fault_plans: Optional[dict[str, FaultPlan]] = None,
        protocols: tuple[str, ...] = ("chirp", "ftp", "gridftp", "http"),
        config_overrides: Optional[dict[str, dict[str, Any]]] = None,
    ):
        self.collector = collector or Collector()
        self.ca = ca or CertificateAuthority("Federation CA")
        self.credential: Credential = self.ca.issue("/O=Fleet/CN=replicator")
        self.ad_ttl = ad_ttl
        self.readvertise_interval = readvertise_interval
        self.servers: dict[str, NestServer] = {}
        plans = fault_plans or {}
        #: per-site NestConfig field overrides keyed by server name
        #: (e.g. turn tiering on for one site, lower autoscale
        #: thresholds fleet-wide under the "*" key).
        overrides = config_overrides or {}
        for i in range(sites):
            name = f"{name_prefix}-{i}"
            fields: dict[str, Any] = {}
            fields.update(overrides.get("*", {}))
            fields.update(overrides.get(name, {}))
            config = NestConfig(name=name, protocols=protocols,
                                capacity_bytes=capacity_bytes, **fields)
            self.servers[name] = NestServer(config, ca=self.ca,
                                            faults=plans.get(name))
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "Fleet":
        for server in self.servers.values():
            server.start()
            server.advertise_to(
                self.collector, ttl=self.ad_ttl,
                readvertise_interval=self.readvertise_interval)
        self._started = True
        return self

    def stop(self) -> None:
        for server in self.servers.values():
            if server.running:
                server.stop()
        self._started = False

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- membership ----------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self.servers)

    def server(self, name: str) -> NestServer:
        return self.servers[name]

    def kill(self, name: str) -> NestServer:
        """Take a site down *abruptly*: no drain time for in-flight
        requests, and (if the site carries a :class:`FaultPlan`) any
        still-open connections are already being broken by it.  The
        stop path withdraws the ad, so the repair loop notices."""
        server = self.servers[name]
        server.stop(drain_timeout=0.0)
        return server

    # -- federation bundle ---------------------------------------------------
    def federate(
        self,
        target_count: int = 3,
        policy: str = "throughput",
        seed: int = 0,
        data_protocol: str = "chirp",
        repair_interval: Optional[float] = None,
    ) -> tuple[ReplicaCatalog, Replicator, FederatedClient]:
        """Stand up catalog + replicator (+ repair loop) + client."""
        # The catalog's own ReplicaSet ads use the collector's default
        # TTL: the catalog re-advertises on mutation, not on a
        # heartbeat, so the fleet's short server-ad TTL would starve
        # them between writes.
        catalog = ReplicaCatalog(collector=self.collector)
        replicator = Replicator(
            catalog, self.collector, self.credential,
            policy=make_policy(policy, seed=seed),
            target_count=target_count)
        if repair_interval is not None:
            replicator.start(interval=repair_interval)
        client = FederatedClient(
            catalog, self.collector, replicator,
            credential=self.credential, data_protocol=data_protocol)
        return catalog, replicator, client


def render_status(replicator: Replicator) -> str:
    """Human-readable federation status (the CLI prints this)."""
    status = replicator.status()
    lines = [
        f"policy={status['policy']} target_count={status['target_count']}",
        f"live sites: {', '.join(status['live_sites']) or '(none)'}",
    ]
    catalog: dict[str, list[dict[str, Any]]] = status["catalog"]
    if not catalog:
        lines.append("catalog: (empty)")
    for logical, replicas in catalog.items():
        marks = ", ".join(
            f"{r['site']}:{r['state']}" for r in replicas)
        lines.append(f"  {logical}: {marks}")
    deficits = status["deficits"]
    if deficits:
        lines.append(f"deficits: {deficits}")
    return "\n".join(lines)


def run_demo(
    sites: int = 4,
    files: int = 6,
    file_bytes: int = 64 * 1024,
    target_count: int = 3,
    policy: str = "throughput",
    seed: int = 7,
    kill: bool = True,
) -> dict[str, Any]:
    """The federation demo: seed, kill, heal, verify.

    Returns a JSON-able record (aggregate throughput included) that the
    CLI can append to the benchmark trajectory.
    """
    fleet = Fleet(sites=sites, readvertise_interval=0.2, ad_ttl=2.0)
    started = time.perf_counter()
    moved = 0
    with fleet:
        catalog, replicator, client = fleet.federate(
            target_count=target_count, policy=policy, seed=seed,
            repair_interval=0.25)
        with replicator, client:
            payloads = {
                f"demo-{i:03d}.dat": bytes([i % 251]) * file_bytes
                for i in range(files)
            }
            for logical, data in payloads.items():
                holders = client.write(logical, data)
                moved += len(data) * len(holders)
            victim = None
            if kill and sites > 1:
                # Kill the site carrying the most replicas: worst case.
                load: dict[str, int] = {}
                for logical in catalog.logicals():
                    for replica in catalog.locations(logical):
                        load[replica.site] = load.get(replica.site, 0) + 1
                victim = max(sorted(load), key=lambda s: load[s])
                logger.info("demo: killing %s (held %d replicas)",
                            victim, load[victim])
                fleet.kill(victim)
            # Every read must succeed throughout the outage.
            read_errors = 0
            for logical, data in payloads.items():
                got = client.read(logical)
                moved += len(got)
                if got != data:
                    read_errors += 1
            # Wait for the repair loop to restore the factor.
            deadline = time.monotonic() + 30.0
            while (catalog.deficits(target_count)
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            deficits = catalog.deficits(target_count)
            elapsed = time.perf_counter() - started
            record = {
                "benchmark": "replica_federation_demo",
                "sites": sites,
                "files": files,
                "file_bytes": file_bytes,
                "target_count": target_count,
                "policy": policy,
                "killed": victim,
                "read_errors": read_errors,
                "deficits_after_heal": sum(deficits.values()),
                "bytes_moved": moved,
                "seconds": round(elapsed, 4),
                "aggregate_mbps": round(
                    moved / max(elapsed, 1e-9) / 1e6, 3),
                "status": render_status(replicator),
            }
    return record
