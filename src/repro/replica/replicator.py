"""The replicator: make and keep K verified copies across the fleet.

This is the execution manager's six-step protocol (Fig. 2) turned into
a maintenance daemon.  For each copy it (1) asks placement for a site,
(2) reserves a lot there, (3) fans out a **third-party GridFTP**
transfer so the data flows appliance-to-appliance -- the orchestrator
never touches the bytes -- and (4) verifies the landed copy with the
Chirp ``checksum`` verb before the catalog marks it readable.

The **repair loop** closes the availability story: a site whose
collector ad disappears (heartbeat stopped, or a graceful stop
withdrew it) is presumed dead, its replicas are dropped, and every
logical name short of the target count is re-replicated from a
surviving valid copy.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.client.errors import ClientError
from repro.client.gridftp import GridFtpClient, third_party_transfer
from repro.client.chirp import ChirpClient
from repro.client.retry import RetryPolicy
from repro.nest.auth import Credential
from repro.obs import Observability
from repro.obs.log import get_logger
from repro.replica.catalog import COPYING, SUSPECT, VALID, ReplicaCatalog
from repro.replica.placement import (
    PlacementPolicy,
    PlacementTarget,
    SiteInfo,
    ThroughputWeightedPlacement,
    reserve,
    throughput_ranked_sites,
)

logger = get_logger(__name__)

_LOGICAL_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ReplicationError(Exception):
    """The federation could not satisfy a replication request."""


@dataclass
class CopyReport:
    """Outcome of one attempted replica copy."""

    logical: str
    source: str
    target: str
    ok: bool
    nbytes: int = 0
    error: str = ""


@dataclass
class RepairReport:
    """Outcome of one repair pass over the whole catalog."""

    dead_sites: list[str] = field(default_factory=list)
    dropped: int = 0  #: replicas discarded because their site died
    recovered: int = 0  #: suspect replicas that re-verified as valid
    copies: list[CopyReport] = field(default_factory=list)
    unrecoverable: list[str] = field(default_factory=list)

    @property
    def healed(self) -> int:
        return sum(1 for c in self.copies if c.ok)


class Replicator:
    """Creates, verifies, and repairs replicas for a catalog."""

    def __init__(
        self,
        catalog: ReplicaCatalog,
        collector,
        credential: Credential,
        policy: PlacementPolicy | None = None,
        target_count: int = 3,
        prefix: str = "/replicas",
        lot_duration: float = 3600.0,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
    ):
        self.catalog = catalog
        self.collector = collector
        self.credential = credential
        self.policy = policy or ThroughputWeightedPlacement()
        self.target_count = int(target_count)
        self.prefix = prefix.rstrip("/") or "/replicas"
        self.lot_duration = lot_duration
        self.retry = retry or RetryPolicy(max_attempts=3, base_delay=0.05,
                                          max_delay=0.5, deadline=30.0)
        self.obs = obs or Observability(service="federation")
        self._prepared: set[str] = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        reg = self.obs.registry
        self._m_copies = reg.counter(
            "replica_copies_total",
            "Third-party replica copies attempted, by outcome.",
            labelnames=("outcome",))
        self._m_repairs = reg.counter(
            "replica_repair_passes_total",
            "Repair-loop passes, by whether anything needed healing.",
            labelnames=("outcome",))
        self._m_copy_bytes = reg.counter(
            "replica_copy_bytes_total",
            "Bytes moved appliance-to-appliance by the replicator.")
        # Repair lag feeds the replica-repair SLO objective: how stale
        # is the last completed repair pass.
        self._last_repair = time.time()
        reg.gauge_callback(
            "replica_repair_lag_seconds",
            lambda: time.time() - self._last_repair,
            "Seconds since the last completed repair pass.")

    # -- naming --------------------------------------------------------------
    def path_for(self, logical: str) -> str:
        """Where a logical file's copies live on every site."""
        if not _LOGICAL_NAME.match(logical):
            raise ValueError(f"invalid logical name {logical!r}")
        return f"{self.prefix}/{logical}"

    # -- site plumbing -------------------------------------------------------
    def _site_info(self, site: str) -> SiteInfo:
        ad = self.collector.lookup(site)
        if ad is None:
            raise ReplicationError(f"site {site!r} has no live advertisement")
        return SiteInfo.from_ad(ad)

    def _chirp(self, site: SiteInfo) -> ChirpClient:
        client = ChirpClient(site.host, site.ports["chirp"], retry=self.retry)
        client.authenticate(self.credential)
        return client

    def _prepare_site(self, site: SiteInfo) -> None:
        """Ensure the replica prefix exists (and is anonymously
        readable, so any data protocol can serve the copies)."""
        if site.name in self._prepared:
            return
        with self._chirp(site) as chirp:
            try:
                chirp.mkdir(self.prefix)
            except ClientError:
                pass  # already exists
            chirp.acl_set(self.prefix, "*", "rl")
        self._prepared.add(site.name)

    def _checksum_on(self, site: SiteInfo, path: str) -> dict[str, int]:
        with self._chirp(site) as chirp:
            return chirp.checksum(path)

    # -- seeding -------------------------------------------------------------
    def store(self, logical: str, data: bytes) -> list[CopyReport]:
        """Ingest ``data`` under ``logical``: write a primary copy to
        the best-ranked site, then fan out to the target count.

        Tries sites in placement order until one accepts the primary,
        so a site dying mid-write is survivable as long as any
        appliance is still up.
        """
        path = self.path_for(logical)
        # A pushed span (child of the caller's trace, if any): the
        # chirp sessions below inject its context, so the primary PUT
        # and checksum land in the same distributed trace.
        span = self.obs.tracer.span(
            "replica.store", logical=logical, nbytes=len(data))
        with span:
            candidates = self.policy.place(
                self.collector, len(data), self.target_count,
                exclude=self.catalog.sites(logical))
            if not candidates:
                raise ReplicationError(
                    f"no appliance can hold {len(data)} bytes")
            primary = None
            last_error: Exception | None = None
            for ad in candidates:
                site = SiteInfo.from_ad(ad)
                try:
                    self._prepare_site(site)
                    with self._chirp(site) as chirp:
                        chirp.lot_create(max(len(data), 1), self.lot_duration)
                        chirp.put(path, data)
                        sum_ = chirp.checksum(path)
                    primary = site
                    break
                except (ClientError, OSError, KeyError) as exc:
                    last_error = exc
                    logger.warning("store %s: primary on %s failed: %s",
                                   logical, site.name, exc)
            if primary is None:
                raise ReplicationError(
                    f"primary write of {logical!r} failed everywhere: "
                    f"{last_error}")
            self.catalog.register(logical, primary.name, path,
                                  size=len(data), state=COPYING)
            self.catalog.mark_valid(logical, primary.name,
                                    checksum=sum_["crc32"], size=sum_["size"])
            span.set(primary=primary.name)
            return self.replicate(logical)

    # -- replication ---------------------------------------------------------
    def replicate(self, logical: str, k: int | None = None) -> list[CopyReport]:
        """Fan out third-party copies until ``logical`` has ``k`` valid
        replicas (default: the target count).  Parallel across targets;
        returns one report per attempted copy."""
        want = self.target_count if k is None else int(k)
        valid = self.catalog.valid_locations(logical)
        if not valid:
            raise ReplicationError(
                f"no valid replica of {logical!r} to copy from")
        need = want - len(valid)
        if need <= 0:
            return []
        span = self.obs.tracer.span(
            "replica.replicate", logical=logical, need=need)
        with span:
            source = self._pick_source(logical, valid)
            size = max((r.size for r in valid), default=0)
            # Ask placement to order *every* candidate, then walk the
            # ordering reserving lots until enough sites accepted: a
            # site with a stale ad (just died, TTL not yet expired)
            # refuses its reservation and the next choice takes over.
            ordered = self.policy.place(self.collector, size, 2 ** 31,
                                        exclude=self.catalog.sites(logical))
            targets: list[PlacementTarget] = []
            for ad in ordered:
                if len(targets) >= need:
                    break
                targets.extend(reserve([ad], size, self.lot_duration,
                                       self.credential, retry=self.retry))
            if len(targets) < need:
                logger.warning(
                    "replicate %s: wanted %d target(s), reserved %d",
                    logical, need, len(targets))
            reports: list[CopyReport] = []
            threads = []
            lock = threading.Lock()

            def run(target: PlacementTarget) -> None:
                report = self._copy_one(logical, source, target, span)
                with lock:
                    reports.append(report)

            for target in targets:
                t = threading.Thread(target=run, args=(target,), daemon=True)
                t.start()
                threads.append(t)
            for t in threads:
                t.join()
            span.set(copies=len(reports),
                     ok=sum(1 for r in reports if r.ok))
            return reports

    def _pick_source(self, logical: str, valid) -> SiteInfo:
        """The fastest live site holding a valid copy."""
        ranked = throughput_ranked_sites(self.collector,
                                         [r.site for r in valid])
        if not ranked:
            raise ReplicationError(
                f"no live site holds a valid copy of {logical!r}")
        return self._site_info(ranked[0])

    def _copy_one(self, logical: str, source: SiteInfo,
                  target: PlacementTarget, span) -> CopyReport:
        """One third-party copy + checksum verification."""
        path = self.path_for(logical)
        site = target.site
        child = span.child("copy", source=source.name, target=site.name)
        self.catalog.register(logical, site.name, path, state=COPYING)

        def attempt() -> None:
            # Fresh control sessions per attempt: a retried transfer
            # must not inherit a connection the fault layer broke.
            with GridFtpClient(source.host, source.ports["gridftp"],
                               credential=self.credential) as src, \
                 GridFtpClient(site.host, site.ports["gridftp"],
                               credential=self.credential) as dst:
                third_party_transfer(src, path, dst, path)

        try:
            # The copy runs in its own worker thread; pushing the child
            # span here makes the control sessions (GridFTP third-party
            # setup, Chirp checksums on both ends) carry this trace's
            # context to every party of the three-way transfer.
            with child:
                self._prepare_site(site)
                self.retry.call(attempt, idempotent=True,
                                label=f"replicate {logical} -> {site.name}")
                want = self._checksum_on(source, path)
                got = self._checksum_on(site, path)
                if got != want:
                    raise ReplicationError(
                        f"checksum mismatch on {site.name}: "
                        f"{got} != {want}")
                self.catalog.mark_valid(logical, site.name,
                                        checksum=got["crc32"],
                                        size=got["size"])
                self._m_copies.inc(outcome="ok")
                self._m_copy_bytes.inc(got["size"])
                child.set(nbytes=got["size"])
            return CopyReport(logical=logical, source=source.name,
                              target=site.name, ok=True, nbytes=got["size"])
        except (ClientError, ReplicationError, OSError, KeyError) as exc:
            # The half-made copy must never be read: drop the record so
            # the next repair pass re-replicates from a valid source.
            self.catalog.drop(logical, site.name)
            self._m_copies.inc(outcome="error")
            child.set(error=str(exc)).end("error")
            logger.warning("copy %s -> %s failed: %s",
                           logical, site.name, exc)
            return CopyReport(logical=logical, source=source.name,
                              target=site.name, ok=False, error=str(exc))

    # -- verification --------------------------------------------------------
    def verify(self, logical: str, site: str) -> bool:
        """Re-checksum the copy on ``site`` against the catalog."""
        replicas = {r.site: r for r in self.catalog.locations(logical)}
        replica = replicas.get(site)
        if replica is None:
            return False
        reference = replica.checksum
        if reference is None:
            reference = next(
                (r.checksum for r in self.catalog.valid_locations(logical)
                 if r.checksum is not None), None)
        try:
            got = self._checksum_on(self._site_info(site), replica.path)
        except (ClientError, ReplicationError, OSError, KeyError):
            return False
        if reference is not None and got["crc32"] != reference:
            return False
        self.catalog.mark_valid(logical, site,
                                checksum=got["crc32"], size=got["size"])
        return True

    # -- repair --------------------------------------------------------------
    def repair_once(self) -> RepairReport:
        """One pass: bury the dead, re-verify the suspect, refill the
        deficits.  Safe to call concurrently with client traffic."""
        report = RepairReport()
        live = self.collector.names()
        for logical in self.catalog.logicals():
            for replica in self.catalog.locations(logical):
                if replica.site not in live:
                    if replica.site not in report.dead_sites:
                        report.dead_sites.append(replica.site)
                    self.catalog.drop(logical, replica.site)
                    self._prepared.discard(replica.site)
                    report.dropped += 1
                elif replica.state == SUSPECT:
                    if self.verify(logical, replica.site):
                        report.recovered += 1
                    # else: leave it suspect; if the site is dying its
                    # ad will expire and the next pass drops it.
        for logical, missing in self.catalog.deficits(self.target_count).items():
            try:
                report.copies.extend(self.replicate(logical, self.target_count))
            except ReplicationError as exc:
                logger.warning("repair %s: %s", logical, exc)
                report.unrecoverable.append(logical)
        healed = report.dropped or report.healed or report.recovered
        self._m_repairs.inc(outcome="healed" if healed else "idle")
        self._last_repair = time.time()
        if report.dead_sites:
            logger.info("repair: dead=%s dropped=%d healed=%d",
                        report.dead_sites, report.dropped, report.healed)
        return report

    def start(self, interval: float = 1.0) -> "Replicator":
        """Run :meth:`repair_once` every ``interval`` seconds until
        :meth:`stop`."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    self.repair_once()
                except Exception:  # noqa: BLE001 - the loop must survive
                    logger.exception("repair pass failed")

        self._thread = threading.Thread(target=loop, daemon=True,
                                        name="replica-repair")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "Replicator":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def status(self) -> dict[str, Any]:
        """JSON-able federation summary (CLI ``replica status``)."""
        return {
            "target_count": self.target_count,
            "policy": self.policy.name,
            "live_sites": sorted(
                n for n in self.collector.names()
                if not n.startswith("replica::")),
            "catalog": self.catalog.snapshot(),
            "deficits": self.catalog.deficits(self.target_count),
        }
