"""The storage manager (paper, sections 2.1 and 5).

Four responsibilities, exactly as the paper lists them:

1. virtualize and control physical storage (pluggable
   :class:`~repro.nest.backends.DataStore` backends);
2. directly execute non-transfer requests (directory and metadata
   operations run synchronously -- they take "on the order of
   milliseconds" -- under a lock, so the dispatcher can serialize them
   trivially);
3. implement and enforce access control (AFS-style ACLs over ClassAd
   collections, :mod:`repro.nest.acl`), across *all* protocols;
4. manage guaranteed storage space as lots (:mod:`repro.nest.lots`).

Data transfers are *approved* here (permission + lot/space checks) and
then executed asynchronously by the transfer manager: ``approve_get``/
``approve_put`` return tickets carrying the backend stream.
"""

from __future__ import annotations

import errno as _errno
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, BinaryIO, Callable

from repro.nest.acl import AccessControl, AclError, Rights, default_acl
from repro.nest.backends import DataStore, MemoryStore
from repro.nest.lots import LotError, LotManager
from repro.obs import spans as _spans
from repro.obs.metrics import MetricsRegistry
from repro.protocols.common import Request, RequestType, Response, Status


class StorageError(Exception):
    """Carries a protocol-independent failure status."""

    def __init__(self, status: Status, message: str = ""):
        super().__init__(message or status.value)
        self.status = status
        self.message = message


@dataclass
class DirNode:
    """A directory: children plus its ACL."""

    name: str
    acl: AccessControl
    children: dict[str, "DirNode | FileNode"] = field(default_factory=dict)


@dataclass
class FileNode:
    """A file's metadata; bytes live in the backend."""

    name: str
    owner: str
    size: int = 0


@dataclass
class TransferTicket:
    """A storage-manager-approved transfer, handed to the transfer manager."""

    path: str
    user: str
    size: int  #: bytes to move (-1 when unknown until EOF)
    stream: BinaryIO  #: backend source (get) or sink (put)
    is_write: bool
    offset: int = 0

    def settle(self, actual_bytes: int) -> None:
        """Called by the transfer manager when the data movement ends."""
        self.stream.close()


def _split(path: str) -> list[str]:
    return [p for p in path.split("/") if p]


def _serialize_dir(node: DirNode) -> dict[str, Any]:
    dirs: dict[str, Any] = {}
    files: dict[str, Any] = {}
    for name, child in node.children.items():
        if isinstance(child, DirNode):
            dirs[name] = _serialize_dir(child)
        else:
            files[name] = {"owner": child.owner, "size": child.size}
    return {"acl": [[s, r] for s, r in node.acl.listing()],
            "dirs": dirs, "files": files}


def _deserialize_dir(name: str, data: dict[str, Any],
                     groups: dict[str, set[str]]) -> DirNode:
    acl = AccessControl(groups=groups)
    for subject, rights in data.get("acl", []):
        acl.set_entry(subject, Rights.parse(rights))
    node = DirNode(name=name, acl=acl)
    for child_name, child in data.get("dirs", {}).items():
        node.children[child_name] = _deserialize_dir(child_name, child, groups)
    for child_name, meta in data.get("files", {}).items():
        node.children[child_name] = FileNode(
            name=child_name, owner=meta.get("owner", ""),
            size=int(meta.get("size", 0)))
    return node


class StorageManager:
    """Namespace + ACLs + lots over a physical-storage backend."""

    def __init__(
        self,
        store: DataStore | None = None,
        capacity_bytes: int = 10 * (1 << 30),
        clock: Callable[[], float] = time.time,
        require_lots: bool = False,
        lot_enforcement: str = "quota",
        reclaim_policy: str = "expired-first",
        anonymous_rights: str = "rl",
        invalidate: Callable[[str], None] | None = None,
        registry: MetricsRegistry | None = None,
        heat=None,
    ):
        self.store = store if store is not None else MemoryStore()
        self.clock = clock
        #: Called with every path whose identity dies (delete, rename
        #: source, rmdir, lot reclaim) so path-keyed caches -- the NFS
        #: file-handle registry above all -- can drop stale entries.
        self.invalidate = invalidate or (lambda path: None)
        #: When True (the paper's deployment), writes require an active
        #: lot; when False, writes are charged only against raw space.
        self.require_lots = require_lots
        self.groups: dict[str, set[str]] = {}
        self.anonymous_rights = anonymous_rights
        self.root = DirNode(
            name="/", acl=default_acl("admin", self.groups, anonymous_rights)
        )
        # Anyone may create entries at the root by default; tighten via Chirp.
        self.root.acl.set_entry("*", Rights.parse("rli"))
        self.lots = LotManager(
            capacity_bytes,
            clock=clock,
            enforcement=lot_enforcement,
            reclaim_policy=reclaim_policy,
            on_reclaim=self._reclaim_file,
            groups=self.groups,
        )
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        #: optional per-file access-heat tracker (repro.tier.heat);
        #: every approved read feeds it so tiering and autoscaling see
        #: the same demand signal.
        self.heat = heat
        self._lock = threading.RLock()
        #: metadata-journal sink (set via :meth:`set_journal`); None
        #: means the appliance runs memory-only, exactly as before.
        self._journal: Callable[..., Any] | None = None
        self._journal_async: Callable[..., int] | None = None
        self._journal_wait: Callable[[int], None] | None = None
        #: per-thread list of journal seqs enqueued by the op in
        #: flight; non-None only between _op entry and exit.
        self._local = threading.local()
        self._m_ops = None
        self._m_denied = None
        if registry is not None:
            self._m_ops = registry.counter(
                "nest_storage_ops_total",
                "Storage-manager operations, by op and outcome.",
                labelnames=("op", "outcome"), max_series=128)
            self._m_denied = registry.counter(
                "nest_acl_denials_total",
                "Requests refused by an ACL check, by missing right.",
                labelnames=("right",))
            self.lots.register_metrics(registry)

    # ------------------------------------------------------------------
    # durability wiring (see repro.durability)
    # ------------------------------------------------------------------
    def set_journal(self, sink: Callable[..., Any] | None, *,
                    async_sink: Callable[..., int] | None = None,
                    wait_sink: Callable[[int], None] | None = None) -> None:
        """Bind the metadata-journal sink; lot mutations are routed
        through :meth:`_emit` too so a journal failure surfaces as one
        typed :class:`StorageError` everywhere.

        When the split form is bound (``async_sink`` + ``wait_sink``),
        ops *enqueue* records while holding the storage lock and block
        for durability only in :meth:`_op`'s exit, after the lock is
        released -- otherwise the lock serializes every append and
        group commit can never batch.
        """
        self._journal = sink
        self._journal_async = async_sink if sink is not None else None
        self._journal_wait = wait_sink if sink is not None else None
        self.lots.journal = self._emit if sink is not None else None

    def _emit(self, rtype: str, **fields) -> None:
        """Record one durable mutation in the bound journal.

        Inside an :meth:`_op` scope with the split sink bound, this
        only *enqueues* (the op's exit waits for durability after the
        storage lock is gone); elsewhere it appends synchronously.

        A failed append (disk gone, out of space) must not kill the
        connection: it degrades into a typed response -- ``ENOSPC``
        maps to the protocol's no-space error, anything else to a
        server error.  The in-memory mutation has already happened;
        the journal's error counter records the divergence.
        """
        if self._journal is None:
            return
        waits = getattr(self._local, "waits", None)
        try:
            if self._journal_async is not None and waits is not None:
                waits.append(self._journal_async(rtype, **fields))
            else:
                self._journal(rtype, **fields)
        except OSError as exc:
            raise self._journal_failure(exc) from exc

    def _await_durable(self) -> None:
        """Block until every record the finishing op enqueued is on
        disk.  Runs in :meth:`_op`'s exit -- i.e. after ``self._lock``
        is released -- so concurrent mutators pile onto one
        group-commit flush instead of fsyncing one by one."""
        waits = getattr(self._local, "waits", None)
        if not waits or self._journal_wait is None:
            return
        seqs, self._local.waits = list(waits), []
        for seq in seqs:
            try:
                self._journal_wait(seq)
            except OSError as exc:
                raise self._journal_failure(exc) from exc

    @staticmethod
    def _journal_failure(exc: OSError) -> StorageError:
        status = (Status.NO_SPACE if exc.errno == _errno.ENOSPC
                  else Status.SERVER_ERROR)
        return StorageError(
            status, f"metadata journal append failed: {exc}")

    def serialize_state(self) -> dict[str, Any]:
        """A JSON-able snapshot of all durable metadata: the whole
        namespace with per-directory ACLs, groups, accounting, lots."""
        with self._lock:
            return {
                "root": _serialize_dir(self.root),
                "groups": {name: sorted(members)
                           for name, members in self.groups.items()},
                "used_bytes": self.used_bytes,
                "lots": self.lots.serialize(),
            }

    def install_state(self, state: dict[str, Any]) -> None:
        """Replace in-memory metadata with a snapshot's.  The shared
        ``groups`` dict is mutated in place -- the lot manager and
        every ACL hold references to the same object."""
        with self._lock:
            self.groups.clear()
            for name, members in state.get("groups", {}).items():
                self.groups[name] = set(members)
            self.root = _deserialize_dir("/", state.get("root", {}),
                                         self.groups)
            self.used_bytes = int(state.get("used_bytes", 0))
            self.lots.restore(state.get("lots", {}))

    @contextmanager
    def _op(self, op: str, path: str = ""):
        """One storage operation: a ``storage`` child span under
        whatever request is being traced, plus op/outcome counts.

        Callers stack it *outside* the lock (``with self._op(..),
        self._lock:``), so the post-body durability wait below runs
        after the lock is released -- the other half of the journal's
        group-commit split."""
        span = _spans.maybe_span("storage", op=op, path=path)
        outermost = getattr(self._local, "waits", None) is None
        if outermost:
            self._local.waits = []
        try:
            with span:
                yield
                if outermost:
                    self._await_durable()
        except StorageError as exc:
            if self._m_ops is not None:
                self._m_ops.inc(op=op, outcome=exc.status.value)
            raise
        else:
            if self._m_ops is not None:
                self._m_ops.inc(op=op, outcome="ok")
        finally:
            if outermost:
                self._local.waits = None

    # ------------------------------------------------------------------
    # namespace internals
    # ------------------------------------------------------------------
    def _walk_dir(self, parts: list[str]) -> DirNode:
        node = self.root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                raise StorageError(Status.NOT_FOUND, "/".join(parts))
            if not isinstance(child, DirNode):
                raise StorageError(Status.NOT_DIR, part)
            node = child
        return node

    def _parent_and_name(self, path: str) -> tuple[DirNode, str]:
        parts = _split(path)
        if not parts:
            raise StorageError(Status.BAD_REQUEST, "empty path")
        return self._walk_dir(parts[:-1]), parts[-1]

    def _lookup(self, path: str) -> "DirNode | FileNode":
        parts = _split(path)
        if not parts:
            return self.root
        parent = self._walk_dir(parts[:-1])
        node = parent.children.get(parts[-1])
        if node is None:
            raise StorageError(Status.NOT_FOUND, path)
        return node

    def _check(self, acl: AccessControl, user: str, letter: str) -> None:
        if not acl.allows(user, letter):
            if self._m_denied is not None:
                self._m_denied.inc(right=letter)
            _spans.annotate("acl_denied", 1)
            raise StorageError(Status.DENIED, f"{user} lacks {letter!r}")

    def _dir_acl_of(self, path: str) -> AccessControl:
        node = self._lookup(path)
        if isinstance(node, FileNode):
            parent, _ = self._parent_and_name(path)
            return parent.acl
        return node.acl

    def _reclaim_file(self, path: str) -> None:
        """Best-effort lot reclamation: delete the file's data + metadata."""
        try:
            parent, name = self._parent_and_name(path)
            node = parent.children.get(name)
            if isinstance(node, FileNode):
                self.used_bytes -= node.size
                del parent.children[name]
        except StorageError:
            pass
        self._emit("file_reclaim", path=path)
        self.store.delete(path)
        self.invalidate(path)

    # ------------------------------------------------------------------
    # metadata operations (synchronous; paper section 2.1)
    # ------------------------------------------------------------------
    def mkdir(self, user: str, path: str) -> None:
        """Create a directory; requires insert on the parent."""
        with self._lock:
            parent, name = self._parent_and_name(path)
            self._check(parent.acl, user, "i")
            if name in parent.children:
                raise StorageError(Status.EXISTS, path)
            parent.children[name] = DirNode(
                name=name, acl=default_acl(user, self.groups, self.anonymous_rights)
            )
            self._emit("mkdir", user=user, path=path)

    def rmdir(self, user: str, path: str) -> None:
        """Remove an empty directory; requires delete on the parent."""
        with self._lock:
            parent, name = self._parent_and_name(path)
            self._check(parent.acl, user, "d")
            node = parent.children.get(name)
            if node is None:
                raise StorageError(Status.NOT_FOUND, path)
            if isinstance(node, FileNode):
                raise StorageError(Status.NOT_DIR, path)
            if node.children:
                raise StorageError(Status.NOT_EMPTY, path)
            del parent.children[name]
            self._emit("rmdir", path=path)
            self.invalidate(path)

    def listdir(self, user: str, path: str) -> list[dict[str, Any]]:
        """Directory listing; requires lookup."""
        with self._lock:
            node = self._lookup(path)
            if isinstance(node, FileNode):
                raise StorageError(Status.NOT_DIR, path)
            self._check(node.acl, user, "l")
            out = []
            for name, child in sorted(node.children.items()):
                if isinstance(child, DirNode):
                    out.append({"name": name, "type": "dir", "size": 0, "owner": ""})
                else:
                    out.append({"name": name, "type": "file", "size": child.size,
                                "owner": child.owner})
            return out

    def stat(self, user: str, path: str) -> dict[str, Any]:
        """Metadata for one entry; requires lookup on the parent."""
        with self._lock:
            node = self._lookup(path)
            self._check(self._dir_acl_of(path), user, "l")
            if isinstance(node, DirNode):
                return {"size": 0, "type": "dir", "owner": ""}
            return {"size": node.size, "type": "file", "owner": node.owner}

    def delete(self, user: str, path: str) -> None:
        """Remove a file; requires delete on the parent."""
        with self._lock:
            parent, name = self._parent_and_name(path)
            self._check(parent.acl, user, "d")
            node = parent.children.get(name)
            if node is None:
                raise StorageError(Status.NOT_FOUND, path)
            if isinstance(node, DirNode):
                raise StorageError(Status.IS_DIR, path)
            # Journal first: a crash right after leaves an orphan
            # charge, which recovery reconciles; the reverse order
            # would leave a phantom released-but-present file.
            self._emit("delete", path=path)
            self.used_bytes -= node.size
            self.lots.release(path)
            del parent.children[name]
            self.store.delete(path)
            self.invalidate(path)

    def rename(self, user: str, path: str, new_path: str) -> None:
        """Rename within the namespace; requires modify on both parents."""
        with self._lock:
            parent, name = self._parent_and_name(path)
            self._check(parent.acl, user, "m")
            node = parent.children.get(name)
            if node is None:
                raise StorageError(Status.NOT_FOUND, path)
            new_parent, new_name = self._parent_and_name(new_path)
            self._check(new_parent.acl, user, "i")
            if new_name in new_parent.children:
                raise StorageError(Status.EXISTS, new_path)
            del parent.children[name]
            node.name = new_name
            new_parent.children[new_name] = node
            self.lots.rename_charges(path, new_path)
            # Journal before moving the bytes: if a crash interrupts
            # the move, replay re-does it from whichever path still
            # holds the data (see StorageReplayer._redo_move).
            self._emit("rename", path=path, new_path=new_path)
            if isinstance(node, FileNode):
                # Move the backing bytes through one pooled buffer.
                from repro.nest.io import copy_stream

                src = self.store.open_read(path)
                dst = self.store.open_write(new_path)
                try:
                    copy_stream(src, dst)
                finally:
                    src.close()
                    dst.close()
                self.store.delete(path)
            # The old name no longer resolves (and for directories the
            # whole old subtree died): stale handles must not survive.
            self.invalidate(path)

    def exists(self, path: str) -> bool:
        """True if the path names a file or directory."""
        with self._lock:
            try:
                self._lookup(path)
                return True
            except StorageError:
                return False

    # ------------------------------------------------------------------
    # ACL operations (Chirp-only on the wire, enforced everywhere)
    # ------------------------------------------------------------------
    def acl_set(self, user: str, path: str, subject: str, rights: str) -> None:
        """Change a directory's ACL; requires admin there."""
        with self._lock:
            node = self._lookup(path)
            if isinstance(node, FileNode):
                raise StorageError(Status.NOT_DIR, path)
            self._check(node.acl, user, "a")
            try:
                parsed = Rights.parse(rights)
                node.acl.set_entry(subject, parsed)
            except AclError as exc:
                raise StorageError(Status.BAD_REQUEST, str(exc)) from exc
            self._emit("acl_set", path=path, subject=subject,
                       rights=str(parsed))

    def acl_get(self, user: str, path: str) -> list[tuple[str, str]]:
        """Read a directory's ACL; requires lookup."""
        with self._lock:
            node = self._lookup(path)
            if isinstance(node, FileNode):
                raise StorageError(Status.NOT_DIR, path)
            self._check(node.acl, user, "l")
            return node.acl.listing()

    def add_group(self, name: str, members: set[str]) -> None:
        """Define or replace a user group."""
        with self._lock:
            self.groups[name] = set(members)
            self._emit("group_set", name=name, members=sorted(members))

    # ------------------------------------------------------------------
    # transfer approval (paper: storage manager synchronously approves,
    # transfer manager then moves the data asynchronously)
    # ------------------------------------------------------------------
    def approve_get(self, user: str, path: str) -> TransferTicket:
        """Authorize a whole-file read; returns the source ticket.

        A tiered backend may recall the file's bytes from the cold
        tier inside ``open_read`` (recall on miss); the journal those
        transitions ride is reentrant-safe under our lock.
        """
        with self._op("approve_get", path), self._lock:
            node = self._lookup(path)
            if isinstance(node, DirNode):
                raise StorageError(Status.IS_DIR, path)
            self._check(self._dir_acl_of(path), user, "r")
            self._record_heat(path, node.size)
            return TransferTicket(
                path=path, user=user, size=node.size,
                stream=self.store.open_read(path), is_write=False,
            )

    def approve_put(self, user: str, path: str, length: int) -> TransferTicket:
        """Authorize a whole-file write of ``length`` bytes.

        Charges lots/space up front so the guarantee holds before any
        data moves; over-declaration is settled back on completion.
        """
        with self._op("approve_put", path), self._lock:
            parent, name = self._parent_and_name(path)
            existing = parent.children.get(name)
            if isinstance(existing, DirNode):
                raise StorageError(Status.IS_DIR, path)
            if existing is None:
                self._check(parent.acl, user, "i")
            else:
                self._check(parent.acl, user, "w")
            declared = max(0, length)
            old_size = existing.size if existing else 0
            growth = max(0, declared - old_size)
            self._charge(user, path, growth)
            if existing is None:
                parent.children[name] = FileNode(name=name, owner=user, size=declared)
            else:
                existing.size = declared
            self.used_bytes += declared - old_size
            self._emit("put_begin", user=user, path=path, size=declared,
                       old_size=old_size, existed=existing is not None)
            manager = self

            class _PutTicket(TransferTicket):
                def settle(inner, actual_bytes: int) -> None:
                    inner.stream.close()
                    manager._settle_put(inner, declared, actual_bytes)

            return _PutTicket(
                path=path, user=user, size=declared,
                stream=self.store.open_write(path), is_write=True,
            )

    def approve_write(self, user: str, path: str, offset: int, length: int) -> TransferTicket:
        """Authorize a block write (NFS); creates the file if needed."""
        with self._op("approve_write", path), self._lock:
            parent, name = self._parent_and_name(path)
            existing = parent.children.get(name)
            if isinstance(existing, DirNode):
                raise StorageError(Status.IS_DIR, path)
            if existing is None:
                self._check(parent.acl, user, "i")
                existing = FileNode(name=name, owner=user, size=0)
                parent.children[name] = existing
            else:
                self._check(parent.acl, user, "w")
            growth = max(0, offset + length - existing.size)
            self._charge(user, path, growth)
            existing.size += growth
            self.used_bytes += growth
            self._emit("write", user=user, path=path, size=existing.size)
            stream = self.store.open_update(path)
            stream.seek(offset)
            return TransferTicket(
                path=path, user=user, size=length, stream=stream,
                is_write=True, offset=offset,
            )

    def approve_read(self, user: str, path: str, offset: int, length: int) -> TransferTicket:
        """Authorize a block read (NFS)."""
        with self._op("approve_read", path), self._lock:
            node = self._lookup(path)
            if isinstance(node, DirNode):
                raise StorageError(Status.IS_DIR, path)
            self._check(self._dir_acl_of(path), user, "r")
            length = max(0, min(length, node.size - offset))
            self._record_heat(path, length)
            stream = self.store.open_read(path)
            stream.seek(offset)
            return TransferTicket(
                path=path, user=user, size=length, stream=stream,
                is_write=False, offset=offset,
            )

    def _record_heat(self, path: str, nbytes: int) -> None:
        if self.heat is not None:
            self.heat.record(path, nbytes)

    def _charge(self, user: str, path: str, growth: int) -> None:
        if growth <= 0:
            return
        if growth > self.capacity_bytes - self.used_bytes:
            raise StorageError(Status.NO_SPACE, "filesystem full")
        if self.require_lots:
            try:
                self.lots.charge(user, path, growth)
            except LotError as exc:
                raise StorageError(Status.NO_SPACE, str(exc)) from exc

    def _settle_put(self, ticket: TransferTicket, declared: int, actual: int) -> None:
        """Reconcile declared vs actual size after a put completes."""
        with self._op("commit_put", ticket.path), self._lock:
            # The commit record closes the put_begin bracket: recovery
            # treats an unmatched put_begin as an interrupted transfer.
            self._emit("put_commit", path=ticket.path, size=actual)
            if actual == declared:
                return
            try:
                parent, name = self._parent_and_name(ticket.path)
            except StorageError:
                return
            node = parent.children.get(name)
            if not isinstance(node, FileNode):
                return
            delta = actual - declared
            node.size = actual
            self.used_bytes += delta
            if delta < 0:
                self.lots.release(ticket.path, -delta)
            elif self.require_lots:
                # Under-declared: charge the remainder (may raise; the
                # transfer manager reports the failure to the client).
                self.lots.charge(ticket.user, ticket.path, delta)

    # ------------------------------------------------------------------
    # request execution (the dispatcher's synchronous path)
    # ------------------------------------------------------------------
    def execute(self, request: Request) -> Response:
        """Execute one non-transfer request synchronously."""
        handler = {
            RequestType.MKDIR: lambda r: self.mkdir(r.user, r.path),
            RequestType.RMDIR: lambda r: self.rmdir(r.user, r.path),
            RequestType.LIST: lambda r: self.listdir(r.user, r.path),
            RequestType.STAT: lambda r: self.stat(r.user, r.path),
            RequestType.DELETE: lambda r: self.delete(r.user, r.path),
            RequestType.RENAME: lambda r: self.rename(
                r.user, r.path, r.params.get("new_path", "")
            ),
            RequestType.ACL_SET: lambda r: self.acl_set(
                r.user, r.path, r.params.get("subject", ""), r.params.get("rights", "")
            ),
            RequestType.ACL_GET: lambda r: self.acl_get(r.user, r.path),
            RequestType.LOT_CREATE: self._exec_lot_create,
            RequestType.LOT_DELETE: self._exec_lot_delete,
            RequestType.LOT_RENEW: self._exec_lot_renew,
            RequestType.LOT_STAT: lambda r: self.lots.stat(r.params.get("lot_id", "")),
            RequestType.LOT_ATTACH: lambda r: self.lots.attach(
                r.params.get("lot_id", ""), r.path, owner=r.user
            ),
            RequestType.LOT_LIST: lambda r: self.lots.list_lots(owner=r.user),
        }.get(request.rtype)
        if handler is None:
            return Response(Status.BAD_REQUEST,
                            message=f"storage manager cannot execute {request.rtype}")
        try:
            with self._op(request.rtype.value, request.path):
                data = handler(request)
            return Response(Status.OK, data=data)
        except StorageError as exc:
            return Response(exc.status, message=exc.message)
        except LotError as exc:
            return Response(Status.NO_SPACE, message=str(exc))

    def _exec_lot_create(self, request: Request):
        if request.user == "anonymous":
            raise StorageError(Status.NOT_AUTHENTICATED,
                               "lot creation requires authentication")
        owner = request.params.get("owner") or request.user
        if owner.startswith("group:"):
            # Group lots: any member may create one for their group.
            members = self.groups.get(owner[len("group:"):], set())
            if request.user not in members and not self.root.acl.allows(
                request.user, "a"
            ):
                raise StorageError(
                    Status.DENIED, f"{request.user} not in {owner}"
                )
        elif owner != request.user:
            # Default lots for other users (including "anonymous") are
            # an administrator feature (paper, §5: "when system
            # administrators grant access to a NeST, they can
            # simultaneously make a set of default lots for users").
            self._check(self.root.acl, request.user, "a")
        lot = self.lots.create_lot(
            owner=owner,
            capacity=int(request.params.get("capacity", 0)),
            duration=float(request.params.get("duration", 0)),
        )
        return lot.describe()

    def _exec_lot_delete(self, request: Request):
        orphans = self.lots.delete_lot(request.params.get("lot_id", ""),
                                       owner=request.user)
        # Terminating a lot does not delete data (best-effort semantics
        # apply only on expiry); orphan paths are reported to the caller.
        return {"orphans": orphans}

    def _exec_lot_renew(self, request: Request):
        lot = self.lots.renew(
            request.params.get("lot_id", ""),
            float(request.params.get("duration", 0)),
            owner=request.user,
        )
        return lot.describe()
