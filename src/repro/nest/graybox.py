"""Gray-box estimation of the kernel buffer cache.

NeST cannot see inside the OS, but it observes every byte it reads and
writes; by shadowing those accesses through its own LRU model sized
like the kernel's cache, it can *predict* which files are resident
(Arpaci-Dusseau gray-box techniques; Burnett et al. for buffer caches
-- both cited by the paper).  The estimate feeds
:class:`repro.nest.scheduling.CacheAwareScheduler`.

The estimate is deliberately imperfect in the same ways the real
technique is: other processes' I/O is invisible, and the kernel's exact
replacement policy may differ -- tests exercise both divergences.
"""

from __future__ import annotations

from typing import Hashable

from repro.models.cache import BufferCache


class GrayBoxCacheModel:
    """NeST's shadow model of the kernel buffer cache."""

    def __init__(self, assumed_capacity_bytes: int, block_size: int = 8192):
        self._shadow = BufferCache(assumed_capacity_bytes, block_size)

    # -- observations (called on NeST's own I/O path) -----------------------
    def observe_read(self, path: Hashable, offset: int, nbytes: int) -> None:
        """Record that NeST read this range (kernel will have cached it)."""
        self._shadow.access_read(path, offset, nbytes)

    def observe_write(self, path: Hashable, offset: int, nbytes: int) -> None:
        """Record that NeST wrote this range."""
        self._shadow.access_write(path, offset, nbytes)

    def observe_delete(self, path: Hashable) -> None:
        """Record that the file is gone (kernel invalidates its blocks)."""
        self._shadow.invalidate_file(path)

    # -- predictions ----------------------------------------------------------
    def predict_residency(self, path: Hashable, size_bytes: int) -> float:
        """Estimated fraction of the file resident in the kernel cache."""
        return self._shadow.resident_fraction(path, size_bytes)

    def predict_resident(self, path: Hashable, size_bytes: int,
                         threshold: float = 0.9) -> bool:
        """Convenience: is the file (probably) fully cache-resident?"""
        return self.predict_residency(path, size_bytes) >= threshold

    @property
    def block_size(self) -> int:
        return self._shadow.block_size
