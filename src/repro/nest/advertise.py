"""ClassAd advertisement of resource and data availability.

"The dispatcher also periodically consolidates information about
resource and data availability in the NeST and can publish this
information as a ClassAd into a global scheduling system" (paper,
section 2.1).  A global execution manager then discovers NeSTs by
matchmaking request ads against these advertisements
(:mod:`repro.grid.discovery`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.classads import ClassAd
from repro.classads.parser import parse_expression

if TYPE_CHECKING:  # pragma: no cover
    from repro.nest.storage import StorageManager


def build_advertisement(
    name: str,
    storage: "StorageManager",
    protocols: list[str] | tuple[str, ...],
    host: str = "localhost",
    ports: dict[str, int] | None = None,
    health: dict[str, Any] | None = None,
) -> ClassAd:
    """Consolidate one NeST's state into its availability ClassAd.

    The ad carries the attributes a global scheduler needs: total and
    free space, space grantable as a new lot (free + reclaimable
    best-effort), the protocol list, and a standard Requirements
    expression accepting storage requests that fit.  ``health`` merges
    the live measured-performance block
    (:meth:`repro.obs.health.HealthMonitor.ad_attributes`) -- rolling
    throughput, queue depth, per-protocol error rates -- so
    matchmakers can rank NeSTs by what they are *doing*, not just what
    they could hold.
    """
    lots = storage.lots
    free_for_lot = lots.available_for_new_lot() + lots.reclaimable_bytes()
    ad = ClassAd(
        {
            "Type": "Storage",
            "Name": name,
            "Host": host,
            "Protocols": list(protocols),
            "TotalSpace": storage.capacity_bytes,
            "UsedSpace": storage.used_bytes,
            "FreeSpace": storage.capacity_bytes - storage.used_bytes,
            "GrantableSpace": free_for_lot,
            "ActiveLots": sum(
                1 for l in lots.lots.values() if l.state.value == "active"
            ),
            "FilesStored": _count_files(storage),
        }
    )
    if ports:
        for proto, port in ports.items():
            ad[f"{proto.capitalize()}Port"] = port
    if health:
        for attr, value in health.items():
            ad[attr] = value
    ad["Requirements"] = parse_expression(
        "other.Type == \"Request\" && other.RequestedSpace <= my.GrantableSpace"
    )
    return ad


def storage_request_ad(
    requested_space: int,
    protocol: str | None = None,
    rank: str = "other.GrantableSpace",
) -> ClassAd:
    """Build the request ad an execution manager submits for matching."""
    requirements = 'other.Type == "Storage"'
    if protocol:
        requirements += f' && member("{protocol}", other.Protocols)'
    ad = ClassAd({"Type": "Request", "RequestedSpace": int(requested_space)})
    ad["Requirements"] = parse_expression(requirements)
    ad["Rank"] = parse_expression(rank)
    return ad


def throughput_request_ad(
    requested_space: int,
    protocol: str | None = None,
) -> ClassAd:
    """A request ad ranking candidates by *measured* throughput.

    Uses the live-health ``ThroughputMBps`` attribute the appliance
    advertises, so the matchmaker prefers the NeST that is actually
    moving data fastest right now over the one with the most free
    space -- observed performance as the selection signal.
    """
    return storage_request_ad(
        requested_space, protocol=protocol, rank="other.ThroughputMBps"
    )


def _count_files(storage: "StorageManager") -> int:
    from repro.nest.storage import DirNode

    count = 0
    stack = [storage.root]
    while stack:
        node = stack.pop()
        for child in node.children.values():
            if isinstance(child, DirNode):
                stack.append(child)
            else:
                count += 1
    return count
