"""The live transfer manager: asynchronous data movement (paper, §4).

The transfer manager owns every on-going transfer: protocol handlers
``submit()`` storage-manager-approved tickets and block on
:meth:`Transfer.wait`; a scheduler thread dequeues one *quantum* at a
time in scheduler order (FCFS / stride / cache-aware -- the same pure
policy objects the simulated substrate uses) and dispatches the chunk
to the chosen concurrency executor:

* ``threads`` -- a pool of worker threads (chunks of different
  transfers proceed in parallel, overlapping disk and network);
* ``events`` -- a single-threaded executor (one chunk at a time,
  mirroring an event loop's serialization).

The ``processes`` model is available only on the simulated substrate:
live sockets cannot portably migrate into forked workers inside a test
suite (see DESIGN.md).  The adaptive selector is fed each transfer's
goodput, exactly as in :mod:`repro.simnest`.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, BinaryIO, Callable, Optional

from repro.obs import spans as _spans
from repro.obs.log import get_logger

logger = get_logger(__name__)

from repro.nest import io as fastio
from repro.nest.concurrency import EVENTS, THREADS, Selector, make_selector
from repro.nest.config import NestConfig
from repro.nest.scheduling import Scheduler, TransferJob, make_job, make_scheduler

#: Per-transfer pumping strategies, chosen once at submission and
#: never mixed mid-stream (mixing buffered reads with descriptor-level
#: sendfile would desynchronize the fd offset from the buffer).
SENDFILE = "sendfile"
POOLED = "pooled"
LEGACY = "legacy"


class TransferError(Exception):
    """A transfer failed mid-flight (stream error, short read...)."""


class Transfer:
    """One scheduled data movement between two byte streams."""

    def __init__(
        self,
        job: TransferJob,
        source: BinaryIO,
        sink: BinaryIO,
        total: int,
        model: str,
        on_done: Optional[Callable[["Transfer"], None]] = None,
        span: Optional["_spans.Span"] = None,
    ):
        self.job = job
        self.source = source
        self.sink = sink
        self.total = total
        self.model = model
        self.on_done = on_done
        self.moved = 0
        self.error: Optional[BaseException] = None
        #: error raised by the ``on_done`` callback itself, if any --
        #: kept separate so it never masks the transfer's own outcome.
        self.callback_error: Optional[BaseException] = None
        self.started_at = time.monotonic()
        #: parent request span, when the submitter is being traced --
        #: queue-wait and transfer children are attached retroactively
        #: because pumping crosses worker threads.
        self.span = span
        self.submitted_wall = time.time()
        self.dispatched_at: Optional[float] = None
        self.dispatched_wall: Optional[float] = None
        self._finished = threading.Event()
        #: incremental CRC32 of the bytes moved, or None when the
        #: transfer went (even partly) through sendfile -- those bytes
        #: never surface into Python, so there is nothing to fold.
        self.crc: Optional[int] = 0
        self._buffer: Optional[bytearray] = None
        self._view: Optional[memoryview] = None
        self.strategy = self._choose_strategy()

    def _choose_strategy(self) -> str:
        """Pick the pumping strategy for this source/sink pair.

        ``sendfile`` needs a real descriptor on *both* ends -- checked
        at class level so fault-injection wrappers (which forward
        ``fileno`` via ``__getattr__``) stay on the honest read/write
        path.  ``pooled`` needs only a class-level ``readinto`` on the
        source.  Everything else (wrapped streams, odd file-likes)
        takes the legacy read/write loop, byte-for-byte as before.
        """
        if (fastio.sendfile_available and self.total > 0
                and fastio.real_fileno(self.source) is not None
                and fastio.real_fileno(self.sink) is not None):
            try:
                # sendfile writes at the descriptor; drain any
                # buffered protocol header first so ordering holds.
                self.sink.flush()
                return SENDFILE
            except (OSError, ValueError):
                pass
        if fastio.supports_readinto(self.source):
            return POOLED
        return LEGACY

    # -- worker side -------------------------------------------------------
    def pump_chunk(self, nbytes: int) -> int:
        """Move up to ``nbytes``; returns bytes moved (0 at EOF)."""
        want = nbytes if self.total < 0 else min(nbytes, self.total - self.moved)
        if want <= 0:
            return 0
        if self.strategy == SENDFILE:
            moved = self._pump_sendfile(want)
            if moved is not None:
                return moved
            # fell through: sendfile refused this pair; demoted.
        if self.strategy == POOLED:
            return self._pump_pooled(want)
        return self._pump_legacy(want)

    def _pump_sendfile(self, want: int) -> Optional[int]:
        try:
            sent = fastio.sendfile(self.sink.fileno(), self.source.fileno(),
                                   want)
        except OSError:
            # Descriptor pair sendfile cannot serve (or a stalled
            # socket): demote permanently; the buffered paths resume
            # from the current descriptor offsets.
            self.strategy = (POOLED if fastio.supports_readinto(self.source)
                             else LEGACY)
            return None
        if not sent:
            if self.moved < self.total:
                raise TransferError(
                    f"source ended {self.total - self.moved} bytes early"
                )
            return 0
        self.crc = None
        self.moved += sent
        return sent

    def _pump_pooled(self, want: int) -> int:
        if self._buffer is None:
            self._buffer = fastio.DEFAULT_POOL.acquire()
            self._view = memoryview(self._buffer)
        view = self._view
        moved_now = 0
        while moved_now < want:
            step = min(len(view), want - moved_now)
            got = self.source.readinto(view[:step])
            if not got:
                break
            chunk = view[:got]
            if self.crc is not None:
                self.crc = zlib.crc32(chunk, self.crc)
            self.sink.write(chunk)
            self.moved += got
            moved_now += got
            fastio.COUNTERS.count_fallback(got, self.crc is not None)
        if not moved_now and self.total >= 0 and self.moved < self.total:
            raise TransferError(
                f"source ended {self.total - self.moved} bytes early"
            )
        return moved_now

    def _pump_legacy(self, want: int) -> int:
        data = self.source.read(want)
        if not data:
            if self.total >= 0 and self.moved < self.total:
                raise TransferError(
                    f"source ended {self.total - self.moved} bytes early"
                )
            return 0
        if self.crc is not None:
            self.crc = zlib.crc32(data, self.crc)
        self.sink.write(data)
        self.moved += len(data)
        fastio.COUNTERS.count_fallback(len(data), self.crc is not None)
        return len(data)

    def _release_buffer(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._buffer is not None:
            fastio.DEFAULT_POOL.release(self._buffer)
            self._buffer = None

    @property
    def done(self) -> bool:
        if self.error is not None:
            return True
        if self.total >= 0:
            return self.moved >= self.total
        return self._finished.is_set()

    # -- waiter side -------------------------------------------------------
    def wait(self, timeout: float | None = 30.0) -> int:
        """Block until the transfer completes; returns bytes moved.

        Raises the transfer's error, or :exc:`TransferError` on timeout.
        """
        if not self._finished.wait(timeout):
            raise TransferError("transfer timed out")
        if self.error is not None:
            raise self.error
        return self.moved

    def _finish(self, error: BaseException | None = None) -> None:
        if error is not None:
            self.error = error
        self._release_buffer()
        # Run the completion callback before releasing waiters, so a
        # waiter that returns from wait() observes its side effects
        # (including callback_error).
        if self.on_done:
            try:
                self.on_done(self)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # A broken completion callback must not kill the
                # scheduler worker, but it must not vanish either: the
                # waiter can inspect it, and it goes to the log.
                self.callback_error = exc
                logger.warning(
                    "transfer on_done callback failed for %s: %r",
                    self.job.path or self.job.protocol, exc,
                )
        self._finished.set()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started_at


class TransferManager:
    """Schedules and executes transfers under one NestConfig."""

    def __init__(self, config: NestConfig, residency=None, obs=None):
        config.validate()
        self.config = config
        #: optional repro.obs.Observability bundle; when present every
        #: transfer feeds the metrics registry, the health monitor's
        #: rolling throughput, and (for traced requests) queue-wait and
        #: transfer child spans.
        self.obs = obs
        if obs is not None:
            reg = obs.registry
            self._m_bytes = reg.counter(
                "nest_transfer_bytes_total",
                "Bytes moved through the transfer manager.", ("protocol",))
            self._m_transfers = reg.counter(
                "nest_transfers_total",
                "Transfers completed.", ("protocol", "outcome"))
            self._m_failures = reg.counter(
                "nest_transfer_failures_total",
                "Transfer failures by cause.", ("protocol", "cause"))
            self._m_seconds = reg.histogram(
                "nest_transfer_seconds",
                "Transfer duration, submit to completion.", ("protocol",))
            self._m_queue_wait = reg.histogram(
                "nest_queue_wait_seconds",
                "Time from submit to first scheduler dispatch.",
                ("protocol",))
            reg.gauge_callback("nest_transfer_queue_depth", self.queue_depth,
                               "Transfers waiting for a scheduler grant.")
            reg.gauge_callback("nest_transfers_in_flight", self.in_flight,
                               "Transfer quanta currently executing.")
            reg.gauge_callback("nest_transfer_failure_ring",
                               lambda: len(self._failures),
                               "Failure causes currently retained.")
            fastio.register_metrics(reg)
        self.scheduler: Scheduler = make_scheduler(
            config.scheduling,
            shares=config.shares,
            residency=residency or (lambda path, size: 0.0),
            work_conserving=config.work_conserving,
            share_by=config.share_by,
        )
        models = [m for m in config.concurrency_models if m != "processes"]
        if not models:
            models = [THREADS]
        self.selector: Selector = make_selector(
            config.concurrency if config.concurrency != "processes" else THREADS,
            models=models,
        )
        self._threads_pool = ThreadPoolExecutor(
            max_workers=max(2, config.transfer_workers),
            thread_name_prefix="nest-xfer",
        )
        #: single-threaded: the live analogue of an event loop.
        self._events_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="nest-events"
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: dict[int, Transfer] = {}
        #: ring of recent per-transfer failure causes (newest last);
        #: each entry is timestamped ("at", epoch seconds) and the
        #: bound is the administrator's ``config.failure_history``.
        self._failures: deque[dict[str, Any]] = deque(
            maxlen=config.failure_history)
        self._in_flight = 0
        self._enqueue_seq = 0
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nest-xfer-sched", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        source: BinaryIO,
        sink: BinaryIO,
        total: int,
        protocol: str,
        user: str = "anonymous",
        path: str = "",
        on_done: Optional[Callable[[Transfer], None]] = None,
        span: Optional["_spans.Span"] = None,
    ) -> Transfer:
        """Queue a transfer; returns immediately (asynchronous).

        ``span`` (or, failing that, the submitting thread's active
        span) becomes the parent of the retroactive queue-wait and
        transfer child spans.
        """
        model = self.selector.choose()
        job = make_job(protocol, user=user, path=path, total_bytes=total)
        transfer = Transfer(job, source, sink, total, model, on_done=on_done,
                            span=span or _spans.current_span())
        with self._lock:
            self.scheduler.add(job)
            self._enqueue_seq += 1
            job.enqueue_seq = self._enqueue_seq
            job.ready = True
            job.available = total if total >= 0 else 1 << 62
            self._pending[job.job_id] = transfer
            self._wakeup.notify()
        return transfer

    def transfer_sync(self, *args, timeout: float | None = 60.0, **kwargs) -> int:
        """Submit and wait; returns bytes moved (handler convenience)."""
        return self.submit(*args, **kwargs).wait(timeout)

    def failures(self) -> list[dict[str, Any]]:
        """Recent transfer failures, oldest first.

        Each entry records protocol, user, path, bytes moved vs.
        expected, the error, and a timestamp ("at", epoch seconds) --
        the manageability counterpart of the paper's "storage
        appliances must be observable": a failed transfer leaves a
        cause an operator can read, not just a closed socket.  The
        ring keeps the most recent ``config.failure_history`` entries;
        its live size and per-cause totals are also registry metrics.
        """
        with self._lock:
            return list(self._failures)

    def queue_depth(self) -> int:
        """Transfers enqueued and awaiting a scheduler grant."""
        with self._lock:
            return sum(1 for t in self._pending.values() if t.job.ready)

    def in_flight(self) -> int:
        """Transfer quanta currently executing on a worker."""
        with self._lock:
            return self._in_flight

    def shutdown(self) -> None:
        """Stop the scheduler thread and fail whatever it abandons.

        Every pending transfer is finished with a typed
        ``TransferError("manager shut down")`` so waiters unblock
        immediately instead of sitting out their full ``wait()``
        timeout, and pooled buffers go back to ``DEFAULT_POOL``.
        Queued transfers (never dispatched) are failed here; quanta
        already on a worker notice ``_running`` is down when they
        return and fail their transfer the same way instead of
        re-enqueueing it.
        """
        with self._lock:
            self._running = False
            self._wakeup.notify_all()
        self._dispatcher.join(timeout=5)
        error = TransferError("manager shut down")
        with self._lock:
            # ready=True means "awaiting a scheduler grant": with the
            # dispatcher dead these would never run.  ready=False means
            # a quantum is in flight; _run_quantum owns that finish.
            doomed = [t for t in self._pending.values() if t.job.ready]
            for transfer in doomed:
                self.scheduler.remove(transfer.job)
                self._pending.pop(transfer.job.job_id, None)
                self._failures.append({
                    "protocol": transfer.job.protocol,
                    "user": transfer.job.user,
                    "path": transfer.job.path,
                    "moved": transfer.moved,
                    "total": transfer.total,
                    "error": error,
                    "at": time.time(),
                })
        for transfer in doomed:
            self._observe_finish(transfer, error)
            transfer._finish(error)
        self._threads_pool.shutdown(wait=False)
        self._events_pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # scheduling loop
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while self._running and not self._dispatchable_locked():
                    self._wakeup.wait(timeout=0.2)
                if not self._running:
                    return
                job = self.scheduler.select()
                if job is None or job.job_id not in self._pending:
                    # Non-work-conserving idling: wait briefly, then
                    # grant the best ready job anyway.
                    self._wakeup.wait(timeout=0.002)
                    job = self._best_ready_locked()
                    if job is None:
                        continue
                transfer = self._pending[job.job_id]
                job.ready = False
                self._in_flight += 1
                # Solo transfers get burst-sized grants: nothing else
                # is ready or in flight, so a big quantum costs no
                # fairness and saves hundreds of arbitration passes.
                # Any contention at all keeps the configured quantum.
                if (self._in_flight == 1
                        and not any(t.job.ready
                                    for t in self._pending.values())):
                    grant = self.config.burst_bytes
                else:
                    grant = self.config.quantum_bytes
            if transfer.dispatched_at is None:
                # First grant: the interval since submit is this
                # transfer's queue-wait, recorded as a retroactive
                # child span plus a histogram observation.
                transfer.dispatched_at = time.perf_counter()
                transfer.dispatched_wall = time.time()
                waited = transfer.dispatched_wall - transfer.submitted_wall
                if self.obs is not None:
                    self._m_queue_wait.observe(max(waited, 0.0),
                                               protocol=job.protocol)
                if transfer.span is not None:
                    transfer.span.child_at(
                        "queue", transfer.submitted_wall, max(waited, 0.0),
                        protocol=job.protocol)
            executor = (
                self._events_pool if transfer.model == EVENTS else self._threads_pool
            )
            executor.submit(self._run_quantum, transfer, grant)

    def _dispatchable_locked(self) -> bool:
        return (
            self._in_flight < self.config.transfer_workers
            and any(t.job.ready for t in self._pending.values())
        )

    def _best_ready_locked(self) -> TransferJob | None:
        ready = [t.job for t in self._pending.values() if t.job.ready]
        if not ready:
            return None
        return min(ready, key=lambda j: (j.pass_value, j.enqueue_seq))

    def _run_quantum(self, transfer: Transfer,
                     nbytes: int | None = None) -> None:
        job = transfer.job
        moved = 0
        error: BaseException | None = None
        try:
            moved = transfer.pump_chunk(nbytes or self.config.quantum_bytes)
        except BaseException as exc:  # noqa: BLE001 - reported to waiter
            error = exc
        finished = error is not None or (
            transfer.done if moved else True  # EOF counts as done
        )
        obs = self.obs
        if obs is not None and moved:
            self._m_bytes.inc(moved, protocol=job.protocol)
            obs.health.record_bytes(moved)
        with self._lock:
            self._in_flight -= 1
            self.scheduler.charge(job, moved)
            if not finished and not self._running:
                # The manager shut down while this quantum was out:
                # re-enqueueing would strand the transfer (no
                # dispatcher will ever grant it again), so fail it
                # typed -- same contract as shutdown()'s queued sweep.
                error = TransferError("manager shut down")
                finished = True
            if finished:
                self.scheduler.remove(job)
                self._pending.pop(job.job_id, None)
                if error is not None:
                    self._failures.append({
                        "protocol": job.protocol,
                        "user": job.user,
                        "path": job.path,
                        "moved": transfer.moved,
                        "total": transfer.total,
                        "error": error,
                        "at": time.time(),
                    })
            else:
                self._enqueue_seq += 1
                job.enqueue_seq = self._enqueue_seq
                job.ready = True
            self._wakeup.notify()
        if finished:
            self.selector.report(
                transfer.model, max(transfer.moved, 1), max(transfer.elapsed, 1e-6)
            )
            self._observe_finish(transfer, error)
            transfer._finish(error)

    def _observe_finish(self, transfer: Transfer,
                        error: BaseException | None) -> None:
        """Publish one completed transfer's telemetry."""
        obs = self.obs
        if obs is not None:
            outcome = "error" if error is not None else "ok"
            protocol = transfer.job.protocol
            self._m_transfers.inc(1, protocol=protocol, outcome=outcome)
            self._m_seconds.observe(transfer.elapsed, protocol=protocol)
            if error is not None:
                self._m_failures.inc(1, protocol=protocol,
                                     cause=type(error).__name__)
        if transfer.span is not None:
            start = transfer.dispatched_wall or transfer.submitted_wall
            reference = transfer.dispatched_at
            pumped = (time.perf_counter() - reference
                      if reference is not None else 0.0)
            child = transfer.span.child_at(
                "transfer", start, max(pumped, 0.0),
                protocol=transfer.job.protocol, bytes=transfer.moved,
                model=transfer.model)
            if error is not None:
                child.status = "error"
                child.set(error=type(error).__name__)
