"""The live transfer manager: asynchronous data movement (paper, §4).

The transfer manager owns every on-going transfer: protocol handlers
``submit()`` storage-manager-approved tickets and block on
:meth:`Transfer.wait`; a scheduler thread dequeues one *quantum* at a
time in scheduler order (FCFS / stride / cache-aware -- the same pure
policy objects the simulated substrate uses) and dispatches the chunk
to the chosen concurrency executor:

* ``threads`` -- a pool of worker threads (chunks of different
  transfers proceed in parallel, overlapping disk and network);
* ``events`` -- a single-threaded executor (one chunk at a time,
  mirroring an event loop's serialization).

The ``processes`` model is available only on the simulated substrate:
live sockets cannot portably migrate into forked workers inside a test
suite (see DESIGN.md).  The adaptive selector is fed each transfer's
goodput, exactly as in :mod:`repro.simnest`.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, BinaryIO, Callable, Optional

logger = logging.getLogger(__name__)

from repro.nest.concurrency import EVENTS, THREADS, Selector, make_selector
from repro.nest.config import NestConfig
from repro.nest.scheduling import Scheduler, TransferJob, make_job, make_scheduler


class TransferError(Exception):
    """A transfer failed mid-flight (stream error, short read...)."""


class Transfer:
    """One scheduled data movement between two byte streams."""

    def __init__(
        self,
        job: TransferJob,
        source: BinaryIO,
        sink: BinaryIO,
        total: int,
        model: str,
        on_done: Optional[Callable[["Transfer"], None]] = None,
    ):
        self.job = job
        self.source = source
        self.sink = sink
        self.total = total
        self.model = model
        self.on_done = on_done
        self.moved = 0
        self.error: Optional[BaseException] = None
        #: error raised by the ``on_done`` callback itself, if any --
        #: kept separate so it never masks the transfer's own outcome.
        self.callback_error: Optional[BaseException] = None
        self.started_at = time.monotonic()
        self._finished = threading.Event()

    # -- worker side -------------------------------------------------------
    def pump_chunk(self, nbytes: int) -> int:
        """Move up to ``nbytes``; returns bytes moved (0 at EOF)."""
        want = nbytes if self.total < 0 else min(nbytes, self.total - self.moved)
        if want <= 0:
            return 0
        data = self.source.read(want)
        if not data:
            if self.total >= 0 and self.moved < self.total:
                raise TransferError(
                    f"source ended {self.total - self.moved} bytes early"
                )
            return 0
        self.sink.write(data)
        self.moved += len(data)
        return len(data)

    @property
    def done(self) -> bool:
        if self.error is not None:
            return True
        if self.total >= 0:
            return self.moved >= self.total
        return self._finished.is_set()

    # -- waiter side -------------------------------------------------------
    def wait(self, timeout: float | None = 30.0) -> int:
        """Block until the transfer completes; returns bytes moved.

        Raises the transfer's error, or :exc:`TransferError` on timeout.
        """
        if not self._finished.wait(timeout):
            raise TransferError("transfer timed out")
        if self.error is not None:
            raise self.error
        return self.moved

    def _finish(self, error: BaseException | None = None) -> None:
        if error is not None:
            self.error = error
        # Run the completion callback before releasing waiters, so a
        # waiter that returns from wait() observes its side effects
        # (including callback_error).
        if self.on_done:
            try:
                self.on_done(self)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # A broken completion callback must not kill the
                # scheduler worker, but it must not vanish either: the
                # waiter can inspect it, and it goes to the log.
                self.callback_error = exc
                logger.warning(
                    "transfer on_done callback failed for %s: %r",
                    self.job.path or self.job.protocol, exc,
                )
        self._finished.set()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started_at


class TransferManager:
    """Schedules and executes transfers under one NestConfig."""

    def __init__(self, config: NestConfig, residency=None):
        config.validate()
        self.config = config
        self.scheduler: Scheduler = make_scheduler(
            config.scheduling,
            shares=config.shares,
            residency=residency or (lambda path, size: 0.0),
            work_conserving=config.work_conserving,
            share_by=config.share_by,
        )
        models = [m for m in config.concurrency_models if m != "processes"]
        if not models:
            models = [THREADS]
        self.selector: Selector = make_selector(
            config.concurrency if config.concurrency != "processes" else THREADS,
            models=models,
        )
        self._threads_pool = ThreadPoolExecutor(
            max_workers=max(2, config.transfer_workers),
            thread_name_prefix="nest-xfer",
        )
        #: single-threaded: the live analogue of an event loop.
        self._events_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="nest-events"
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: dict[int, Transfer] = {}
        #: ring of recent per-transfer failure causes (newest last).
        self._failures: deque[dict[str, Any]] = deque(maxlen=64)
        self._in_flight = 0
        self._enqueue_seq = 0
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="nest-xfer-sched", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        source: BinaryIO,
        sink: BinaryIO,
        total: int,
        protocol: str,
        user: str = "anonymous",
        path: str = "",
        on_done: Optional[Callable[[Transfer], None]] = None,
    ) -> Transfer:
        """Queue a transfer; returns immediately (asynchronous)."""
        model = self.selector.choose()
        job = make_job(protocol, user=user, path=path, total_bytes=total)
        transfer = Transfer(job, source, sink, total, model, on_done=on_done)
        with self._lock:
            self.scheduler.add(job)
            self._enqueue_seq += 1
            job.enqueue_seq = self._enqueue_seq
            job.ready = True
            job.available = total if total >= 0 else 1 << 62
            self._pending[job.job_id] = transfer
            self._wakeup.notify()
        return transfer

    def transfer_sync(self, *args, timeout: float | None = 60.0, **kwargs) -> int:
        """Submit and wait; returns bytes moved (handler convenience)."""
        return self.submit(*args, **kwargs).wait(timeout)

    def failures(self) -> list[dict[str, Any]]:
        """Recent transfer failures, oldest first.

        Each entry records protocol, user, path, bytes moved vs.
        expected, and the error -- the manageability counterpart of the
        paper's "storage appliances must be observable": a failed
        transfer leaves a cause an operator can read, not just a closed
        socket.
        """
        with self._lock:
            return list(self._failures)

    def shutdown(self) -> None:
        """Stop the scheduler thread and executors."""
        with self._lock:
            self._running = False
            self._wakeup.notify_all()
        self._dispatcher.join(timeout=5)
        self._threads_pool.shutdown(wait=False)
        self._events_pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # scheduling loop
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while self._running and not self._dispatchable_locked():
                    self._wakeup.wait(timeout=0.2)
                if not self._running:
                    return
                job = self.scheduler.select()
                if job is None or job.job_id not in self._pending:
                    # Non-work-conserving idling: wait briefly, then
                    # grant the best ready job anyway.
                    self._wakeup.wait(timeout=0.002)
                    job = self._best_ready_locked()
                    if job is None:
                        continue
                transfer = self._pending[job.job_id]
                job.ready = False
                self._in_flight += 1
            executor = (
                self._events_pool if transfer.model == EVENTS else self._threads_pool
            )
            executor.submit(self._run_quantum, transfer)

    def _dispatchable_locked(self) -> bool:
        return (
            self._in_flight < self.config.transfer_workers
            and any(t.job.ready for t in self._pending.values())
        )

    def _best_ready_locked(self) -> TransferJob | None:
        ready = [t.job for t in self._pending.values() if t.job.ready]
        if not ready:
            return None
        return min(ready, key=lambda j: (j.pass_value, j.enqueue_seq))

    def _run_quantum(self, transfer: Transfer) -> None:
        job = transfer.job
        moved = 0
        error: BaseException | None = None
        try:
            moved = transfer.pump_chunk(self.config.quantum_bytes)
        except BaseException as exc:  # noqa: BLE001 - reported to waiter
            error = exc
        finished = error is not None or (
            transfer.done if moved else True  # EOF counts as done
        )
        with self._lock:
            self._in_flight -= 1
            self.scheduler.charge(job, moved)
            if finished:
                self.scheduler.remove(job)
                self._pending.pop(job.job_id, None)
                if error is not None:
                    self._failures.append({
                        "protocol": job.protocol,
                        "user": job.user,
                        "path": job.path,
                        "moved": transfer.moved,
                        "total": transfer.total,
                        "error": error,
                        "at": time.time(),
                    })
            else:
                self._enqueue_seq += 1
                job.enqueue_seq = self._enqueue_seq
                job.ready = True
            self._wakeup.notify()
        if finished:
            self.selector.report(
                transfer.model, max(transfer.moved, 1), max(transfer.elapsed, 1e-6)
            )
            transfer._finish(error)
