"""IBP depot support inside NeST: allocations mapped onto lots.

The paper's §8 comparison writes itself into this design: "IBP
reservations are allocations for byte arrays" while "lots in NeST
provide the same functionality with more client flexibility"; IBP's
*volatile* allocations "are analogous to" NeST's best-effort lots.  So
NeST serves IBP by translation:

* a **stable** allocation becomes an ACTIVE lot of the allocation's
  size and duration -- the space guarantee is the lot's;
* a **volatile** allocation becomes a lot that is *immediately*
  best-effort: the data persists until some new guarantee reclaims the
  space, which is exactly IBP's volatile semantics;
* each allocation owns a hidden backing file, and a synthetic user
  identity (``ibp:<alloc-id>``) ties the file's charges to exactly its
  lot.

Capabilities are unguessable secrets; possession is authorization
(IBP's trust model -- no GSI here, matching how IBP depots worked).
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.nest.lots import LotError
from repro.nest.storage import StorageError, StorageManager
from repro.protocols.ibp import (
    MANAGE,
    READ,
    STABLE,
    VOLATILE,
    WRITE,
    Capability,
    IbpError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.ibp import ALLOCATION_TYPES  # noqa: F401

#: Namespace directory for allocation backing files.
IBP_ROOT = "/.ibp"


class _IbpIdentities(set):
    """A virtual group: every ``ibp:<alloc>`` identity is a member."""

    def __contains__(self, user: object) -> bool:
        return isinstance(user, str) and user.startswith("ibp:")


@dataclass
class Allocation:
    """One live IBP allocation on this depot."""

    alloc_id: str
    size: int
    atype: str
    secrets: dict[str, str]  #: kind -> secret
    lot_id: str
    path: str
    used: int = 0
    refcount: int = 1

    @property
    def owner(self) -> str:
        return f"ibp:{self.alloc_id}"


class IbpDepot:
    """Allocation registry + translation onto the storage manager."""

    def __init__(self, storage: StorageManager, host: str = "localhost"):
        self.storage = storage
        self.host = host
        self._lock = threading.RLock()
        self._allocations: dict[str, Allocation] = {}
        self._ids = itertools.count(1)
        self._ensure_root()

    def _ensure_root(self) -> None:
        if not self.storage.exists(IBP_ROOT):
            self.storage.mkdir("admin", IBP_ROOT)
            # Backing files are reachable only through capabilities: no
            # rights for anonymous; full data rights for the synthetic
            # per-allocation identities (a virtual group whose members
            # are exactly the "ibp:*" users).
            self.storage.acl_set("admin", IBP_ROOT, "*", "none")
            self.storage.groups["ibp"] = _IbpIdentities()
            self.storage.acl_set("admin", IBP_ROOT, "group:ibp", "rwid")

    # ------------------------------------------------------------------
    # capability checking
    # ------------------------------------------------------------------
    def _resolve(self, cap: Capability, kind: str) -> Allocation:
        with self._lock:
            alloc = self._allocations.get(cap.alloc_id)
        if alloc is None:
            raise IbpError("no-allocation", cap.alloc_id)
        if cap.kind != kind or alloc.secrets.get(kind) != cap.secret:
            raise IbpError("bad-capability", f"not a valid {kind} capability")
        # Volatile data may have been reclaimed under space pressure.
        if not self.storage.exists(alloc.path) and alloc.used > 0:
            with self._lock:
                self._allocations.pop(alloc.alloc_id, None)
            raise IbpError("reclaimed", "volatile allocation was reclaimed")
        return alloc

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def allocate(self, size: int, duration: float, atype: str) -> Allocation:
        """Create an allocation; returns it with fresh capabilities."""
        if size <= 0:
            raise IbpError("bad-size", str(size))
        if duration <= 0:
            raise IbpError("bad-duration", str(duration))
        if atype not in (STABLE, VOLATILE):
            raise IbpError("bad-type", atype)
        alloc_id = f"a{next(self._ids)}"
        owner = f"ibp:{alloc_id}"
        try:
            # A stable allocation is a space guarantee (an ACTIVE lot);
            # a volatile one is a reclaimable lot -- the §8 analogy
            # between IBP volatility and NeST's best-effort semantics.
            lot = self.storage.lots.create_lot(
                owner, size, duration, volatile=(atype == VOLATILE)
            )
        except LotError as exc:
            raise IbpError("no-space", str(exc)) from exc
        path = f"{IBP_ROOT}/{alloc_id}"
        ticket = self.storage.approve_put("admin", path, 0)
        ticket.settle(0)
        alloc = Allocation(
            alloc_id=alloc_id,
            size=size,
            atype=atype,
            secrets={kind: os.urandom(12).hex()
                     for kind in (READ, WRITE, MANAGE)},
            lot_id=lot.lot_id,
            path=path,
        )
        with self._lock:
            self._allocations[alloc_id] = alloc
        return alloc

    def capability(self, alloc: Allocation, kind: str) -> str:
        """Render one of the allocation's capability strings."""
        return Capability(self.host, alloc.alloc_id,
                          alloc.secrets[kind], kind).render()

    def store(self, cap: Capability, data: bytes) -> int:
        """Append ``data`` (IBP stores are appends); returns new used."""
        alloc = self._resolve(cap, WRITE)
        with self._lock:
            if alloc.used + len(data) > alloc.size:
                raise IbpError(
                    "over-allocation",
                    f"{alloc.used}+{len(data)} > {alloc.size}",
                )
            offset = alloc.used
            alloc.used += len(data)
        try:
            ticket = self.storage.approve_write(alloc.owner, alloc.path,
                                                offset, len(data))
        except StorageError as exc:
            with self._lock:
                alloc.used = offset
            raise IbpError("no-space", exc.message) from exc
        ticket.stream.write(data)
        ticket.settle(len(data))
        return alloc.used

    def load(self, cap: Capability, offset: int, nbytes: int) -> bytes:
        """Read a range of the allocation."""
        alloc = self._resolve(cap, READ)
        if offset < 0 or offset > alloc.used:
            raise IbpError("bad-offset", str(offset))
        nbytes = min(nbytes, alloc.used - offset)
        if nbytes <= 0:
            return b""
        ticket = self.storage.approve_read(alloc.owner, alloc.path,
                                           offset, nbytes)
        try:
            return ticket.stream.read(nbytes)
        finally:
            ticket.settle(nbytes)

    def probe(self, cap: Capability) -> dict:
        """Manage op: allocation status."""
        alloc = self._resolve(cap, MANAGE)
        lot = self.storage.lots.lots.get(alloc.lot_id)
        expires = lot.expires_at if lot else 0.0
        return {
            "size": alloc.size,
            "used": alloc.used,
            "expires_at": expires,
            "type": alloc.atype,
            "refcount": alloc.refcount,
        }

    def extend(self, cap: Capability, duration: float) -> float:
        """Manage op: extend a *stable* allocation's duration.

        The §8 observation holds by construction: a volatile (=
        best-effort) allocation cannot be promoted back to stable --
        "there does not appear to be a mechanism in IBP for switching
        an allocation from permanent to volatile" and NeST lots only
        flow the other way.
        """
        alloc = self._resolve(cap, MANAGE)
        if alloc.atype == VOLATILE:
            raise IbpError("is-volatile", "cannot extend a volatile allocation")
        try:
            lot = self.storage.lots.renew(alloc.lot_id, duration)
        except LotError as exc:
            raise IbpError("no-space", str(exc)) from exc
        return lot.expires_at

    def increment(self, cap: Capability) -> int:
        """Manage op: add a reference."""
        alloc = self._resolve(cap, MANAGE)
        with self._lock:
            alloc.refcount += 1
            return alloc.refcount

    def decrement(self, cap: Capability) -> int:
        """Manage op: drop a reference; at zero the allocation dies."""
        alloc = self._resolve(cap, MANAGE)
        with self._lock:
            alloc.refcount -= 1
            remaining = alloc.refcount
            if remaining <= 0:
                self._allocations.pop(alloc.alloc_id, None)
        if remaining <= 0:
            try:
                self.storage.lots.delete_lot(alloc.lot_id)
            except LotError:
                pass
            try:
                self.storage.delete("admin", alloc.path)
            except StorageError:
                pass
        return max(remaining, 0)

    def status(self) -> dict:
        """Depot-level numbers for the ``status`` command."""
        with self._lock:
            volatile = sum(1 for a in self._allocations.values()
                           if a.atype == VOLATILE)
            return {
                "total": self.storage.capacity_bytes,
                "used": self.storage.used_bytes,
                "volatile": volatile,
            }
