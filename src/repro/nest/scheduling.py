"""Transfer-manager scheduling policies (paper, section 4.2).

The transfer manager controls *all* on-going requests, so it can
reorder them: the paper implements FCFS, **proportional-share stride
scheduling** across protocol classes with *byte-based* strides, and
**cache-aware** scheduling using a gray-box estimate of the kernel
buffer cache.  Because these policies are pure data structures here,
the identical code drives the live threaded server and the simulated
substrate -- the reproduction's embodiment of the paper's observation
that one transfer-manager optimization serves every protocol at once.

Model: a :class:`TransferJob` is one data stream (one whole-file get,
or one NFS connection's flow of block requests).  A *pump* (a worker in
some concurrency model) repeatedly asks the scheduler to
:meth:`~Scheduler.select` the next ready job, moves one quantum of its
bytes, and reports the amount via :meth:`~Scheduler.charge`.

Byte-based strides: "an NFS client who reads a large file in its
entirety issues multiple requests while an HTTP client reading the same
file issues only one; therefore ... the transfer manager schedules NFS
requests N times more frequently, where N is the ratio between the
average file size and the NFS block size."  Charging *bytes moved*
against the job's pass value achieves exactly this: a job's progress
through the schedule is proportional to bandwidth received, regardless
of how its protocol frames requests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: The classic stride constant (Waldspurger & Weihl); any large number.
STRIDE1 = 1 << 20


@dataclass
class TransferJob:
    """One scheduled data stream.

    ``ready`` is maintained by the harness: a whole-file job is ready
    until it completes; a block-based (NFS) job is ready only while a
    client request is outstanding.  ``available`` caps the next quantum
    (e.g. to the pending NFS block size).
    """

    job_id: int
    protocol: str
    user: str = "anonymous"
    path: str = ""
    total_bytes: int = -1  #: -1 = unknown until EOF
    bytes_moved: int = 0
    ready: bool = True
    available: int = 1 << 62  #: bytes movable right now
    arrival_seq: int = 0

    # scheduler bookkeeping (owned by the scheduler, not the harness)
    tickets: int = 1
    pass_value: float = 0.0
    remaining_estimate: float = float("inf")
    enqueue_seq: int = 0  #: stamped by the pump gate per service request


_seq = itertools.count()


def make_job(protocol: str, **kwargs) -> TransferJob:
    """Create a job with a fresh id and arrival sequence number."""
    n = next(_seq)
    kwargs.setdefault("arrival_seq", n)
    return TransferJob(job_id=n, protocol=protocol, **kwargs)


class Scheduler:
    """Interface all transfer schedulers implement."""

    name = "base"

    def add(self, job: TransferJob) -> None:
        """Register a new job."""
        raise NotImplementedError

    def remove(self, job: TransferJob) -> None:
        """Unregister a completed/aborted job."""
        raise NotImplementedError

    def select(self, now: float = 0.0) -> Optional[TransferJob]:
        """Pick the next job to receive a quantum, or None to idle.

        Returning None when ready jobs exist is allowed only for
        non-work-conserving policies (the harness will wait briefly and
        retry).
        """
        raise NotImplementedError

    def charge(self, job: TransferJob, nbytes: int) -> None:
        """Account ``nbytes`` actually moved for ``job``."""
        job.bytes_moved += nbytes

    def has_ready(self) -> bool:
        """True if any registered job is ready."""
        raise NotImplementedError

    def depth(self) -> int:
        """Number of registered jobs (the scheduler's queue depth)."""
        jobs = getattr(self, "_jobs", None)
        return len(jobs) if jobs is not None else 0


class FCFSScheduler(Scheduler):
    """First-come first-served over the transfer manager's run queue.

    This is NeST's default.  The queue holds *service units* -- one
    whole-file transfer enqueues a unit per data chunk as it streams, a
    block protocol enqueues a unit per client RPC -- and units are
    served strictly in arrival order (``enqueue_seq``, stamped by the
    pump gate each time a job asks for service).

    Note the paper's Fig. 3 observation: FIFO order *disfavours NFS*.
    An NFS flow contributes one 8 KB unit per client round trip, while
    every whole-file stream keeps a large unit in the queue
    continuously, so NFS receives a tiny fraction of the service cycle.
    """

    name = "fcfs"

    def __init__(self) -> None:
        self._jobs: list[TransferJob] = []

    def add(self, job: TransferJob) -> None:
        self._jobs.append(job)

    def remove(self, job: TransferJob) -> None:
        if job in self._jobs:
            self._jobs.remove(job)

    def select(self, now: float = 0.0) -> Optional[TransferJob]:
        ready = [j for j in self._jobs if j.ready and j.available > 0]
        if not ready:
            return None
        return min(ready, key=lambda j: (j.enqueue_seq, j.arrival_seq))

    def has_ready(self) -> bool:
        return any(j.ready and j.available > 0 for j in self._jobs)


class StrideScheduler(Scheduler):
    """Byte-based proportional-share stride scheduling.

    ``shares`` maps protocol class to tickets (e.g. ``{"chirp": 1,
    "gridftp": 2, "http": 1, "nfs": 1}``); jobs of a class split its
    tickets equally.  Each charge advances the job's pass by
    ``bytes * STRIDE1 / tickets``; select returns the minimum-pass
    ready job.

    ``work_conserving=True`` (the paper's implementation) schedules a
    competitor whenever the minimum-pass job is not ready -- which is
    precisely why the 1:1:1:4 NFS allocation falls short (Fig. 4).
    ``work_conserving=False`` implements the paper's proposed fix
    (anticipatory idling [Iyer & Druschel]): if the globally
    minimum-pass job is merely *not ready yet*, the scheduler returns
    None so the pump idles briefly instead of giving the slot away.
    """

    name = "stride"

    def __init__(
        self,
        shares: dict[str, float] | None = None,
        work_conserving: bool = True,
        default_share: float = 1.0,
        share_by: str = "protocol",
    ):
        if share_by not in ("protocol", "user"):
            raise ValueError(f"unknown share key {share_by!r}")
        self.shares = dict(shares or {})
        self.default_share = default_share
        self.work_conserving = work_conserving
        #: "protocol" (the paper's implementation: preferences per
        #: protocol class) or "user" (its stated extension: "in the
        #: future, we plan to extend this to provide preferences on a
        #: per-user basis").
        self.share_by = share_by
        self._jobs: list[TransferJob] = []
        self._global_pass = 0.0

    # -- ticket management ----------------------------------------------------
    def _class_of(self, job: TransferJob) -> str:
        return job.user if self.share_by == "user" else job.protocol

    def _class_share(self, key: str) -> float:
        return self.shares.get(key, self.default_share)

    def _retickets(self) -> None:
        """Split each class's tickets among its active jobs."""
        by_class: dict[str, list[TransferJob]] = {}
        for job in self._jobs:
            by_class.setdefault(self._class_of(job), []).append(job)
        for key, jobs in by_class.items():
            share = self._class_share(key) / len(jobs)
            for job in jobs:
                job.tickets = max(share, 1e-9)

    def add(self, job: TransferJob) -> None:
        job.pass_value = self._min_pass()
        self._jobs.append(job)
        self._retickets()

    def remove(self, job: TransferJob) -> None:
        if job in self._jobs:
            self._jobs.remove(job)
            self._retickets()

    def _min_pass(self) -> float:
        if not self._jobs:
            return self._global_pass
        return min(j.pass_value for j in self._jobs)

    def select(self, now: float = 0.0) -> Optional[TransferJob]:
        # Single manual pass: same first-minimum tie-breaking as
        # ``min(..., key=...)`` without per-job lambda frames.
        best = None
        best_key = None
        for j in self._jobs:
            if j.ready and j.available > 0:
                key = (j.pass_value, j.arrival_seq)
                if best is None or key < best_key:
                    best = j
                    best_key = key
        if best is None:
            return None
        if not self.work_conserving:
            overall = min(self._jobs, key=lambda j: (j.pass_value, j.arrival_seq))
            if not (overall.ready and overall.available > 0):
                return None  # idle and wait for the rightful owner
        return best

    def charge(self, job: TransferJob, nbytes: int) -> None:
        super().charge(job, nbytes)
        old = job.pass_value
        job.pass_value = old + nbytes * STRIDE1 / (job.tickets * STRIDE1)
        # A charge only ever *raises* one job's pass value, so the
        # global minimum moves only if that job was at the minimum.
        if old <= self._global_pass:
            self._global_pass = self._min_pass()

    def has_ready(self) -> bool:
        return any(j.ready and j.available > 0 for j in self._jobs)


class CacheAwareScheduler(Scheduler):
    """Schedule cache-resident requests before disk-bound ones.

    "By modeling the kernel buffer cache using gray-box techniques,
    NeST is able to predict which requested files are likely to be
    cache resident and can schedule them before requests for files
    which will need to be fetched from secondary storage."  This
    approximates shortest-job-first (better response time) and reduces
    disk contention (better throughput) -- paper, section 4.2.

    ``residency`` is the gray-box predictor: ``(path, size) -> float``
    fraction of the file estimated resident.  Jobs whose estimated
    residency meets ``threshold`` are scheduled first (FIFO within a
    tier).  A job already started keeps priority so streams are not
    starved mid-file.
    """

    name = "cache-aware"

    def __init__(
        self,
        residency: Callable[[str, int], float],
        threshold: float = 0.9,
    ):
        self.residency = residency
        self.threshold = threshold
        self._jobs: list[TransferJob] = []

    def add(self, job: TransferJob) -> None:
        self._jobs.append(job)

    def remove(self, job: TransferJob) -> None:
        if job in self._jobs:
            self._jobs.remove(job)

    def _tier(self, job: TransferJob) -> int:
        if job.bytes_moved > 0:
            return 0  # keep in-flight streams flowing
        size = job.total_bytes if job.total_bytes >= 0 else 0
        resident = self.residency(job.path, size)
        return 0 if resident >= self.threshold else 1

    def select(self, now: float = 0.0) -> Optional[TransferJob]:
        ready = [j for j in self._jobs if j.ready and j.available > 0]
        if not ready:
            return None
        return min(ready, key=lambda j: (self._tier(j), j.arrival_seq))

    def has_ready(self) -> bool:
        return any(j.ready and j.available > 0 for j in self._jobs)


def make_scheduler(
    policy: str,
    shares: dict[str, float] | None = None,
    residency: Callable[[str, int], float] | None = None,
    work_conserving: bool = True,
    share_by: str = "protocol",
) -> Scheduler:
    """Factory used by server configuration.

    ``policy`` is one of ``"fcfs"``, ``"stride"``, ``"cache-aware"``.
    """
    if policy == "fcfs":
        return FCFSScheduler()
    if policy == "stride":
        return StrideScheduler(shares=shares, work_conserving=work_conserving,
                               share_by=share_by)
    if policy == "cache-aware":
        if residency is None:
            raise ValueError("cache-aware scheduling needs a residency predictor")
        return CacheAwareScheduler(residency)
    raise ValueError(f"unknown scheduling policy {policy!r}")
