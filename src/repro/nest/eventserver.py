"""Event-driven connection serving: the live "events" architecture.

The paper's Fig. 5 argument needs a real alternative to
thread-per-connection, and this is it: one selector thread *parks*
idle connections -- holding no thread, no stack, nothing but an epoll
registration -- and a small bounded worker pool serves requests as
they become readable.  The resource bound is therefore
``event_workers`` threads regardless of how many thousands of
connections sit connected, which is exactly the regime (many mostly
idle Grid clients) where threads collapse and events win.

The loop is deliberately protocol-agnostic: it drives any handler
exposing ``fileno`` / ``step`` (serve exactly one request, return
whether to re-park) / ``finish`` / ``force_close``.  All protocol
knowledge stays in :mod:`repro.nest.handlers`; handlers built with
``unbuffered=True`` keep pipelined request bytes in the kernel socket
buffer, so a parked connection with work pending always re-triggers
the selector.
"""

from __future__ import annotations

import os
import selectors
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.obs.log import get_logger

logger = get_logger(__name__)


class EventLoop:
    """Selector-driven connection server shared by every listener.

    Accept threads hand connections over with :meth:`adopt`; the loop
    registers the socket for readability and parks it.  When bytes
    arrive, the fd is unregistered (so no second dispatch can fire for
    the same connection) and ``handler.step()`` runs on the pool; the
    connection is then re-parked or retired.

    Shutdown is two-phase, mirroring the threaded drain:
    :meth:`begin_shutdown` synchronously retires every *idle* (parked)
    connection and stops the loop thread; dispatches already running
    keep going until :meth:`finish_shutdown` force-closes them.
    """

    def __init__(self, workers: int = 8, name: str = "nest",
                 registry=None):
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers),
            thread_name_prefix=f"{name}-event")
        self._lock = threading.Lock()
        #: adopted or re-parked handlers awaiting selector registration
        #: (only the loop thread touches the selector).
        self._park_requests: deque = deque()
        self._parked: dict[int, object] = {}  #: fd -> parked handler
        self._busy: set = set()  #: handlers currently on the pool
        self._stopping = False
        self._closed = False
        #: lifetime counters (monotonic; surfaced as gauges).
        self.adopted = 0
        self.dispatches = 0
        self.retired = 0
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-eventloop", daemon=True)
        self._thread.start()
        if registry is not None:
            registry.gauge_callback(
                "nest_event_connections", self.live,
                "Connections owned by the event loop (parked + busy).")
            registry.gauge_callback(
                "nest_event_dispatches_busy", lambda: len(self._busy),
                "Event-loop request dispatches currently executing.")
            registry.gauge_callback(
                "nest_event_dispatches_total", lambda: self.dispatches,
                "Requests dispatched by the event loop, ever.")

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------
    def adopt(self, handler) -> bool:
        """Take ownership of an accepted connection.

        Returns False when the loop is shutting down -- the caller
        still owns the connection and must close it.
        """
        with self._lock:
            if self._stopping:
                return False
            self.adopted += 1
            self._park_requests.append(handler)
        self._wake()
        return True

    def live(self) -> int:
        """Connections this loop owns right now (parked + busy)."""
        with self._lock:
            return (len(self._parked) + len(self._busy)
                    + len(self._park_requests))

    def busy_count(self) -> int:
        """Dispatches currently executing on the worker pool."""
        with self._lock:
            return len(self._busy)

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # loop thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    break
                requests = list(self._park_requests)
                self._park_requests.clear()
            for handler in requests:
                self._park(handler)
            try:
                events = self._selector.select(timeout=0.2)
            except OSError:
                break
            with self._lock:
                stopping = self._stopping
            if stopping:
                # Leave readable handlers parked: the idle drain below
                # retires them, same as the threaded path's idle close.
                break
            for key, _mask in events:
                if key.data is None:
                    self._drain_wake_pipe()
                    continue
                self._dispatch_ready(key)
        self._drain_idle()

    def _park(self, handler) -> None:
        try:
            fd = handler.fileno()
            self._selector.register(fd, selectors.EVENT_READ, handler)
        except (OSError, ValueError, KeyError):
            # Closed while waiting to park (client reset, drain).
            self._retire(handler)
            return
        with self._lock:
            self._parked[fd] = handler

    def _dispatch_ready(self, key) -> None:
        handler = key.data
        try:
            self._selector.unregister(key.fd)
        except (OSError, ValueError, KeyError):
            pass
        with self._lock:
            self._parked.pop(key.fd, None)
            self._busy.add(handler)
        self.dispatches += 1
        self._pool.submit(self._dispatch, handler)

    def _drain_wake_pipe(self) -> None:
        try:
            os.read(self._wake_r, 4096)
        except (BlockingIOError, OSError):
            pass

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _dispatch(self, handler) -> None:
        keep = False
        try:
            keep = handler.step()
        except Exception:  # noqa: BLE001 - a broken handler must not
            # kill the worker; step() already absorbs wire errors, so
            # anything here is a handler bug worth a loud log line.
            logger.exception("event dispatch failed")
        with self._lock:
            self._busy.discard(handler)
            repark = keep and not self._stopping
            if repark:
                self._park_requests.append(handler)
        if repark:
            self._wake()
        else:
            self._retire(handler)

    def _retire(self, handler) -> None:
        self.retired += 1
        try:
            handler.finish()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            logger.warning("event handler teardown failed", exc_info=True)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def begin_shutdown(self) -> None:
        """Drain step 1: refuse new adoptions/re-parks and retire every
        idle connection.  Synchronous -- when this returns, only busy
        dispatches remain (poll :meth:`busy_count` for the drain)."""
        with self._lock:
            self._stopping = True
        self._wake()
        self._thread.join(timeout=5)

    def finish_shutdown(self, timeout: float = 2.0) -> int:
        """Drain step 2: force-close still-busy connections, join the
        pool, release the selector.  Returns how many connections had
        to be forced."""
        with self._lock:
            if self._closed:
                return 0
            stragglers = list(self._busy)
        for handler in stragglers:
            try:
                handler.force_close()
            except Exception:  # noqa: BLE001 - already going down
                pass
        deadline = time.monotonic() + max(timeout, 0.0)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._busy:
                    break
            time.sleep(0.005)
        self._pool.shutdown(wait=True)
        with self._lock:
            self._closed = True
            leftovers = (list(self._parked.values())
                         + list(self._park_requests))
            self._parked.clear()
            self._park_requests.clear()
        for handler in leftovers:  # loop thread died without draining
            self._retire(handler)
        try:
            self._selector.close()
        except OSError:
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        return len(stragglers)

    def _drain_idle(self) -> None:
        """Loop-thread exit path: retire everything still parked."""
        with self._lock:
            idle = list(self._parked.items())
            queued = list(self._park_requests)
            self._parked.clear()
            self._park_requests.clear()
        for fd, handler in idle:
            try:
                self._selector.unregister(fd)
            except (OSError, ValueError, KeyError):
                pass
            self._retire(handler)
        for handler in queued:
            self._retire(handler)
