"""Live protocol handlers: the virtual protocol layer (paper, §3).

Each handler owns one client connection, performs its own
authentication (GSI for Chirp and GridFTP, anonymous for the rest --
exactly the paper's policy), parses its wire format into the common
request interface, and routes requests: metadata operations go
synchronously to the storage manager, data movement goes through the
transfer manager.  The handlers share *no* data-path code with each
other -- everything common lives behind the common request interface,
which is the point of the design.
"""

from __future__ import annotations

import base64
import io
import json
import socket
import threading
import time
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, BinaryIO

from repro.nest import io as fastio
from repro.nest.auth import AuthError, GSIContext
from repro.nest.storage import StorageError
from repro.nest.transfer import TransferError
from repro.obs import spans as _spans
from repro.protocols import chirp, ftp, gridftp, http, nfs
from repro.protocols.common import (
    ProtocolError,
    Request,
    RequestType,
    Response,
    Status,
    read_exact,
    read_line,
    write_line,
)
from repro.protocols.xdr import Packer, Unpacker

if TYPE_CHECKING:  # pragma: no cover
    from repro.nest.server import NestServer


#: Exceptions that end a connection like a wire error: the connection
#: closes, the cause is span-annotated, nothing propagates.  The
#: threaded ``run`` and the event loop's ``step`` share this contract.
WIRE_ERRORS = (ProtocolError, ConnectionError, OSError, ValueError,
               TransferError)


class ConnectionHandler:
    """Base: owns sockets/streams and the authenticated identity.

    ``busy`` is True while the handler is processing one request (as
    opposed to parked on a blocking read between requests); the
    server's graceful drain closes idle connections immediately and
    only waits for busy ones.

    Handlers whose wire format is a clean request-at-a-time loop set
    ``event_capable`` and implement :meth:`serve_one`; the server may
    then park their connections in the event loop instead of
    dedicating a thread (``unbuffered`` read streams keep pipelined
    bytes in the kernel buffer where the selector can see them).
    """

    protocol = "base"
    #: True when serve() is a pure serve_one() loop the event loop can
    #: drive one request at a time (Chirp, HTTP).  Session-stateful
    #: wire formats (FTP's greeting + data channels, NFS, IBP) stay
    #: thread-per-connection.
    event_capable = False

    def __init__(self, server: "NestServer", sock: socket.socket, addr,
                 *, unbuffered: bool = False):
        self.server = server
        self.sock = sock
        self.addr = addr
        # Event mode must not read ahead: a buffered rfile would slurp
        # pipelined requests into userspace where the selector cannot
        # see them, leaving the connection parked with work pending.
        self.rfile: BinaryIO = sock.makefile(
            "rb", buffering=0 if unbuffered else -1)
        self.wfile: BinaryIO = sock.makefile("wb")
        self.user = "anonymous"
        self.busy = False
        #: which server architecture is driving this connection
        #: ("threads" or "events"); feeds the adaptive switcher.
        self.concurrency_model = "threads"
        #: root span of this connection's trace, opened at accept;
        #: every request on the connection is a child.
        self.conn_span = server.obs.tracer.start_trace(
            "accept", protocol=self.protocol, peer=str(addr))

    def run(self) -> None:
        """Serve the connection until EOF or error, then clean up."""
        try:
            self.serve()
        except WIRE_ERRORS:
            # A failed transfer closes the connection like any wire
            # error; its cause is recorded in ``transfers.failures()``.
            self.conn_span.set(wire_error=True)
        finally:
            self.finish()

    def serve_one(self) -> bool:  # pragma: no cover - interface
        """Serve exactly one request (the event loop's dispatch unit).

        Returns True if the connection should stay open for another
        request, False at EOF/quit.  May raise ``WIRE_ERRORS``.
        """
        raise NotImplementedError

    def step(self) -> bool:
        """One event-loop dispatch: :meth:`serve_one` under the same
        error contract as the threaded :meth:`run`.  Returns whether
        the connection should be re-parked."""
        try:
            return self.serve_one()
        except WIRE_ERRORS:
            self.conn_span.set(wire_error=True)
            return False

    def finish(self) -> None:
        """Tear down and end the connection trace (idempotent: the
        span's end() is a no-op the second time)."""
        self.force_close()
        self.conn_span.set(user=self.user).end()

    def fileno(self) -> int:
        """The connection's descriptor (selector registration)."""
        return self.sock.fileno()

    @contextmanager
    def request_scope(self, op: str, path: str = "",
                      trace: tuple[str, str] | None = None):
        """Wrap one request: the busy flag, a ``request`` child span
        pushed onto this thread's trace stack (so storage/ACL/transfer
        layers attach their own children), and request metrics plus the
        health feed on the way out.

        With ``trace`` (a parsed wire trace context), the request span
        *adopts* the caller's trace -- its id is the remote trace's and
        its parent is the remote span -- so merged fleet documents show
        one tree across processes.  The local connection trace id is
        kept as an attribute for correlation.
        """
        user_class = ("anonymous" if self.user == "anonymous"
                      else "authenticated")
        if trace is not None:
            span = self.server.obs.tracer.adopt(
                "request", trace[0], trace[1], op=op,
                protocol=self.protocol, user_class=user_class,
                conn_trace=self.conn_span.trace_id)
        else:
            span = self.conn_span.child(
                "request", op=op, protocol=self.protocol,
                user_class=user_class)
        if path:
            span.set(path=path)
        self.busy = True
        started = time.perf_counter()
        ok = False
        try:
            with span:
                yield span
            ok = span.status == "ok"
        finally:
            self.busy = False
            self.server.observe_request(
                self.protocol, op, ok, time.perf_counter() - started,
                model=self.concurrency_model)

    def mark_request_error(self) -> None:
        """Flag the active request span (and its metric outcome) as an
        error, for handlers that report failures as in-band protocol
        replies rather than exceptions."""
        span = _spans.current_span()
        if span is not None:
            span.end(status="error")

    def force_close(self) -> None:
        """Tear the connection down (idempotent; any thread may call).

        Shuts the socket down first so a handler thread blocked in a
        read wakes immediately -- this is what the server's drain uses
        on stragglers.
        """
        try:
            self.wfile.flush()
        except (OSError, ValueError):
            pass
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        try:
            self.sock.close()
        except OSError:
            pass

    def serve(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- shared plumbing ---------------------------------------------------
    def _send_ticket(self, ticket, path: str) -> int:
        """Stream an approved GET ticket through the transfer manager."""
        try:
            moved = self.server.transfers.transfer_sync(
                ticket.stream, self.wfile, ticket.size,
                protocol=self.protocol, user=self.user, path=path,
            )
        finally:
            ticket.settle(ticket.size)
        self.wfile.flush()
        self.server.graybox.observe_read(path, 0, ticket.size)
        return moved

    def _recv_file(self, path: str, length: int, source: BinaryIO | None = None) -> int:
        """PUT data path; ``length`` may be -1 for read-to-EOF."""
        ticket = self.server.storage.approve_put(self.user, path, max(length, 0))
        moved = 0
        try:
            moved = self.server.transfers.transfer_sync(
                source or self.rfile, ticket.stream, length,
                protocol=self.protocol, user=self.user, path=path,
            )
        finally:
            ticket.settle(moved)
        self.server.graybox.observe_write(path, 0, moved)
        return moved


# ---------------------------------------------------------------------------
# Chirp
# ---------------------------------------------------------------------------


class ChirpHandler(ConnectionHandler):
    """NeST's native protocol: full feature set, GSI authentication."""

    protocol = "chirp"
    event_capable = True

    def serve(self) -> None:
        while self.serve_one():
            pass

    def serve_one(self) -> bool:
        """One Chirp request: read a line, decode, dispatch."""
        try:
            line = read_line(self.rfile)
        except ProtocolError:
            return False
        parse = self.conn_span.child("parse", protocol=self.protocol)
        try:
            request = chirp.decode_request(line)
        except ProtocolError as exc:
            parse.end(status="error")
            self.server.observe_request(self.protocol, "parse",
                                        False, 0.0)
            write_line(self.wfile, chirp.encode_response(
                Response(Status.BAD_REQUEST, message=str(exc))))
            return True
        parse.end()
        request.user = self.user
        trace = _spans.parse_trace_context(request.params.get("trace"))
        with self.request_scope(request.rtype.value, request.path,
                                trace=trace):
            keep = self._handle(request)
        return keep

    def _handle(self, request: Request) -> bool:
        if request.rtype is RequestType.QUIT:
            write_line(self.wfile, "ok")
            return False
        if request.rtype is RequestType.AUTH:
            self._authenticate(request)
            return True
        if request.rtype is RequestType.GET:
            return self._get(request)
        if request.rtype is RequestType.PUT:
            return self._put(request)
        if request.rtype is RequestType.READ:
            return self._block_read(request)
        if request.rtype is RequestType.WRITE:
            return self._block_write(request)
        if request.rtype is RequestType.QUERY:
            payload = self.server.advertisement().external_repr().encode()
            write_line(self.wfile, chirp.encode_response(
                Response(Status.OK), [str(len(payload))]))
            self.wfile.write(payload)
            self.wfile.flush()
            return True
        if request.rtype is RequestType.THIRDPUT:
            self._thirdput(request)
            return True
        if request.rtype is RequestType.CHECKSUM:
            self._checksum(request)
            return True
        response = self.server.storage.execute(request)
        self._reply(request, response)
        return True

    def _authenticate(self, request: Request) -> None:
        mechanism = request.params.get("mechanism", "gsi")
        if mechanism != "gsi":
            write_line(self.wfile, chirp.encode_response(
                Response(Status.BAD_REQUEST, message="only gsi supported")))
            return
        write_line(self.wfile, "ok")
        auth_span = _spans.maybe_span("auth", mechanism=mechanism)
        try:
            cert = base64.b64decode(read_line(self.rfile))
            challenge = self.server.gsi.challenge()
            write_line(self.wfile, base64.b64encode(challenge).decode())
            response = base64.b64decode(read_line(self.rfile))
            subject = self.server.gsi.accept(cert, challenge, response)
        except (AuthError, ProtocolError, ValueError) as exc:
            auth_span.end(status="error")
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(Status.NOT_AUTHENTICATED, message=str(exc))))
            return
        self.user = self.server.map_subject(subject)
        auth_span.set(user=self.user).end()
        write_line(self.wfile, chirp.encode_response(
            Response(Status.OK), [self.user]))

    def _get(self, request: Request) -> bool:
        try:
            # Approve (permissions + existence) before promising data.
            ticket = self.server.storage.approve_get(self.user, request.path)
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return True
        write_line(self.wfile, chirp.encode_response(
            Response(Status.OK), [str(ticket.size)]))
        self._send_ticket(ticket, request.path)
        return True

    def _put(self, request: Request) -> bool:
        try:
            # Approve before telling the client to send.
            ticket = self.server.storage.approve_put(
                self.user, request.path, request.length
            )
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return True
        write_line(self.wfile, "ok")
        moved = 0
        try:
            moved = self.server.transfers.transfer_sync(
                self.rfile, ticket.stream, request.length,
                protocol=self.protocol, user=self.user, path=request.path,
            )
        finally:
            ticket.settle(moved)
        self.server.graybox.observe_write(request.path, 0, moved)
        write_line(self.wfile, "ok")
        return True

    def _block_read(self, request: Request) -> bool:
        """Chirp ``read <path> <offset> <len>``: partial-file read."""
        try:
            ticket = self.server.storage.approve_read(
                self.user, request.path, request.offset, request.length
            )
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return True
        write_line(self.wfile, chirp.encode_response(
            Response(Status.OK), [str(ticket.size)]))
        try:
            self.server.transfers.transfer_sync(
                ticket.stream, self.wfile, ticket.size,
                protocol=self.protocol, user=self.user, path=request.path,
            )
        finally:
            ticket.settle(ticket.size)
        self.wfile.flush()
        self.server.graybox.observe_read(request.path, request.offset,
                                         ticket.size)
        return True

    def _block_write(self, request: Request) -> bool:
        """Chirp ``write <path> <offset> <len>``: partial-file write."""
        try:
            ticket = self.server.storage.approve_write(
                self.user, request.path, request.offset, request.length
            )
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return True
        write_line(self.wfile, "ok")
        moved = 0
        transfer = self.server.transfers.submit(
            self.rfile, ticket.stream, request.length,
            protocol=self.protocol, user=self.user, path=request.path,
        )
        try:
            moved = transfer.wait(60)
        finally:
            ticket.settle(moved)
        self.server.graybox.observe_write(request.path, request.offset, moved)
        # Ack with the CRC32 folded into the receive loop: the client
        # verifies its upload end to end with zero extra read passes.
        crc = "-" if transfer.crc is None else str(transfer.crc)
        write_line(self.wfile, f"ok {crc} {moved}")
        return True

    def _checksum(self, request: Request) -> None:
        """Chirp ``checksum <path>``: CRC32 over the file's contents.

        Runs the contents through the same read-approval gate as a GET
        (permissions and existence checked first), so a replica manager
        can verify a third-party copy end to end without pulling the
        bytes over the wide area.  Replies ``ok <crc32> <size>``.
        """
        try:
            ticket = self.server.storage.approve_get(self.user, request.path)
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return
        try:
            crc, _ = fastio.stream_crc32(ticket.stream, ticket.size)
        finally:
            ticket.settle(ticket.size)
        self.server.graybox.observe_read(request.path, 0, ticket.size)
        write_line(self.wfile, chirp.encode_response(
            Response(Status.OK), [str(crc), str(ticket.size)]))

    def _thirdput(self, request: Request) -> None:
        """Three-party transfer: push one of our files to another
        server, data flowing server-to-server (paper, §2.1: the
        transfer manager allows "transparent three- and four-party
        transfers")."""
        from repro.client.chirp import ChirpClient
        from repro.client.errors import ClientError
        from repro.client.retry import NO_RETRY

        try:
            ticket = self.server.storage.approve_get(self.user, request.path)
        except StorageError as exc:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(
                Response(exc.status, message=exc.message)))
            return
        moved = 0
        try:
            try:
                # Fail fast: the requesting client owns the retry
                # decision, not a handler thread holding the control
                # connection.  The file streams straight from the
                # storage ticket to the remote's data connection --
                # bounded memory no matter the file size.
                remote = ChirpClient(request.params["host"],
                                     int(request.params["port"]),
                                     timeout=10.0, retry=NO_RETRY)
                try:
                    moved = remote.put_stream(request.params["remote_path"],
                                              ticket.stream, ticket.size)
                finally:
                    remote.close()
            except (ClientError, OSError, ProtocolError) as exc:
                self.mark_request_error()
                write_line(self.wfile, chirp.encode_response(
                    Response(Status.SERVER_ERROR, message=str(exc))))
                return
        finally:
            ticket.settle(moved)
        self.server.graybox.observe_read(request.path, 0, ticket.size)
        write_line(self.wfile, chirp.encode_response(
            Response(Status.OK), [str(ticket.size)]))

    def _reply(self, request: Request, response: Response) -> None:
        if not response.ok:
            self.mark_request_error()
            write_line(self.wfile, chirp.encode_response(response))
            return
        if request.rtype is RequestType.STAT:
            write_line(self.wfile, chirp.encode_response(
                response, chirp.encode_stat(response.data)))
        elif request.rtype in (RequestType.LIST, RequestType.ACL_GET,
                               RequestType.LOT_STAT, RequestType.LOT_LIST,
                               RequestType.LOT_DELETE):
            payload = json.dumps(response.data).encode()
            write_line(self.wfile, chirp.encode_response(
                response, [str(len(payload))]))
            self.wfile.write(payload)
            self.wfile.flush()
        elif request.rtype in (RequestType.LOT_CREATE, RequestType.LOT_RENEW):
            write_line(self.wfile, chirp.encode_response(
                response, [str(response.data["lot_id"]),
                           str(response.data["capacity"]),
                           str(response.data["expires_at"])]))
        else:
            write_line(self.wfile, "ok")


# ---------------------------------------------------------------------------
# HTTP
# ---------------------------------------------------------------------------


class HttpHandler(ConnectionHandler):
    """HTTP/1.0 subset; anonymous only."""

    protocol = "http"
    event_capable = True

    def serve(self) -> None:
        while self.serve_one():
            pass

    def serve_one(self) -> bool:
        """One HTTP request/response exchange."""
        try:
            request = http.read_request(self.rfile)
        except ProtocolError:
            return False
        if request is None:
            return False
        request.user = self.user
        keep_alive = request.params.get("keep_alive", False)
        headers = request.params.get("headers", {})
        trace = _spans.parse_trace_context(
            headers.get(http.TRACE_HEADER.lower()))
        with self.request_scope(request.rtype.value, request.path,
                                trace=trace) as sp:
            try:
                self._handle(request, keep_alive)
            except StorageError as exc:
                sp.end(status="error")
                http.write_response_head(
                    self.wfile, Response(exc.status, message=exc.message),
                    keep_alive=keep_alive,
                )
        return bool(keep_alive)

    def _handle(self, request: Request, keep_alive: bool) -> None:
        storage = self.server.storage
        if request.rtype is RequestType.GET:
            # Approve before the status line goes out, so a denial is a
            # clean 403 rather than a corrupted body.
            ticket = storage.approve_get(self.user, request.path)
            http.write_response_head(self.wfile, Response(Status.OK),
                                     content_length=ticket.size,
                                     keep_alive=keep_alive)
            self._send_ticket(ticket, request.path)
        elif request.rtype is RequestType.STAT:  # HEAD
            size = storage.stat(self.user, request.path)["size"]
            http.write_response_head(self.wfile, Response(Status.OK),
                                     content_length=size, keep_alive=keep_alive)
        elif request.rtype is RequestType.PUT:
            self._recv_file(request.path, request.length)
            http.write_response_head(self.wfile, Response(Status.OK),
                                     keep_alive=keep_alive)
        elif request.rtype is RequestType.DELETE:
            storage.delete(self.user, request.path)
            http.write_response_head(self.wfile, Response(Status.OK),
                                     keep_alive=keep_alive)
        else:
            http.write_response_head(self.wfile, Response(Status.BAD_REQUEST),
                                     keep_alive=keep_alive)


# ---------------------------------------------------------------------------
# FTP
# ---------------------------------------------------------------------------


class FtpHandler(ConnectionHandler):
    """FTP subset: control + passive/active data connections."""

    protocol = "ftp"
    greeting = "NeST FTP ready"

    def __init__(self, server, sock, addr):
        super().__init__(server, sock, addr)
        self.cwd = "/"
        self.logged_in = False
        self._pasv_listener: socket.socket | None = None
        self._port_target: tuple[str, int] | None = None

    def reply(self, code: int, text: str) -> None:
        write_line(self.wfile, ftp.format_reply(code, text))

    def resolve(self, path: str) -> str:
        if not path.startswith("/"):
            path = self.cwd.rstrip("/") + "/" + path
        return path

    def serve(self) -> None:
        self.reply(ftp.READY, self.greeting)
        while True:
            try:
                line = read_line(self.rfile)
            except ProtocolError:
                return
            try:
                verb, arg = ftp.parse_command(line)
            except ProtocolError:
                self.reply(ftp.SYNTAX_ERROR, "bad command")
                continue
            with self.request_scope(verb.lower()):
                keep = self.dispatch(verb, arg)
            if not keep:
                return

    def dispatch(self, verb: str, arg: str) -> bool:
        handler = getattr(self, f"cmd_{verb.lower()}", None)
        if handler is None:
            self.reply(ftp.NOT_IMPLEMENTED, f"{verb} not implemented")
            return True
        try:
            return handler(arg)
        except StorageError as exc:
            self.mark_request_error()
            self.reply(ftp.STATUS_TO_REPLY.get(exc.status, ftp.ACTION_FAILED),
                       exc.message or exc.status.value)
            return True

    # -- session -------------------------------------------------------------
    def cmd_user(self, arg: str) -> bool:
        if arg.lower() in ("anonymous", "ftp"):
            self.reply(ftp.NEED_PASSWORD, "anonymous ok, send email as pass")
        else:
            self.reply(ftp.NOT_LOGGED_IN, "anonymous only")
        return True

    def cmd_pass(self, arg: str) -> bool:
        self.logged_in = True
        self.reply(ftp.LOGGED_IN, "logged in anonymously")
        return True

    def cmd_type(self, arg: str) -> bool:
        self.reply(200, f"type set to {arg or 'I'}")
        return True

    def cmd_noop(self, arg: str) -> bool:
        self.reply(200, "ok")
        return True

    def cmd_syst(self, arg: str) -> bool:
        self.reply(215, "UNIX Type: L8 (NeST)")
        return True

    def cmd_quit(self, arg: str) -> bool:
        self.reply(ftp.GOODBYE, "goodbye")
        return False

    # -- navigation -----------------------------------------------------------
    def cmd_cwd(self, arg: str) -> bool:
        target = self.resolve(arg)
        stat = self.server.storage.stat(self.user, target) if target != "/" else {
            "type": "dir"
        }
        if stat["type"] != "dir":
            self.reply(ftp.ACTION_FAILED, "not a directory")
            return True
        self.cwd = target
        self.reply(ftp.ACTION_OK, f"cwd {self.cwd}")
        return True

    def cmd_pwd(self, arg: str) -> bool:
        self.reply(ftp.PATH_CREATED, f'"{self.cwd}"')
        return True

    def cmd_mkd(self, arg: str) -> bool:
        self.server.storage.mkdir(self.user, self.resolve(arg))
        self.reply(ftp.PATH_CREATED, f'"{arg}" created')
        return True

    def cmd_rmd(self, arg: str) -> bool:
        self.server.storage.rmdir(self.user, self.resolve(arg))
        self.reply(ftp.ACTION_OK, "removed")
        return True

    def cmd_dele(self, arg: str) -> bool:
        self.server.storage.delete(self.user, self.resolve(arg))
        self.reply(ftp.ACTION_OK, "deleted")
        return True

    def cmd_size(self, arg: str) -> bool:
        stat = self.server.storage.stat(self.user, self.resolve(arg))
        self.reply(213, str(stat["size"]))
        return True

    # -- data connections -----------------------------------------------------
    def cmd_pasv(self, arg: str) -> bool:
        if self._pasv_listener is not None:
            self._pasv_listener.close()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((self.server.host, 0))
        listener.listen(4)
        self._pasv_listener = listener
        self._port_target = None
        host, port = listener.getsockname()
        write_line(self.wfile, ftp.format_pasv_reply(host, port))
        return True

    def cmd_port(self, arg: str) -> bool:
        try:
            nums = [int(x) for x in arg.split(",")]
            host = ".".join(str(n) for n in nums[:4])
            port = nums[4] * 256 + nums[5]
        except (ValueError, IndexError):
            self.reply(ftp.SYNTAX_ERROR, "bad PORT")
            return True
        self._port_target = (host, port)
        if self._pasv_listener is not None:
            self._pasv_listener.close()
            self._pasv_listener = None
        self.reply(200, "PORT ok")
        return True

    def open_data_connection(self) -> socket.socket:
        if self._pasv_listener is not None:
            self._pasv_listener.settimeout(10)
            conn, _ = self._pasv_listener.accept()
        elif self._port_target is not None:
            conn = socket.create_connection(self._port_target, timeout=10)
        else:
            raise ProtocolError("no data connection configured")
        if self.server.faults is not None:
            conn = self.server.faults.wrap_socket(
                conn, label=f"{self.protocol}-data")
        return conn

    def close_data_state(self) -> None:
        if self._pasv_listener is not None:
            self._pasv_listener.close()
            self._pasv_listener = None
        self._port_target = None

    # -- transfers ----------------------------------------------------------
    def cmd_retr(self, arg: str) -> bool:
        path = self.resolve(arg)
        ticket = self.server.storage.approve_get(self.user, path)
        self.reply(ftp.OPENING_DATA, "opening data connection")
        conn = self.open_data_connection()
        data_out = conn.makefile("wb")
        try:
            self.server.transfers.transfer_sync(
                ticket.stream, data_out, ticket.size,
                protocol=self.protocol, user=self.user, path=path,
            )
            data_out.flush()
        finally:
            ticket.settle(ticket.size)
            data_out.close()
            conn.close()
            self.close_data_state()
        self.server.graybox.observe_read(path, 0, ticket.size)
        self.reply(ftp.TRANSFER_OK, "transfer complete")
        return True

    def cmd_stor(self, arg: str) -> bool:
        path = self.resolve(arg)
        ticket = self.server.storage.approve_put(self.user, path, 0)
        self.reply(ftp.OPENING_DATA, "opening data connection")
        conn = self.open_data_connection()
        data_in = conn.makefile("rb")
        moved = 0
        try:
            moved = self.server.transfers.transfer_sync(
                data_in, ticket.stream, -1,
                protocol=self.protocol, user=self.user, path=path,
            )
        finally:
            ticket.settle(moved)
            data_in.close()
            conn.close()
            self.close_data_state()
        self.server.graybox.observe_write(path, 0, moved)
        self.reply(ftp.TRANSFER_OK, f"received {moved} bytes")
        return True

    def cmd_list(self, arg: str) -> bool:
        path = self.resolve(arg) if arg else self.cwd
        entries = self.server.storage.listdir(self.user, path)
        listing = "".join(
            f"{e['type']:<4} {e['size']:>12} {e['name']}\r\n" for e in entries
        ).encode()
        self.reply(ftp.OPENING_DATA, "here comes the listing")
        conn = self.open_data_connection()
        try:
            conn.sendall(listing)
        finally:
            conn.close()
            self.close_data_state()
        self.reply(ftp.TRANSFER_OK, "listing sent")
        return True


# ---------------------------------------------------------------------------
# GridFTP
# ---------------------------------------------------------------------------


class GridFtpHandler(FtpHandler):
    """FTP + GSI (ADAT), extended-block mode, parallel streams."""

    protocol = "gridftp"
    greeting = "NeST GridFTP ready"

    def __init__(self, server, sock, addr):
        super().__init__(server, sock, addr)
        self.mode = "S"
        self.parallelism = 1
        self._gsi_challenge: bytes | None = None
        self._gsi_cert: bytes | None = None
        self._spas_listeners: list[socket.socket] = []

    def cmd_auth(self, arg: str) -> bool:
        if arg.upper() not in ("GSSAPI", "GSI"):
            self.reply(ftp.NOT_IMPLEMENTED, "only GSSAPI")
            return True
        self.reply(334, "ADAT must follow")
        return True

    def cmd_adat(self, arg: str) -> bool:
        try:
            payload = base64.b64decode(arg)
        except ValueError:
            self.reply(ftp.SYNTAX_ERROR, "bad base64")
            return True
        if self._gsi_challenge is None:
            # Step 1: certificate in, challenge out.
            self._gsi_cert = payload
            self._gsi_challenge = self.server.gsi.challenge()
            token = base64.b64encode(self._gsi_challenge).decode()
            self.reply(ftp.AUTH_CONTINUE, f"ADAT={token}")
            return True
        # Step 2: challenge response in.
        try:
            subject = self.server.gsi.accept(
                self._gsi_cert, self._gsi_challenge, payload
            )
        except AuthError as exc:
            self.reply(ftp.NOT_LOGGED_IN, str(exc))
            self._gsi_challenge = None
            return True
        self.user = self.server.map_subject(subject)
        self.logged_in = True
        self.reply(ftp.AUTH_OK, f"authenticated as {self.user}")
        return True

    def cmd_mode(self, arg: str) -> bool:
        mode = arg.upper()
        if mode not in ("S", "E"):
            self.reply(ftp.NOT_IMPLEMENTED, "modes S and E only")
            return True
        self.mode = mode
        self.reply(200, f"mode {mode}")
        return True

    def cmd_opts(self, arg: str) -> bool:
        try:
            opts = gridftp.parse_opts_retr(arg)
        except ProtocolError as exc:
            self.reply(ftp.SYNTAX_ERROR, str(exc))
            return True
        self.parallelism = max(1, opts.get("parallelism", 1))
        self.reply(200, f"parallelism {self.parallelism}")
        return True

    def cmd_spas(self, arg: str) -> bool:
        """Striped passive: one listener per parallel stream."""
        for listener in self._spas_listeners:
            listener.close()
        self._spas_listeners = []
        lines = []
        for _ in range(self.parallelism):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind((self.server.host, 0))
            listener.listen(2)
            self._spas_listeners.append(listener)
            host, port = listener.getsockname()
            h = host.split(".")
            lines.append(f" {h[0]},{h[1]},{h[2]},{h[3]},{port // 256},{port % 256}")
        write_line(self.wfile, "229-Entering Striped Passive Mode")
        for line in lines:
            write_line(self.wfile, line)
        write_line(self.wfile, "229 End")
        return True

    def _data_connections(self) -> list[socket.socket]:
        if self._spas_listeners:
            conns = []
            for listener in self._spas_listeners:
                listener.settimeout(10)
                conn, _ = listener.accept()
                if self.server.faults is not None:
                    conn = self.server.faults.wrap_socket(
                        conn, label="gridftp-stripe")
                conns.append(conn)
            return conns
        return [self.open_data_connection()]

    def _close_spas(self) -> None:
        for listener in self._spas_listeners:
            listener.close()
        self._spas_listeners = []

    def cmd_retr(self, arg: str) -> bool:
        if self.mode != "E":
            return super().cmd_retr(arg)
        path = self.resolve(arg)
        ticket = self.server.storage.approve_get(self.user, path)
        self.reply(ftp.OPENING_DATA, "opening extended-block channels")
        conns = self._data_connections()
        size = ticket.size
        lanes = gridftp.stripe_ranges(size, len(conns), 256 * 1024)
        errors: list[BaseException] = []
        # Lanes share the storage ticket's stream: each extent is one
        # bounded seek+read under this lock, so memory per lane is one
        # stripe block -- never the whole file.
        source_lock = threading.Lock()

        def send_lane(conn: socket.socket, extents, last: bool) -> None:
            out = conn.makefile("wb")
            try:
                for offset, length in extents:
                    with source_lock:
                        ticket.stream.seek(offset)
                        payload = read_exact(ticket.stream, length)
                    gridftp.write_block(out, offset, payload)
                gridftp.write_eod(out, eof=last)
                out.flush()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                out.close()
                conn.close()

        threads = [
            threading.Thread(target=send_lane,
                             args=(conn, lanes[i], i == 0), daemon=True)
            for i, conn in enumerate(conns)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        if any(t.is_alive() for t in threads):
            errors.append(TimeoutError("parallel send lane hung"))
        ticket.settle(size)
        self._close_spas()
        self.close_data_state()
        self.server.graybox.observe_read(path, 0, size)
        if errors:
            self.reply(ftp.ACTION_FAILED, f"transfer failed: {errors[0]}")
        else:
            self.reply(ftp.TRANSFER_OK, "transfer complete")
        return True

    def cmd_stor(self, arg: str) -> bool:
        if self.mode != "E":
            return super().cmd_stor(arg)
        path = self.resolve(arg)
        ticket = self.server.storage.approve_put(self.user, path, 0)
        self.reply(ftp.OPENING_DATA, "opening extended-block channels")
        conns = self._data_connections()
        errors: list[BaseException] = []
        # Blocks land directly at their offsets in the storage
        # ticket's stream (one seek+write per block under this lock):
        # memory per lane is one wire block, never the whole file, and
        # sparse regions zero-fill exactly as the old staging buffer
        # did.
        sink_lock = threading.Lock()
        high_water = [0]

        def recv_lane(conn: socket.socket) -> None:
            stream = conn.makefile("rb")
            try:
                for offset, payload in gridftp.iter_blocks(stream):
                    with sink_lock:
                        ticket.stream.seek(offset)
                        ticket.stream.write(payload)
                        high_water[0] = max(high_water[0],
                                            offset + len(payload))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stream.close()
                conn.close()

        threads = [threading.Thread(target=recv_lane, args=(c,), daemon=True)
                   for c in conns]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        if any(t.is_alive() for t in threads):
            # A hung receive lane means missing stripes: fail the STOR
            # rather than commit a silently truncated file.
            errors.append(TimeoutError("parallel receive lane hung"))
        self._close_spas()
        self.close_data_state()
        moved = high_water[0] if not errors else 0
        ticket.settle(moved)
        self.server.graybox.observe_write(path, 0, moved)
        if errors:
            self.reply(ftp.ACTION_FAILED, f"transfer failed: {errors[0]}")
        else:
            self.reply(ftp.TRANSFER_OK, f"received {moved} bytes")
        return True


# ---------------------------------------------------------------------------
# NFS
# ---------------------------------------------------------------------------


class NfsHandler(ConnectionHandler):
    """Restricted NFS subset over TCP; anonymous only.

    MOUNT is handled here too ("mount is handled by the NFS handler",
    paper footnote 1).
    """

    protocol = "nfs"

    def serve(self) -> None:
        while True:
            try:
                record = nfs.read_record(self.rfile)
            except ProtocolError:
                return
            try:
                xid, prog, proc, args = nfs.unpack_call(record)
            except ProtocolError:
                return
            op = ("mount" if prog == nfs.PROG_MOUNT
                  else _NFS_OPS.get(proc, "other"))
            with self.request_scope(op):
                results = self._dispatch(prog, proc, args)
                nfs.write_record(self.wfile, nfs.pack_reply(xid, results))

    def _dispatch(self, prog: int, proc: int, args: Unpacker) -> bytes:
        try:
            if prog == nfs.PROG_MOUNT:
                if proc == nfs.MOUNTPROC_MNT:
                    return self._mnt(args)
                if proc == nfs.MOUNTPROC_UMNT:
                    return b""
                return self._status_only(nfs.NFSERR_IO)
            handlers = {
                nfs.PROC_NULL: lambda a: b"",
                nfs.PROC_GETATTR: self._getattr,
                nfs.PROC_LOOKUP: self._lookup,
                nfs.PROC_READ: self._read,
                nfs.PROC_WRITE: self._write,
                nfs.PROC_CREATE: self._create,
                nfs.PROC_REMOVE: self._remove,
                nfs.PROC_MKDIR: self._mkdir,
                nfs.PROC_RMDIR: self._rmdir,
                nfs.PROC_READDIR: self._readdir,
            }
            handler = handlers.get(proc)
            if handler is None:
                return self._status_only(nfs.NFSERR_IO)
            return handler(args)
        except StorageError as exc:
            self.mark_request_error()
            return self._status_only(_STATUS_TO_NFS.get(exc.status,
                                                        nfs.NFSERR_IO))
        except ProtocolError:
            self.mark_request_error()
            return self._status_only(nfs.NFSERR_IO)

    # -- helpers ----------------------------------------------------------
    def _status_only(self, status: int) -> bytes:
        p = Packer()
        p.pack_uint(status)
        return p.get_buffer()

    def _path_of(self, handle: bytes) -> str:
        path = self.server.fhandles.path_of(nfs.fhandle_token(handle))
        if path is None:
            # Unknown token, or one minted before a server restart (the
            # registry's epoch changed): the NFS client must LOOKUP the
            # path again, exactly as with a real ESTALE.
            raise StorageError(Status.STALE, "stale file handle")
        return path

    def _fh_for(self, path: str) -> bytes:
        return nfs.make_fhandle(self.server.fhandles.token_for(path))

    def _pack_attr_reply(self, path: str) -> bytes:
        stat = self.server.storage.stat(self.user, path) if path != "/" else {
            "type": "dir", "size": 0,
        }
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        ftype = nfs.NFDIR if stat["type"] == "dir" else nfs.NFREG
        nfs.pack_fattr(p, ftype, stat["size"])
        return p.get_buffer()

    # -- procedures ----------------------------------------------------------
    def _mnt(self, args: Unpacker) -> bytes:
        dirpath = args.unpack_string()
        p = Packer()
        if dirpath != "/" and not self.server.storage.exists(dirpath):
            p.pack_uint(nfs.NFSERR_NOENT)
            return p.get_buffer()
        p.pack_uint(nfs.NFS_OK)
        p.pack_fixed(self._fh_for(dirpath if dirpath else "/"))
        return p.get_buffer()

    def _getattr(self, args: Unpacker) -> bytes:
        path = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        return self._pack_attr_reply(path)

    def _lookup(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        name = args.unpack_string()
        path = (dirpath.rstrip("/") + "/" + name) if dirpath != "/" else "/" + name
        stat = self.server.storage.stat(self.user, path)
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        p.pack_fixed(self._fh_for(path))
        ftype = nfs.NFDIR if stat["type"] == "dir" else nfs.NFREG
        nfs.pack_fattr(p, ftype, stat["size"])
        return p.get_buffer()

    def _read(self, args: Unpacker) -> bytes:
        path = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        offset = args.unpack_hyper()
        count = args.unpack_uint()
        ticket = self.server.storage.approve_read(self.user, path, offset,
                                                  min(count, nfs.BLOCK_SIZE))
        sink = io.BytesIO()
        try:
            self.server.transfers.transfer_sync(
                ticket.stream, sink, ticket.size,
                protocol=self.protocol, user=self.user, path=path,
            )
        finally:
            ticket.settle(ticket.size)
        self.server.graybox.observe_read(path, offset, ticket.size)
        data = sink.getvalue()
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        size = self.server.storage.stat(self.user, path)["size"]
        nfs.pack_fattr(p, nfs.NFREG, size)
        p.pack_opaque(data)
        return p.get_buffer()

    def _write(self, args: Unpacker) -> bytes:
        path = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        offset = args.unpack_hyper()
        data = args.unpack_opaque()
        ticket = self.server.storage.approve_write(self.user, path, offset,
                                                   len(data))
        moved = 0
        try:
            moved = self.server.transfers.transfer_sync(
                io.BytesIO(data), ticket.stream, len(data),
                protocol=self.protocol, user=self.user, path=path,
            )
        finally:
            ticket.settle(moved)
        self.server.graybox.observe_write(path, offset, moved)
        return self._pack_attr_reply(path)

    def _create(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        name = args.unpack_string()
        path = (dirpath.rstrip("/") + "/" + name) if dirpath != "/" else "/" + name
        ticket = self.server.storage.approve_put(self.user, path, 0)
        ticket.settle(0)
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        p.pack_fixed(self._fh_for(path))
        nfs.pack_fattr(p, nfs.NFREG, 0)
        return p.get_buffer()

    def _remove(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        name = args.unpack_string()
        path = (dirpath.rstrip("/") + "/" + name) if dirpath != "/" else "/" + name
        self.server.storage.delete(self.user, path)
        return self._status_only(nfs.NFS_OK)

    def _mkdir(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        name = args.unpack_string()
        path = (dirpath.rstrip("/") + "/" + name) if dirpath != "/" else "/" + name
        self.server.storage.mkdir(self.user, path)
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        p.pack_fixed(self._fh_for(path))
        nfs.pack_fattr(p, nfs.NFDIR, 0)
        return p.get_buffer()

    def _rmdir(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        name = args.unpack_string()
        path = (dirpath.rstrip("/") + "/" + name) if dirpath != "/" else "/" + name
        self.server.storage.rmdir(self.user, path)
        return self._status_only(nfs.NFS_OK)

    def _readdir(self, args: Unpacker) -> bytes:
        dirpath = self._path_of(args.unpack_fixed(nfs.FHSIZE))
        entries = self.server.storage.listdir(self.user, dirpath)
        p = Packer()
        p.pack_uint(nfs.NFS_OK)
        p.pack_uint(len(entries))
        for entry in entries:
            p.pack_string(entry["name"])
            p.pack_uint(nfs.NFDIR if entry["type"] == "dir" else nfs.NFREG)
        return p.get_buffer()


# ---------------------------------------------------------------------------
# IBP
# ---------------------------------------------------------------------------


class IbpHandler(ConnectionHandler):
    """IBP depot dialect: capability-named byte-array allocations.

    The extension protocol the paper plans for ("data movement
    protocols such as IBP"); see :mod:`repro.nest.ibp` for how
    allocations map onto lots.  IBP's trust model is capability
    possession, so there is no authentication step at all.
    """

    protocol = "ibp"

    def serve(self) -> None:
        from repro.nest.ibp import IbpDepot  # local import: optional protocol
        from repro.protocols import ibp

        depot: "IbpDepot" = self.server.ibp_depot
        while True:
            try:
                line = read_line(self.rfile)
            except ProtocolError:
                return
            try:
                verb, args = ibp.parse_command(line)
            except ProtocolError as exc:
                write_line(self.wfile, ibp.format_err("bad-command", str(exc)))
                continue
            if verb == "quit":
                write_line(self.wfile, ibp.format_ok())
                return
            with self.request_scope(verb) as sp:
                try:
                    self._dispatch(depot, verb, args)
                except ibp.IbpError as exc:
                    sp.end(status="error")
                    write_line(self.wfile, ibp.format_err(exc.code, str(exc)))
                except (ProtocolError, ValueError, IndexError) as exc:
                    sp.end(status="error")
                    write_line(self.wfile,
                               ibp.format_err("bad-arguments", str(exc)))

    def _dispatch(self, depot, verb: str, args: list[str]) -> None:
        from repro.protocols import ibp

        if verb == "allocate":
            size, duration, atype = int(args[0]), float(args[1]), args[2]
            alloc = depot.allocate(size, duration, atype)
            write_line(self.wfile, ibp.format_ok(
                depot.capability(alloc, ibp.READ),
                depot.capability(alloc, ibp.WRITE),
                depot.capability(alloc, ibp.MANAGE),
            ))
        elif verb == "store":
            cap = ibp.parse_capability(args[0])
            nbytes = int(args[1])
            data = read_exact(self.rfile, nbytes)
            used = depot.store(cap, data)
            write_line(self.wfile, ibp.format_ok(used))
        elif verb == "load":
            cap = ibp.parse_capability(args[0])
            offset, nbytes = int(args[1]), int(args[2])
            data = depot.load(cap, offset, nbytes)
            write_line(self.wfile, ibp.format_ok(len(data)))
            self.wfile.write(data)
            self.wfile.flush()
        elif verb == "probe":
            info = depot.probe(ibp.parse_capability(args[0]))
            write_line(self.wfile, ibp.format_ok(
                info["size"], info["used"], info["expires_at"],
                info["type"], info["refcount"],
            ))
        elif verb == "extend":
            expires = depot.extend(ibp.parse_capability(args[0]),
                                   float(args[1]))
            write_line(self.wfile, ibp.format_ok(expires))
        elif verb == "increment":
            write_line(self.wfile, ibp.format_ok(
                depot.increment(ibp.parse_capability(args[0]))))
        elif verb == "decrement":
            write_line(self.wfile, ibp.format_ok(
                depot.decrement(ibp.parse_capability(args[0]))))
        elif verb == "status":
            info = depot.status()
            write_line(self.wfile, ibp.format_ok(
                info["total"], info["used"], info["volatile"]))
        else:
            write_line(self.wfile, ibp.format_err("bad-command", verb))


#: NFS procedure number -> request-op label (bounded by construction).
_NFS_OPS = {
    nfs.PROC_NULL: "null", nfs.PROC_GETATTR: "getattr",
    nfs.PROC_LOOKUP: "lookup", nfs.PROC_READ: "read",
    nfs.PROC_WRITE: "write", nfs.PROC_CREATE: "create",
    nfs.PROC_REMOVE: "remove", nfs.PROC_MKDIR: "mkdir",
    nfs.PROC_RMDIR: "rmdir", nfs.PROC_READDIR: "readdir",
}

_STATUS_TO_NFS = {
    Status.NOT_FOUND: nfs.NFSERR_NOENT,
    Status.DENIED: nfs.NFSERR_ACCES,
    Status.NOT_AUTHENTICATED: nfs.NFSERR_PERM,
    Status.EXISTS: nfs.NFSERR_EXIST,
    Status.NO_SPACE: nfs.NFSERR_NOSPC,
    Status.NOT_DIR: nfs.NFSERR_NOTDIR,
    Status.IS_DIR: nfs.NFSERR_ISDIR,
    Status.NOT_EMPTY: nfs.NFSERR_NOTEMPTY,
    Status.BAD_REQUEST: nfs.NFSERR_IO,
    Status.SERVER_ERROR: nfs.NFSERR_IO,
    Status.STALE: nfs.NFSERR_STALE,
}


#: Handler class per protocol name (the dispatcher's routing table).
HANDLERS = {
    "chirp": ChirpHandler,
    "http": HttpHandler,
    "ftp": FtpHandler,
    "gridftp": GridFtpHandler,
    "nfs": NfsHandler,
    "ibp": IbpHandler,
}
