"""Lots: guaranteed storage space (paper, section 5).

A *lot* is NeST's storage-space reservation, "similar to reservations
for network bandwidth".  Each lot has four characteristics: **owner**,
**capacity**, **duration**, and **files**.  The number of files in a
lot is unbounded, and a file may span multiple lots if it cannot fit
within one.  When a lot's duration expires its files are *not* deleted;
the lot becomes **best-effort** and its data survives until the space
is needed for a new lot (reclamation policies below).

Two enforcement modes, both from the paper:

* ``"quota"`` -- lots ride the filesystem quota mechanism.  Cheap and
  lets clients bypass NeST for local access, but enforcement is only
  per-*user*: "a user may overfill a single lot and then not be able to
  fill another lot to capacity".  We reproduce that caveat faithfully.
* ``"nest"`` -- NeST-managed enforcement (the paper's future work):
  every write is charged against specific lots, so per-lot capacity is
  exact.  The overhead comparison is an ablation bench.

Reclamation policies for best-effort space: ``"expired-first"`` (oldest
expiry first), ``"largest-first"`` (frees space fastest), and ``"lru"``
(least recently used lot first).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


class LotError(Exception):
    """Lot operation failed (no space, unknown lot, not owner...)."""


class LotState(enum.Enum):
    """Lifecycle: ACTIVE while within duration, then BEST_EFFORT."""

    ACTIVE = "active"
    BEST_EFFORT = "best_effort"


@dataclass
class Lot:
    """One storage-space guarantee."""

    lot_id: str
    owner: str
    capacity: int
    expires_at: float
    state: LotState = LotState.ACTIVE
    #: Volatile lots (serving IBP volatile allocations) reserve no
    #: space: they accept charges while active but may be reclaimed at
    #: any time, like best-effort data.
    volatile: bool = False
    #: Pinned lots keep their files in the fast storage tier: the
    #: migration policy never demotes a file charged to (or attached
    #: under) a pinned lot.  The operator's "this stays on disk" knob.
    pinned: bool = False
    #: bytes charged to this lot, per file path (files may span lots).
    charges: dict[str, int] = field(default_factory=dict)
    last_used: float = 0.0

    @property
    def used(self) -> int:
        """Bytes currently charged against this lot."""
        return sum(self.charges.values())

    @property
    def free(self) -> int:
        """Capacity remaining in this lot."""
        return self.capacity - self.used

    def describe(self) -> dict:
        """Stat output for ``lot_stat``."""
        return {
            "lot_id": self.lot_id,
            "owner": self.owner,
            "capacity": self.capacity,
            "used": self.used,
            "expires_at": self.expires_at,
            "state": self.state.value,
            "pinned": self.pinned,
            "files": sorted(self.charges),
        }


class LotManager:
    """Manages all lots on one NeST, with pluggable clock and enforcement.

    ``clock`` abstracts time so the same code runs live (``time.time``)
    and on the DES (``lambda: env.now``).  ``on_reclaim`` is invoked
    with each file path whose space is reclaimed from a best-effort
    lot, so the storage manager can delete the actual data.
    """

    def __init__(
        self,
        capacity_bytes: int,
        clock: Callable[[], float],
        enforcement: str = "quota",
        reclaim_policy: str = "expired-first",
        on_reclaim: Callable[[str], None] | None = None,
        groups: dict[str, set[str]] | None = None,
    ):
        if enforcement not in ("quota", "nest"):
            raise ValueError(f"unknown enforcement mode {enforcement!r}")
        if reclaim_policy not in ("expired-first", "largest-first", "lru"):
            raise ValueError(f"unknown reclaim policy {reclaim_policy!r}")
        self.capacity_bytes = int(capacity_bytes)
        self.clock = clock
        self.enforcement = enforcement
        self.reclaim_policy = reclaim_policy
        self.on_reclaim = on_reclaim or (lambda path: None)
        #: group name -> members, for **group lots** (a lot owned by
        #: ``group:<name>`` is usable by every member -- the paper's
        #: "group lots will be included in the next release").
        self.groups = groups if groups is not None else {}
        self.lots: dict[str, Lot] = {}
        #: path prefix -> lot_id: charges for files under the prefix go
        #: to the attached lot first (Chirp's ``lot_attach``).
        self.attachments: dict[str, str] = {}
        self._next_id = 1
        #: optional metadata-journal sink ``(rtype, **fields)``; every
        #: durable mutation is emitted here so the durability layer can
        #: rebuild lots after a crash (:mod:`repro.durability`).
        self.journal: Callable[..., Any] | None = None
        self._m_expired = None
        self._m_reclaimed_files = None
        self._m_reclaimed_bytes = None

    def register_metrics(self, registry) -> None:
        """Publish lot lifecycle counters + live gauges on ``registry``
        (a :class:`repro.obs.metrics.MetricsRegistry`)."""
        self._m_expired = registry.counter(
            "nest_lots_expired_total",
            "Lots whose guarantee lapsed to best-effort.")
        self._m_reclaimed_files = registry.counter(
            "nest_lot_reclaimed_files_total",
            "Files deleted by best-effort reclamation.")
        self._m_reclaimed_bytes = registry.counter(
            "nest_lot_reclaimed_bytes_total",
            "Bytes freed by best-effort reclamation.")
        registry.gauge_callback(
            "nest_lots_active",
            lambda: sum(1 for l in self.lots.values()
                        if l.state is LotState.ACTIVE),
            "Lots currently holding a guarantee.")
        registry.gauge_callback(
            "nest_lot_used_bytes", self.total_used,
            "Bytes charged across all lots.")

    def _emit(self, rtype: str, **fields) -> None:
        """Publish one durable mutation to the bound journal sink.

        Expiry is deliberately *not* journaled: it is a pure function
        of ``expires_at`` vs the clock, so recovery re-derives it
        lazily -- which is exactly how a lot that expired while the
        server was down comes back BEST_EFFORT.
        """
        if self.journal is not None:
            self.journal(rtype, **fields)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def expire_lots(self) -> list[Lot]:
        """Flip expired ACTIVE lots to BEST_EFFORT; returns those flipped.

        Expiry is checked lazily on every entry point, which keeps the
        manager clock-agnostic (no timers needed).
        """
        now = self.clock()
        flipped = []
        for lot in self.lots.values():
            if lot.state is LotState.ACTIVE and now >= lot.expires_at:
                lot.state = LotState.BEST_EFFORT
                flipped.append(lot)
        if flipped and self._m_expired is not None:
            self._m_expired.inc(len(flipped))
        return flipped

    def _guaranteed_bytes(self) -> int:
        """Space promised to ACTIVE non-volatile lots (full capacity)."""
        return sum(l.capacity for l in self.lots.values()
                   if l.state is LotState.ACTIVE and not l.volatile)

    def _best_effort_used(self) -> int:
        """Space occupied by reclaimable data: best-effort lots plus
        active volatile lots."""
        return sum(l.used for l in self.lots.values()
                   if l.state is LotState.BEST_EFFORT
                   or (l.state is LotState.ACTIVE and l.volatile))

    def available_for_new_lot(self) -> int:
        """Bytes a new lot could be granted *without* reclamation."""
        self.expire_lots()
        return self.capacity_bytes - self._guaranteed_bytes() - self._best_effort_used()

    def reclaimable_bytes(self) -> int:
        """Best-effort bytes that could be reclaimed if needed."""
        self.expire_lots()
        return self._best_effort_used()

    def create_lot(self, owner: str, capacity: int, duration: float,
                   volatile: bool = False) -> Lot:
        """Create a lot, reclaiming best-effort space if necessary.

        A ``volatile`` lot (IBP volatile allocations) makes no space
        guarantee: nothing is reclaimed for it, and its own data is
        reclaimable at any time.

        Raises :exc:`LotError` when the guarantee cannot be met even
        after reclaiming every best-effort byte.
        """
        if capacity <= 0 or duration <= 0:
            raise LotError("capacity and duration must be positive")
        self.expire_lots()
        if not volatile:
            shortfall = capacity - self.available_for_new_lot()
            if shortfall > 0:
                if shortfall > self.reclaimable_bytes():
                    raise LotError(
                        f"cannot guarantee {capacity} bytes: "
                        f"{self.available_for_new_lot()} free, "
                        f"{self.reclaimable_bytes()} reclaimable"
                    )
                self._reclaim(shortfall)
        now = self.clock()
        lot = Lot(
            lot_id=f"lot{self._next_id}",
            owner=owner,
            capacity=int(capacity),
            expires_at=now + duration,
            last_used=now,
            volatile=volatile,
        )
        self._next_id += 1
        self.lots[lot.lot_id] = lot
        self._emit("lot_create", lot_id=lot.lot_id, owner=owner,
                   capacity=lot.capacity, expires_at=lot.expires_at,
                   volatile=volatile, last_used=now)
        return lot

    def renew(self, lot_id: str, duration: float, owner: str | None = None) -> Lot:
        """Extend a lot's duration; best-effort lots reactivate if the
        guarantee still fits (the paper allows indefinite renewal)."""
        lot = self._get(lot_id, owner)
        self.expire_lots()
        if lot.state is LotState.BEST_EFFORT:
            others = self.capacity_bytes - self._guaranteed_bytes() - (
                self._best_effort_used() - lot.used
            )
            if lot.capacity > others:
                raise LotError(f"cannot reactivate {lot_id}: space since promised away")
            lot.state = LotState.ACTIVE
        lot.expires_at = self.clock() + duration
        self._emit("lot_renew", lot_id=lot.lot_id,
                   expires_at=lot.expires_at, state=lot.state.value)
        return lot

    def delete_lot(self, lot_id: str, owner: str | None = None) -> list[str]:
        """Terminate a lot; returns paths whose only charge was here
        (candidates for deletion by the storage manager)."""
        lot = self._get(lot_id, owner)
        del self.lots[lot.lot_id]
        self._emit("lot_delete", lot_id=lot.lot_id)
        orphans = []
        for path in lot.charges:
            if not any(path in other.charges for other in self.lots.values()):
                orphans.append(path)
        return orphans

    def stat(self, lot_id: str) -> dict:
        """Describe one lot."""
        self.expire_lots()
        return self._get(lot_id).describe()

    def list_lots(self, owner: str | None = None) -> list[dict]:
        """Describe all lots, optionally filtered by owner."""
        self.expire_lots()
        return [
            lot.describe()
            for lot in self.lots.values()
            if owner is None or lot.owner == owner
        ]

    def _get(self, lot_id: str, owner: str | None = None) -> Lot:
        lot = self.lots.get(lot_id)
        if lot is None:
            raise LotError(f"no such lot {lot_id!r}")
        if owner is not None and not self._usable_by(owner, lot):
            raise LotError(f"lot {lot_id!r} not owned by {owner!r}")
        return lot

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _usable_by(self, user: str, lot: Lot) -> bool:
        """A lot is usable by its owner and, for group lots, by every
        member of the owning group."""
        if lot.owner == user:
            return True
        if lot.owner.startswith("group:"):
            members = self.groups.get(lot.owner[len("group:"):], set())
            return user in members
        return False

    def user_limit(self, owner: str) -> int:
        """Total bytes ``owner`` may store (the quota-mode limit),
        including group lots they can use."""
        self.expire_lots()
        return sum(l.capacity for l in self.lots.values()
                   if self._usable_by(owner, l) and l.state is LotState.ACTIVE)

    def attach(self, lot_id: str, prefix: str, owner: str | None = None) -> None:
        """Bind a path prefix to a lot: future charges for files under
        ``prefix`` are packed into that lot first."""
        lot = self._get(lot_id, owner)
        normalized = prefix.rstrip("/") or "/"
        self.attachments[normalized] = lot.lot_id
        self._emit("lot_attach", lot_id=lot.lot_id, prefix=normalized)

    def pin_lot(self, lot_id: str, pinned: bool = True,
                owner: str | None = None) -> Lot:
        """Pin (or unpin) a lot: pinned lots' files are excluded from
        storage-tier demotion.  Journaled, so pins survive a crash."""
        lot = self._get(lot_id, owner)
        lot.pinned = bool(pinned)
        self._emit("lot_pin", lot_id=lot.lot_id, pinned=lot.pinned)
        return lot

    def is_pinned(self, path: str) -> bool:
        """Is ``path`` held in the fast tier by a pinned lot -- either
        charged against one, or under a prefix attached to one?"""
        for lot in self.lots.values():
            if lot.pinned and path in lot.charges:
                return True
        attached = self._attached_lot(path)
        return attached is not None and attached.pinned

    def _attached_lot(self, path: str) -> Lot | None:
        best: str | None = None
        for prefix in self.attachments:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            return None
        return self.lots.get(self.attachments[best])

    def charge(self, owner: str, path: str, nbytes: int) -> None:
        """Charge a file's growth against the lots ``owner`` can use
        (an attached lot for the path first, then their own, then
        group lots).

        In ``nest`` mode the bytes are packed into specific active lots
        (spanning as needed); in ``quota`` mode only the per-user total
        is enforced and charges are recorded against the first active
        lot for bookkeeping -- including its overfill caveat.
        """
        if nbytes <= 0:
            return
        self.expire_lots()
        now = self.clock()
        mine = [l for l in self.lots.values()
                if self._usable_by(owner, l) and l.state is LotState.ACTIVE]
        attached = self._attached_lot(path)
        mine.sort(key=lambda l: (l is not attached, l.owner != owner, l.lot_id))
        if not mine:
            raise LotError(f"user {owner!r} has no active lot")
        if self.enforcement == "quota":
            limit = sum(l.capacity for l in mine)
            used = sum(l.used for l in mine)
            if used + nbytes > limit:
                raise LotError(
                    f"user {owner!r} over quota: {used}+{nbytes} > {limit}"
                )
            lot = mine[0]
            lot.charges[path] = lot.charges.get(path, 0) + nbytes
            lot.last_used = now
            self._emit("lot_charge", lot_id=lot.lot_id, path=path,
                       nbytes=nbytes, last_used=now)
            return
        # nest-managed: pack into lots with room, spanning if needed.
        # Check first so a failed charge leaves no partial state.
        total_free = sum(lot.free for lot in mine)
        if nbytes > total_free:
            raise LotError(
                f"user {owner!r} out of lot space: {nbytes - total_free} bytes over"
            )
        remaining = nbytes
        for lot in mine:
            room = lot.free
            if room <= 0:
                continue
            take = min(room, remaining)
            lot.charges[path] = lot.charges.get(path, 0) + take
            lot.last_used = now
            self._emit("lot_charge", lot_id=lot.lot_id, path=path,
                       nbytes=take, last_used=now)
            remaining -= take
            if remaining == 0:
                return

    def rename_charges(self, path: str, new_path: str) -> None:
        """Re-key a renamed path's charges (and attachment).

        Not journaled: the storage-level ``rename`` record replays
        this re-keying deterministically.
        """
        for lot in self.lots.values():
            if path in lot.charges:
                lot.charges[new_path] = lot.charges.pop(path)
        if path in self.attachments:
            self.attachments[new_path] = self.attachments.pop(path)

    def release(self, path: str, nbytes: int | None = None) -> None:
        """Release a file's charges (all of them when ``nbytes`` is None)."""
        remaining = nbytes
        for lot in self.lots.values():
            if path not in lot.charges:
                continue
            if remaining is None:
                freed = lot.charges.pop(path)
                self._emit("lot_release", lot_id=lot.lot_id, path=path,
                           nbytes=freed)
            else:
                take = min(lot.charges[path], remaining)
                lot.charges[path] -= take
                remaining -= take
                if lot.charges[path] == 0:
                    del lot.charges[path]
                self._emit("lot_release", lot_id=lot.lot_id, path=path,
                           nbytes=take)
                if remaining == 0:
                    return

    # ------------------------------------------------------------------
    # reclamation
    # ------------------------------------------------------------------
    def _victim_order(self) -> list[Lot]:
        best_effort = [
            l for l in self.lots.values()
            if l.state is LotState.BEST_EFFORT
            or (l.state is LotState.ACTIVE and l.volatile)
        ]
        if self.reclaim_policy == "expired-first":
            best_effort.sort(key=lambda l: l.expires_at)
        elif self.reclaim_policy == "largest-first":
            best_effort.sort(key=lambda l: -l.used)
        else:  # lru
            best_effort.sort(key=lambda l: l.last_used)
        return best_effort

    def _reclaim(self, needed: int) -> None:
        freed = 0
        reclaimed_files = 0
        for lot in self._victim_order():
            if freed >= needed:
                break
            for path in list(lot.charges):
                nbytes = lot.charges.pop(path)
                self._emit("lot_reclaim", lot_id=lot.lot_id, path=path,
                           nbytes=nbytes)
                freed += nbytes
                reclaimed_files += 1
                if not any(path in other.charges for other in self.lots.values()):
                    self.on_reclaim(path)
                if freed >= needed:
                    break
            if not lot.charges:
                del self.lots[lot.lot_id]
                self._emit("lot_delete", lot_id=lot.lot_id)
        if reclaimed_files and self._m_reclaimed_files is not None:
            self._m_reclaimed_files.inc(reclaimed_files)
            self._m_reclaimed_bytes.inc(freed)

    def total_used(self) -> int:
        """Bytes charged across all lots."""
        return sum(l.used for l in self.lots.values())

    # ------------------------------------------------------------------
    # durability (snapshot serialization + journal-replay restore)
    # ------------------------------------------------------------------
    def serialize(self) -> dict:
        """JSON-able full state for a compacted snapshot."""
        return {
            "next_id": self._next_id,
            "attachments": dict(self.attachments),
            "lots": [
                {
                    "lot_id": l.lot_id,
                    "owner": l.owner,
                    "capacity": l.capacity,
                    "expires_at": l.expires_at,
                    "state": l.state.value,
                    "volatile": l.volatile,
                    "pinned": l.pinned,
                    "last_used": l.last_used,
                    "charges": dict(l.charges),
                }
                for l in sorted(self.lots.values(), key=lambda l: l.lot_id)
            ],
        }

    def restore(self, data: dict) -> None:
        """Replace all lot state from a snapshot (in place, so shared
        references -- gauges, the storage manager -- stay valid)."""
        self.lots.clear()
        for doc in data["lots"]:
            self.restore_lot(
                lot_id=doc["lot_id"], owner=doc["owner"],
                capacity=int(doc["capacity"]),
                expires_at=float(doc["expires_at"]),
                state=doc.get("state", LotState.ACTIVE.value),
                volatile=bool(doc.get("volatile", False)),
                pinned=bool(doc.get("pinned", False)),
                last_used=float(doc.get("last_used", 0.0)),
                charges={p: int(n) for p, n in doc.get("charges", {}).items()},
            )
        self.attachments.clear()
        self.attachments.update(data.get("attachments", {}))
        self._next_id = max(self._next_id, int(data.get("next_id", 1)))

    def restore_lot(self, *, lot_id: str, owner: str, capacity: int,
                    expires_at: float, state: str = "active",
                    volatile: bool = False, pinned: bool = False,
                    last_used: float = 0.0,
                    charges: dict[str, int] | None = None) -> Lot:
        """Re-create one lot exactly as journaled (replay path; no
        space checks -- the original create already passed them)."""
        lot = Lot(
            lot_id=lot_id, owner=owner, capacity=int(capacity),
            expires_at=expires_at, state=LotState(state),
            volatile=volatile, pinned=pinned, last_used=last_used,
        )
        if charges:
            lot.charges.update(charges)
        self.lots[lot_id] = lot
        # Never re-mint an id that history already used.
        if lot_id.startswith("lot"):
            try:
                self._next_id = max(self._next_id, int(lot_id[3:]) + 1)
            except ValueError:
                pass
        return lot

    def lots_for_user(self, owner: str) -> list[Lot]:
        """The user's lots, active first."""
        self.expire_lots()
        mine = [l for l in self.lots.values() if l.owner == owner]
        mine.sort(key=lambda l: (l.state is not LotState.ACTIVE, l.lot_id))
        return mine
