"""The live NeST server: dispatcher + listeners for every protocol.

One :class:`NestServer` binds a TCP listener per configured protocol
(Figure 1's protocol layer), accepts connections, and hands each to the
matching handler from :mod:`repro.nest.handlers`.  All handlers share
the single storage manager (synchronous metadata path), the single
transfer manager (asynchronous data path, cross-protocol scheduling),
the gray-box cache model, and the GSI context -- that sharing is what
distinguishes NeST from JBOS.

Ports default to 0 (ephemeral) so tests and examples can run many
servers side by side; the bound ports are available as ``server.ports``
after :meth:`NestServer.start`.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

from repro.classads import ClassAd
from repro.faults import FaultPlan
from repro.nest.advertise import build_advertisement
from repro.nest.auth import CertificateAuthority, GSIContext
from repro.nest.backends import DataStore
from repro.nest.concurrency import EVENTS, THREADS, ServerModelSwitcher
from repro.nest.config import NestConfig
from repro.nest.eventserver import EventLoop
from repro.nest.graybox import GrayBoxCacheModel
from repro.nest.handlers import HANDLERS
from repro.nest.storage import StorageManager
from repro.nest.transfer import TransferManager
from repro.obs import Observability
from repro.obs.log import get_logger
from repro.obs.metrics import global_registry
from repro.obs.mgmt import ManagementEndpoint
from repro.obs.slo import SloEngine
from repro.tier.heat import HeatTracker

logger = get_logger(__name__)


class FileHandleRegistry:
    """NFS file handles: stable token <-> path mapping, server-wide.

    Tokens are scoped to a restart **epoch**: the durability layer
    bumps the epoch on every recovery, and the epoch is folded into
    the high 32 bits of each handed-out token.  A handle minted before
    a crash therefore fails typed (stale) on the restarted server --
    it can never silently resolve to whatever now lives at that path.
    The default epoch 0 leaves tokens numerically unchanged for
    servers that run without a ``state_dir``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._by_token: dict[int, str] = {1: "/"}
        self._by_path: dict[str, int] = {"/": 1}
        self._next = itertools.count(2)

    @property
    def epoch(self) -> int:
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Adopt a restart epoch; every pre-existing token goes stale."""
        with self._lock:
            self._epoch = int(epoch) & 0xFFFFFFFF

    def token_for(self, path: str) -> int:
        """The (stable within this epoch) token for a path."""
        with self._lock:
            token = self._by_path.get(path)
            if token is None:
                token = next(self._next)
                self._by_path[path] = token
                self._by_token[token] = path
            return (self._epoch << 32) | token

    def path_of(self, token: int) -> str | None:
        """The path behind a token, or None for stale handles (unknown
        token *or* a token minted in an earlier epoch)."""
        with self._lock:
            if (token >> 32) != self._epoch:
                return None
            return self._by_token.get(token & 0xFFFFFFFF)

    def forget(self, path: str) -> None:
        """Invalidate a path's handle (delete/rename/rmdir).

        Also drops every handle *under* the path, so removing or
        renaming a directory invalidates its whole subtree -- a token
        must never resolve to a file that re-appears at the same path
        later with different contents.
        """
        if path == "/":
            return
        prefix = path.rstrip("/") + "/"
        with self._lock:
            stale = [p for p in self._by_path
                     if p == path or p.startswith(prefix)]
            for p in stale:
                del self._by_token[self._by_path.pop(p)]


class NestServer:
    """A complete, running NeST appliance on localhost TCP."""

    def __init__(
        self,
        config: NestConfig | None = None,
        store: DataStore | None = None,
        ca: CertificateAuthority | None = None,
        host: str = "127.0.0.1",
        ports: dict[str, int] | None = None,
        subject_map: dict[str, str] | None = None,
        faults: FaultPlan | None = None,
        disk_faults=None,
    ):
        self.config = config or NestConfig()
        self.config.validate()
        self.host = host
        self.faults = faults
        self.disk_faults = disk_faults
        #: this appliance's telemetry: metrics registry, tracer, span
        #: recorder, and live-health consolidation, private per server
        #: so side-by-side instances stay isolated.
        self.obs = Observability(
            service=self.config.name,
            span_limit=self.config.span_limit,
            health_window=self.config.health_window,
        )
        self.fhandles = FileHandleRegistry()
        #: per-file access heat: every approved read feeds it, the
        #: migration policy and the autoscaler read it, and its top-N
        #: surfaces as the ClassAd ``HotFiles`` block.
        self.heat = HeatTracker(
            halflife=self.config.heat_halflife,
            max_files=self.config.heat_max_files,
        )
        self.heat.register_metrics(self.obs.registry,
                                   top_n=self.config.heat_top_files)
        #: hierarchical storage: when tiering is on, the storage
        #: manager's backend is a TieredStore fronting a slow cold
        #: store with the fast local one; residency journals through
        #: the durability layer like every other metadata mutation.
        self.tiered = None
        if self.config.tiering:
            store = self._build_tiered(store)
        self.storage = StorageManager(
            store=store,
            capacity_bytes=self.config.capacity_bytes,
            clock=time.time,
            require_lots=self.config.require_lots,
            lot_enforcement=self.config.lot_enforcement,
            reclaim_policy=self.config.reclaim_policy,
            anonymous_rights=self.config.anonymous_rights,
            invalidate=self.fhandles.forget,
            registry=self.obs.registry,
            heat=self.heat,
        )
        #: Durable state: when the config names a ``state_dir``, recover
        #: whatever a previous incarnation journaled there -- lots,
        #: ACLs, namespace, accounting -- and bind the journal sinks so
        #: this incarnation's mutations are recorded too.  The restart
        #: epoch invalidates every pre-crash NFS file handle.
        self.durability: "DurabilityManager | None" = None
        self.recovery_report = None
        if self.config.state_dir:
            from repro.durability import DurabilityManager

            self.durability = DurabilityManager(
                self.config.state_dir,
                fsync=self.config.journal_fsync,
                snapshot_every=self.config.snapshot_every,
                faults=disk_faults,
                registry=self.obs.registry,
                batch_records=self.config.journal_batch_records,
                batch_delay=self.config.journal_batch_delay,
            )
            self.recovery_report = self.durability.recover_into(
                self.storage, tier=self.tiered)
            self.fhandles.set_epoch(self.recovery_report.epoch)
            logger.info(
                "%s recovered: %d records replayed, %d lots, "
                "%d interrupted puts, epoch %d",
                self.config.name,
                self.recovery_report.replayed_records,
                len(self.recovery_report.recovered_lots),
                len(self.recovery_report.interrupted_puts),
                self.recovery_report.epoch)
        #: background migration loop (created with the server so its
        #: policy knobs come from config; started/stopped with it).
        self.tier_manager = None
        if self.tiered is not None:
            from repro.tier.policy import TierManager, TierPolicy

            self.tier_manager = TierManager(
                self.storage, self.tiered, self.heat,
                TierPolicy(
                    demote_after=self.config.tier_demote_after,
                    min_size=self.config.tier_min_size,
                    heat_ceiling=self.config.tier_heat_ceiling,
                ),
                max_per_scan=self.config.tier_max_per_scan,
                tracer=self.obs.tracer,
                registry=self.obs.registry,
            )
        #: decentralized autoscaler; built by :meth:`attach_autoscaler`
        #: once a federation (catalog + replicator) exists.
        self.autoscaler = None
        self.graybox = GrayBoxCacheModel(self.config.graybox_cache_bytes)
        self.transfers = TransferManager(
            self.config, residency=self.graybox.predict_residency,
            obs=self.obs,
        )
        #: event-driven data path (paper §4.1's "events", live) and the
        #: adaptive server-model switcher -- created only when the
        #: configured ``concurrency_server`` can route to them, so the
        #: default threaded appliance carries no extra threads or fds.
        self._eventloop: EventLoop | None = None
        self._switcher: ServerModelSwitcher | None = None
        reg = self.obs.registry
        #: service-level objectives evaluated against this server's own
        #: registry; publishes slo_* gauges, feeds /slo, the ClassAd's
        #: SloDegraded attribute, and the adaptive switcher.
        self.slo: SloEngine | None = None
        if self.config.slo:
            self.slo = SloEngine(registry=reg,
                                 windows=tuple(self.config.slo_windows))
        if self.config.concurrency_server in ("events", "adaptive"):
            self._eventloop = EventLoop(
                workers=self.config.event_workers,
                name=self.config.name, registry=reg)
        if self.config.concurrency_server == "adaptive":
            self._switcher = ServerModelSwitcher(
                connections=self.active_connections,
                queue_depth=self.transfers.queue_depth,
                throughput=lambda: self.obs.health.throughput_bps() / 1e6,
                high=self.config.server_switch_high,
                low=self.config.server_switch_low,
                interval=self.config.server_switch_interval,
                slo_degraded=(self.slo.degraded if self.slo is not None
                              else None),
                registry=reg,
                tracer=self.obs.tracer,
            )
            reg.gauge_callback(
                "nest_server_model_events",
                lambda: 1.0 if self._switcher.model == EVENTS else 0.0,
                "1 when the adaptive switcher currently routes new "
                "connections to the event loop.")
            reg.gauge_callback(
                "nest_server_model_flips",
                lambda: float(self._switcher.flips),
                "Times the adaptive switcher changed server model.")
        self._m_connections = reg.counter(
            "nest_connections_total", "Accepted client connections.",
            labelnames=("protocol",))
        self._m_requests = reg.counter(
            "nest_requests_total",
            "Requests served, by protocol, operation, and outcome.",
            labelnames=("protocol", "op", "outcome"), max_series=256)
        self._m_request_seconds = reg.histogram(
            "nest_request_seconds", "End-to-end request latency.",
            labelnames=("protocol",))
        reg.gauge_callback("nest_active_connections",
                           self.active_connections,
                           "Live handler connections.")
        health = self.obs.health
        health.add_probe("queue_depth", self.transfers.queue_depth)
        health.add_probe("transfer_failures",
                         lambda: len(self.transfers.failures()))
        if self.faults is not None:
            health.add_probe("faults_injected", self.faults.fired)
        health.add_probe("retries", _client_retries_observed)
        self.mgmt: ManagementEndpoint | None = None
        if self.config.require_lots and self.config.default_anonymous_lot_bytes:
            # Recovery may have brought the default lot back already; a
            # second one would double the anonymous guarantee.
            recovered_anonymous = any(
                lot.owner == "anonymous"
                for lot in self.storage.lots.lots.values())
            if not recovered_anonymous:
                self.storage.lots.create_lot(
                    "anonymous", self.config.default_anonymous_lot_bytes,
                    duration=365 * 24 * 3600.0,
                )
        self.ca = ca or CertificateAuthority()
        self.gsi = GSIContext(self.ca)
        if "ibp" in self.config.protocols:
            from repro.nest.ibp import IbpDepot

            self.ibp_depot = IbpDepot(self.storage, host=host)
        else:
            self.ibp_depot = None
        #: GSI subject -> local user name; unmapped subjects map to
        #: themselves (the subject *is* the identity).
        self.subject_map = dict(subject_map or {})
        self._requested_ports = dict(ports or {})
        self.ports: dict[str, int] = {}
        self._listeners: dict[str, socket.socket] = {}
        self._threads: list[threading.Thread] = []
        self._running = False
        #: live handler connections: handler -> its thread.
        self._conn_lock = threading.Lock()
        self._connections: dict[object, threading.Thread] = {}
        #: collector this server advertises into (None until
        #: :meth:`advertise_to`), plus the heartbeat that refreshes the
        #: ad before its TTL expires.
        self._collector = None
        self._advert_ttl: float | None = None
        self._advert_interval: float = 0.0
        self._advert_stop = threading.Event()
        self._advert_thread: threading.Thread | None = None

    def _build_tiered(self, store: DataStore | None) -> DataStore:
        """Wrap the fast store with the cold tier per config."""
        from repro.nest.backends import LocalFSStore, MemoryStore
        from repro.tier.store import RateLimitedStore, TieredStore

        fast = store if store is not None else MemoryStore()
        if self.config.tier_cold_dir:
            cold: DataStore = LocalFSStore(self.config.tier_cold_dir)
        else:
            cold = MemoryStore()
        if self.config.tier_cold_bandwidth or self.config.tier_cold_latency:
            cold = RateLimitedStore(
                cold, bandwidth_bps=self.config.tier_cold_bandwidth,
                latency=self.config.tier_cold_latency)
        self.tiered = TieredStore(fast, cold, registry=self.obs.registry)
        return self.tiered

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "NestServer":
        """Bind every protocol listener and begin accepting."""
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        for proto in self.config.protocols:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.config.reuse_port:
                # Shard workers share one port; the kernel spreads
                # accepted connections across the processes.
                listener.setsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEPORT, 1)
            listener.bind((self.host, self._requested_ports.get(proto, 0)))
            # Deep backlog: the event path is expected to absorb
            # thousands-of-connections ramps faster than a 32-deep
            # queue would tolerate.
            listener.listen(1024)
            listener.settimeout(0.2)
            self._listeners[proto] = listener
            self.ports[proto] = listener.getsockname()[1]
            thread = threading.Thread(
                target=self._accept_loop, args=(proto, listener),
                name=f"nest-accept-{proto}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.config.management:
            self.mgmt = ManagementEndpoint(
                self.obs.registry, health=self.obs.health,
                recorder=self.obs.recorder, host=self.host,
                port=self._requested_ports.get("mgmt", 0),
                service=self.config.name,
                ad_attributes=self.obs.health_attributes,
                slo=(self.slo.report if self.slo is not None else None),
                refresh=(self.slo.evaluate if self.slo is not None else None),
            ).start()
            self.ports["mgmt"] = self.mgmt.port
        if self._collector is not None:
            # advertise_to() was called before start(): publish now that
            # the ports are known, and begin the heartbeat.
            self._publish_ad()
            self._start_heartbeat()
        if (self.tier_manager is not None
                and self.config.tier_scan_interval > 0):
            self.tier_manager.start(self.config.tier_scan_interval)
        logger.info("%s listening: %s", self.config.name, self.ports)
        return self

    def stop(self, drain_timeout: float = 5.0) -> dict[str, int]:
        """Graceful shutdown: stop accepting, drain, then force-close.

        The sequence is (0) withdraw the availability advertisement and
        stop the re-advertise heartbeat, so no scheduler matches a
        dying appliance; (1) close every listener and join the accept
        threads, so no new connection arrives; (2) immediately close
        connections idle between requests, and give in-flight handlers
        up to ``drain_timeout`` seconds to finish their current
        transfer; (3) force-close whatever is left; (4) join every
        handler thread and shut the transfer manager down.  Returns
        ``{"drained": n, "forced": m}`` so operators (and tests) can
        see whether the drain was clean.
        """
        self._running = False
        self._stop_heartbeat_and_withdraw()
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.tier_manager is not None:
            self.tier_manager.stop()
        for listener in self._listeners.values():
            try:
                listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2)

        # Idle connections are parked on a blocking read between
        # requests; closing them now is invisible to correctness and
        # keeps the drain window for handlers doing real work.  The
        # event loop's idle connections are parked in the selector:
        # begin_shutdown retires them all synchronously, leaving only
        # its busy dispatches for the shared drain window below.
        forced = 0
        if self._eventloop is not None:
            self._eventloop.begin_shutdown()
        with self._conn_lock:
            for handler in list(self._connections):
                if not getattr(handler, "busy", False):
                    handler.force_close()

        deadline = time.monotonic() + max(drain_timeout, 0.0)
        while time.monotonic() < deadline:
            with self._conn_lock:
                threaded_live = len(self._connections)
            event_live = (self._eventloop.busy_count()
                          if self._eventloop is not None else 0)
            if not threaded_live and not event_live:
                break
            time.sleep(0.01)

        with self._conn_lock:
            stragglers = list(self._connections.items())
        for handler, _thread in stragglers:
            forced += 1
            handler.force_close()
        for handler, thread in stragglers:
            self._join_handler(handler, thread)
        if self._eventloop is not None:
            forced += self._eventloop.finish_shutdown()

        self.transfers.shutdown()
        if self.durability is not None:
            # Final compaction: a clean stop leaves a fresh snapshot and
            # an empty journal, so the next start recovers instantly.
            self.durability.close()
        # The management endpoint outlives the data path so operators
        # can scrape a draining server; it goes down last.
        if self.mgmt is not None:
            self.mgmt.stop()
            self.mgmt = None
        drained = forced == 0
        logger.info("%s stopped (drained=%s forced=%d)",
                    self.config.name, drained, forced)
        return {"drained": int(drained), "forced": forced}

    def _join_handler(self, handler, thread: threading.Thread) -> None:
        """Join a straggler's handler thread and drop it from the
        connection table.

        Tolerates the accept-loop hand-off window: the handler is
        registered in ``_connections`` *before* ``thread.start()`` (so
        the drain can never miss it), which means a concurrent stop
        can reach a thread that has not started yet -- ``join()`` then
        raises RuntimeError.  The accept loop is about to start it (or
        has already bailed out), so retry briefly instead of crashing
        mid-drain.
        """
        deadline = time.monotonic() + 2.0
        while True:
            try:
                thread.join(timeout=max(deadline - time.monotonic(), 0.01))
                break
            except RuntimeError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.002)
        with self._conn_lock:
            self._connections.pop(handler, None)

    def crash(self) -> None:
        """Die like SIGKILL (tests, chaos drills): no drain, no final
        snapshot, no ad withdrawal -- durable state stays exactly as
        the journal last fsync'd it.  Only OS resources are released
        so the same process can host the restarted appliance.
        """
        self._running = False
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.tier_manager is not None:
            self.tier_manager.stop()
        if self.durability is not None:
            self.durability.close(snapshot=False)
        self._stop_heartbeat()
        for listener in self._listeners.values():
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            handlers = list(self._connections)
        for handler in handlers:
            handler.force_close()
        if self._eventloop is not None:
            self._eventloop.begin_shutdown()
            self._eventloop.finish_shutdown(timeout=0.5)
        self.transfers.shutdown()
        if self.mgmt is not None:
            self.mgmt.stop()
            self.mgmt = None
        logger.info("%s crashed (simulated)", self.config.name)

    def attach_catalog(self, catalog) -> int:
        """Wire a replica catalog into the durability layer: restores
        catalog state recovered from this server's ``state_dir``,
        binds the journal sink, re-advertises.  Returns how many
        replayed replica records were applied (0 when memory-only)."""
        if self.durability is None:
            return 0
        return self.durability.attach_catalog(catalog)

    def attach_autoscaler(self, replicator, *, start: bool = True,
                          prefix: str | None = None):
        """Build this appliance's demand-driven autoscaler on top of an
        existing federation replicator.

        The scaler reads *this* server's health monitor, SLO engine,
        and heat tracker (decentralized: every appliance decides for
        itself) and replicates its hottest files through ``replicator``
        -- whose placement policy already refuses degraded peers.
        Returns the scaler; ``start=False`` leaves the loop to the
        caller (tests drive :meth:`~repro.tier.autoscale.AutoScaler.tick`
        by hand).
        """
        from repro.tier.autoscale import AutoScaler

        cfg = self.config
        self.autoscaler = AutoScaler(
            cfg.name, self.obs.health, self.heat, replicator,
            slo=self.slo,
            queue_high=cfg.autoscale_queue_high,
            error_high=cfg.autoscale_error_high,
            rate_high=cfg.autoscale_rate_high,
            max_files=cfg.autoscale_files,
            max_replicas=cfg.autoscale_max_replicas,
            budget=cfg.autoscale_budget,
            window=cfg.autoscale_window,
            cooldown=cfg.autoscale_cooldown,
            hysteresis=cfg.autoscale_hysteresis,
            prefix=prefix if prefix is not None else replicator.prefix,
            local_lookup=self._local_replica_lookup(replicator),
            tracer=self.obs.tracer,
            registry=self.obs.registry,
        )
        if start:
            self.autoscaler.start(cfg.autoscale_interval)
        return self.autoscaler

    def _local_replica_lookup(self, replicator):
        """A ``logical -> (size, crc32)`` probe over this appliance's
        own store, so the autoscaler can seed the catalog with a local
        copy the federation does not know about yet."""
        from repro.nest.io import stream_crc32

        def lookup(logical: str):
            try:
                path = replicator.path_for(logical)
            except ValueError:
                return None
            store = self.storage.store
            exists = getattr(store, "exists", None)
            try:
                if exists is not None and not exists(path):
                    return None
                with store.open_read(path) as stream:
                    crc, size = stream_crc32(stream)
            except (OSError, KeyError):
                return None
            return size, crc

        return lookup

    def active_connections(self) -> int:
        """How many handler connections are currently live (threaded
        handler threads plus connections owned by the event loop)."""
        with self._conn_lock:
            live = len(self._connections)
        if self._eventloop is not None:
            live += self._eventloop.live()
        return live

    @property
    def running(self) -> bool:
        """Whether the server is accepting connections."""
        return self._running

    def __enter__(self) -> "NestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _accept_loop(self, proto: str, listener: socket.socket) -> None:
        handler_cls = HANDLERS[proto]
        while self._running:
            try:
                conn, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self.faults is not None:
                wrapped = self.faults.wrap_accept(conn, label=f"nest-{proto}")
                if wrapped is None:
                    continue  # accept fault: connection already closed
                conn = wrapped
            if not self._running:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            self._m_connections.inc(protocol=proto)
            if self._route_model(proto) == EVENTS:
                # Event path: no thread -- the connection parks in the
                # selector until bytes arrive.  Unbuffered reads keep
                # pipelined requests visible to epoll.
                handler = handler_cls(self, conn, addr, unbuffered=True)
                handler.concurrency_model = EVENTS
                if self._eventloop.adopt(handler):
                    continue
                handler.finish()  # loop already shutting down
                continue
            handler = handler_cls(self, conn, addr)
            thread = threading.Thread(
                target=self._run_handler, args=(handler,),
                name=f"nest-{proto}-conn", daemon=True,
            )
            # Registered before start() so the drain can never miss a
            # live connection; stop()'s _join_handler tolerates the
            # not-yet-started window this opens.
            with self._conn_lock:
                self._connections[handler] = thread
            thread.start()

    def _route_model(self, proto: str) -> str:
        """Which server architecture serves this accepted connection."""
        if self._eventloop is None or not HANDLERS[proto].event_capable:
            return THREADS
        if self.config.concurrency_server == "events":
            return EVENTS
        return self._switcher.choose()

    def _run_handler(self, handler) -> None:
        try:
            handler.run()
        finally:
            with self._conn_lock:
                self._connections.pop(handler, None)

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def advertise_to(self, collector, ttl: float | None = None,
                     readvertise_interval: float | None = None) -> None:
        """Publish this server's availability ad into ``collector`` and
        keep it fresh.

        ``ttl`` is the ad's collector lifetime (None: the collector's
        default); ``readvertise_interval`` is the heartbeat period that
        refreshes the ad *before* that TTL expires (None: the config's
        ``advertise_interval``; 0 disables the heartbeat, leaving a
        one-shot ad).  The registration also wires the other half of
        the lifecycle: :meth:`stop` withdraws the ad as the first step
        of the graceful drain, so a stopping appliance disappears from
        matchmaking immediately instead of lingering until TTL expiry.

        Re-calling on a running server reconfigures the heartbeat: a
        changed interval stops the old beat thread and starts a fresh
        one (or none, for 0) -- the old thread must never keep
        re-reading the new interval, because ``Event.wait(0)`` returns
        immediately and would turn a disabled heartbeat into a hot
        spin flooding the collector.
        """
        self._collector = collector
        self._advert_ttl = ttl
        interval = (self.config.advertise_interval
                    if readvertise_interval is None else readvertise_interval)
        interval = max(float(interval), 0.0)
        reconfigured = interval != self._advert_interval
        self._advert_interval = interval
        if self._running:
            self._publish_ad()
            if reconfigured:
                self._stop_heartbeat()
            self._start_heartbeat()

    def _publish_ad(self) -> None:
        if self._collector is None:
            return
        try:
            self._collector.advertise(self.advertisement(),
                                      ttl=self._advert_ttl)
        except Exception:  # noqa: BLE001 - ads are best-effort
            logger.warning("%s: advertisement publish failed",
                           self.config.name, exc_info=True)

    def _start_heartbeat(self) -> None:
        if self._advert_interval <= 0 or self._advert_thread is not None:
            return
        self._advert_stop.clear()
        stop = self._advert_stop  # this thread's stop signal, pinned

        def beat() -> None:
            while True:
                interval = self._advert_interval
                if interval <= 0:
                    return  # disabled while running: exit, never spin
                if stop.wait(interval):
                    return
                if not self._running:
                    return
                self._publish_ad()

        self._advert_thread = threading.Thread(
            target=beat, name=f"nest-advertise-{self.config.name}",
            daemon=True)
        self._advert_thread.start()

    def _stop_heartbeat(self) -> None:
        """Stop (and join) the re-advertise heartbeat, if running."""
        self._advert_stop.set()
        if self._advert_thread is not None:
            self._advert_thread.join(timeout=2)
            self._advert_thread = None

    def _stop_heartbeat_and_withdraw(self) -> None:
        self._stop_heartbeat()
        if self._collector is not None:
            try:
                self._collector.withdraw(self.config.name)
            except Exception:  # noqa: BLE001 - withdrawal is best-effort
                logger.warning("%s: advertisement withdraw failed",
                               self.config.name, exc_info=True)

    # ------------------------------------------------------------------
    # identity and advertisement
    # ------------------------------------------------------------------
    def map_subject(self, subject: str) -> str:
        """Map an authenticated GSI subject to a local user."""
        return self.subject_map.get(subject, subject)

    def observe_request(self, protocol: str, op: str, ok: bool,
                        seconds: float, model: str | None = None) -> None:
        """Handler callback: one finished request's metrics + health.

        ``model`` names the server architecture that served the
        request ("threads"/"events"); successful requests feed the
        adaptive switcher's measured-goodput evidence.
        """
        self._m_requests.inc(protocol=protocol, op=op,
                             outcome="ok" if ok else "error")
        self._m_request_seconds.observe(seconds, protocol=protocol)
        self.obs.health.record_request(protocol, ok)
        if self._switcher is not None and model is not None and ok:
            # 1 request / elapsed = service rate, the low-load
            # regime's relative-goodput signal.
            self._switcher.report(model, 1, max(seconds, 1e-6))

    def advertisement(self) -> ClassAd:
        """Current resource/data availability as a ClassAd (§2.1),
        merged with the live measured-performance health block and the
        SLO verdict (``SloDegraded``), so matchmakers can steer load
        away from an appliance that is burning its error budget."""
        health = self.obs.health_attributes()
        if self.slo is not None:
            self.slo.evaluate()
            health.update(self.slo.attributes())
        # What is hot *here*: peer autoscalers and future predictive
        # placement read this next to the load numbers.
        health.update(self.heat.ad_attributes(
            top_n=self.config.heat_top_files))
        return build_advertisement(
            self.config.name, self.storage, list(self.config.protocols),
            host=self.host, ports=self.ports,
            health=health,
        )

    def endpoint(self, proto: str) -> tuple[str, int]:
        """(host, port) of a protocol's listener."""
        return self.host, self.ports[proto]


def _client_retries_observed() -> float:
    """Retries recorded process-wide by the client retry layer (the
    health feed surfaces them so an operator sees "clients are having
    to retry against this appliance")."""
    metric = global_registry().get("repro_client_retries_total")
    return metric.total() if metric is not None else 0.0
