"""The live NeST server: dispatcher + listeners for every protocol.

One :class:`NestServer` binds a TCP listener per configured protocol
(Figure 1's protocol layer), accepts connections, and hands each to the
matching handler from :mod:`repro.nest.handlers`.  All handlers share
the single storage manager (synchronous metadata path), the single
transfer manager (asynchronous data path, cross-protocol scheduling),
the gray-box cache model, and the GSI context -- that sharing is what
distinguishes NeST from JBOS.

Ports default to 0 (ephemeral) so tests and examples can run many
servers side by side; the bound ports are available as ``server.ports``
after :meth:`NestServer.start`.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time

from repro.classads import ClassAd
from repro.faults import FaultPlan
from repro.nest.advertise import build_advertisement
from repro.nest.auth import CertificateAuthority, GSIContext
from repro.nest.backends import DataStore
from repro.nest.config import NestConfig
from repro.nest.graybox import GrayBoxCacheModel
from repro.nest.handlers import HANDLERS
from repro.nest.storage import StorageManager
from repro.nest.transfer import TransferManager


class FileHandleRegistry:
    """NFS file handles: stable token <-> path mapping, server-wide."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_token: dict[int, str] = {1: "/"}
        self._by_path: dict[str, int] = {"/": 1}
        self._next = itertools.count(2)

    def token_for(self, path: str) -> int:
        """The (stable) token for a path, allocating if new."""
        with self._lock:
            token = self._by_path.get(path)
            if token is None:
                token = next(self._next)
                self._by_path[path] = token
                self._by_token[token] = path
            return token

    def path_of(self, token: int) -> str | None:
        """The path behind a token, or None for stale handles."""
        with self._lock:
            return self._by_token.get(token)

    def forget(self, path: str) -> None:
        """Invalidate a path's handle (delete/rename/rmdir).

        Also drops every handle *under* the path, so removing or
        renaming a directory invalidates its whole subtree -- a token
        must never resolve to a file that re-appears at the same path
        later with different contents.
        """
        if path == "/":
            return
        prefix = path.rstrip("/") + "/"
        with self._lock:
            stale = [p for p in self._by_path
                     if p == path or p.startswith(prefix)]
            for p in stale:
                del self._by_token[self._by_path.pop(p)]


class NestServer:
    """A complete, running NeST appliance on localhost TCP."""

    def __init__(
        self,
        config: NestConfig | None = None,
        store: DataStore | None = None,
        ca: CertificateAuthority | None = None,
        host: str = "127.0.0.1",
        ports: dict[str, int] | None = None,
        subject_map: dict[str, str] | None = None,
        faults: FaultPlan | None = None,
    ):
        self.config = config or NestConfig()
        self.config.validate()
        self.host = host
        self.faults = faults
        self.fhandles = FileHandleRegistry()
        self.storage = StorageManager(
            store=store,
            capacity_bytes=self.config.capacity_bytes,
            clock=time.time,
            require_lots=self.config.require_lots,
            lot_enforcement=self.config.lot_enforcement,
            reclaim_policy=self.config.reclaim_policy,
            anonymous_rights=self.config.anonymous_rights,
            invalidate=self.fhandles.forget,
        )
        self.graybox = GrayBoxCacheModel(self.config.graybox_cache_bytes)
        self.transfers = TransferManager(
            self.config, residency=self.graybox.predict_residency
        )
        if self.config.require_lots and self.config.default_anonymous_lot_bytes:
            self.storage.lots.create_lot(
                "anonymous", self.config.default_anonymous_lot_bytes,
                duration=365 * 24 * 3600.0,
            )
        self.ca = ca or CertificateAuthority()
        self.gsi = GSIContext(self.ca)
        if "ibp" in self.config.protocols:
            from repro.nest.ibp import IbpDepot

            self.ibp_depot = IbpDepot(self.storage, host=host)
        else:
            self.ibp_depot = None
        #: GSI subject -> local user name; unmapped subjects map to
        #: themselves (the subject *is* the identity).
        self.subject_map = dict(subject_map or {})
        self._requested_ports = dict(ports or {})
        self.ports: dict[str, int] = {}
        self._listeners: dict[str, socket.socket] = {}
        self._threads: list[threading.Thread] = []
        self._running = False
        #: live handler connections: handler -> its thread.
        self._conn_lock = threading.Lock()
        self._connections: dict[object, threading.Thread] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "NestServer":
        """Bind every protocol listener and begin accepting."""
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        for proto in self.config.protocols:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self._requested_ports.get(proto, 0)))
            listener.listen(32)
            listener.settimeout(0.2)
            self._listeners[proto] = listener
            self.ports[proto] = listener.getsockname()[1]
            thread = threading.Thread(
                target=self._accept_loop, args=(proto, listener),
                name=f"nest-accept-{proto}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain_timeout: float = 5.0) -> dict[str, int]:
        """Graceful shutdown: stop accepting, drain, then force-close.

        The sequence is (1) close every listener and join the accept
        threads, so no new connection arrives; (2) immediately close
        connections idle between requests, and give in-flight handlers
        up to ``drain_timeout`` seconds to finish their current
        transfer; (3) force-close whatever is left; (4) join every
        handler thread and shut the transfer manager down.  Returns
        ``{"drained": n, "forced": m}`` so operators (and tests) can
        see whether the drain was clean.
        """
        self._running = False
        for listener in self._listeners.values():
            try:
                listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2)

        # Idle connections are parked on a blocking read between
        # requests; closing them now is invisible to correctness and
        # keeps the drain window for handlers doing real work.
        forced = 0
        with self._conn_lock:
            for handler in list(self._connections):
                if not getattr(handler, "busy", False):
                    handler.force_close()

        deadline = time.monotonic() + max(drain_timeout, 0.0)
        while time.monotonic() < deadline:
            with self._conn_lock:
                if not self._connections:
                    break
            time.sleep(0.01)

        with self._conn_lock:
            stragglers = list(self._connections.items())
        for handler, _thread in stragglers:
            forced += 1
            handler.force_close()
        for handler, thread in stragglers:
            thread.join(timeout=2)
            with self._conn_lock:
                self._connections.pop(handler, None)

        self.transfers.shutdown()
        drained = len(stragglers) == 0
        return {"drained": int(drained), "forced": forced}

    def active_connections(self) -> int:
        """How many handler connections are currently live."""
        with self._conn_lock:
            return len(self._connections)

    def __enter__(self) -> "NestServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _accept_loop(self, proto: str, listener: socket.socket) -> None:
        handler_cls = HANDLERS[proto]
        while self._running:
            try:
                conn, addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self.faults is not None:
                wrapped = self.faults.wrap_accept(conn, label=f"nest-{proto}")
                if wrapped is None:
                    continue  # accept fault: connection already closed
                conn = wrapped
            if not self._running:
                try:
                    conn.close()
                except OSError:
                    pass
                return
            handler = handler_cls(self, conn, addr)
            thread = threading.Thread(
                target=self._run_handler, args=(handler,),
                name=f"nest-{proto}-conn", daemon=True,
            )
            with self._conn_lock:
                self._connections[handler] = thread
            thread.start()

    def _run_handler(self, handler) -> None:
        try:
            handler.run()
        finally:
            with self._conn_lock:
                self._connections.pop(handler, None)

    # ------------------------------------------------------------------
    # identity and advertisement
    # ------------------------------------------------------------------
    def map_subject(self, subject: str) -> str:
        """Map an authenticated GSI subject to a local user."""
        return self.subject_map.get(subject, subject)

    def advertisement(self) -> ClassAd:
        """Current resource/data availability as a ClassAd (§2.1)."""
        return build_advertisement(
            self.config.name, self.storage, list(self.config.protocols),
            host=self.host, ports=self.ports,
        )

    def endpoint(self, proto: str) -> tuple[str, int]:
        """(host, port) of a protocol's listener."""
        return self.host, self.ports[proto]
