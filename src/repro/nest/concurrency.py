"""Concurrency-model selection (paper, section 4.1).

NeST supports three concurrency architectures -- threads, processes,
and events -- because no single choice wins everywhere: "requests that
hit in the cache may perform best with events, and those that are I/O
bound perform best with threads or processes" [Pai et al.'s Flash].
Rather than asking an administrator, NeST adapts: "distributing
requests among the architectures equally at first, monitoring their
progress, and then slowly biasing requests toward the most effective
choice" -- while still trying all models periodically, which is the
visible *cost of adaptation* in Fig. 5.

The policy here is pure (no threads, no simulated time): harnesses call
:meth:`AdaptiveSelector.choose` per request and
:meth:`AdaptiveSelector.report` per completion.  The identical object
drives the live transfer manager and the simulated server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: Model names, as in the paper -- plus SEDA, the staged architecture
#: the paper plans to investigate ("e.g., SEDA and Crovella's
#: experimental server").
THREADS = "threads"
PROCESSES = "processes"
EVENTS = "events"
SEDA = "seda"
ALL_MODELS = (THREADS, PROCESSES, EVENTS, SEDA)


@dataclass
class ModelStats:
    """Running performance statistics for one concurrency model."""

    completions: int = 0
    ewma_goodput: float = 0.0  #: bytes per second of service, smoothed

    def observe(self, nbytes: int, elapsed: float, alpha: float) -> None:
        goodput = nbytes / elapsed if elapsed > 0 else float(nbytes or 1)
        if self.completions == 0:
            self.ewma_goodput = goodput
        else:
            self.ewma_goodput = alpha * goodput + (1 - alpha) * self.ewma_goodput
        self.completions += 1


class Selector:
    """Interface: pick a concurrency model for each incoming transfer."""

    def choose(self) -> str:
        raise NotImplementedError

    def report(self, model: str, nbytes: int, elapsed: float) -> None:
        """Feed back one completed transfer's size and service time."""


class FixedSelector(Selector):
    """Always the same model (the non-adaptive baselines of Fig. 5)."""

    def __init__(self, model: str):
        self.model = model

    def choose(self) -> str:
        return self.model

    def report(self, model: str, nbytes: int, elapsed: float) -> None:
        pass


class AdaptiveSelector(Selector):
    """Explore-then-bias adaptive selection.

    Phases:

    1. **warmup** -- until every model has ``warmup`` completions,
       requests are dealt round-robin (the paper's "distributing
       requests among the architectures equally at first");
    2. **biased** -- requests are distributed by deterministic weighted
       round-robin with each model's weight proportional to its
       smoothed goodput ("slowly biasing requests toward the most
       effective choice").  Every model keeps a weight floor of
       ``probe_floor`` of the best, so NeST "tries all models
       periodically" and can re-adapt when the workload shifts -- this
       continued sampling of the slower model is the visible *cost of
       adaptation* in Fig. 5.

    Deterministic by construction: no randomness, so simulation runs
    reproduce exactly.
    """

    def __init__(
        self,
        models: Sequence[str] = (THREADS, EVENTS),
        warmup: int = 4,
        probe_floor: float = 0.08,
        ewma_alpha: float = 0.25,
    ):
        if not models:
            raise ValueError("need at least one concurrency model")
        self.models = list(models)
        self.warmup = warmup
        self.probe_floor = probe_floor
        self.ewma_alpha = ewma_alpha
        self.stats: dict[str, ModelStats] = {m: ModelStats() for m in self.models}
        self._issued: dict[str, int] = {m: 0 for m in self.models}
        self._credit: dict[str, float] = {m: 0.0 for m in self.models}
        self._counter = 0

    # -- policy ---------------------------------------------------------------
    def _weights(self) -> dict[str, float]:
        best = max(self.stats[m].ewma_goodput for m in self.models)
        if best <= 0:
            return {m: 1.0 for m in self.models}
        return {
            m: max(self.stats[m].ewma_goodput, self.probe_floor * best)
            for m in self.models
        }

    def choose(self) -> str:
        self._counter += 1
        # Warmup: equal distribution until every model has evidence.
        unwarm = [m for m in self.models if self.stats[m].completions < self.warmup]
        if unwarm:
            pick = min(unwarm, key=lambda m: self._issued[m])
            self._issued[pick] += 1
            return pick
        # Biased phase: deterministic weighted round-robin (stride-like
        # credit accumulation) by smoothed goodput.
        weights = self._weights()
        total = sum(weights.values())
        for m in self.models:
            self._credit[m] += weights[m]
        pick = max(self.models, key=lambda m: (self._credit[m], m))
        self._credit[pick] -= total
        self._issued[pick] += 1
        return pick

    def report(self, model: str, nbytes: int, elapsed: float) -> None:
        if model not in self.stats:
            raise ValueError(f"unknown model {model!r}")
        self.stats[model].observe(nbytes, elapsed, self.ewma_alpha)

    # -- introspection -----------------------------------------------------------
    def best_model(self) -> str:
        """The model with the highest smoothed goodput so far."""
        return max(
            self.models,
            key=lambda m: (self.stats[m].ewma_goodput, -self.models.index(m)),
        )

    def distribution(self) -> dict[str, int]:
        """Requests issued per model (for experiment reporting)."""
        return dict(self._issued)


class ServerModelSwitcher:
    """Adaptive *server* architecture selection (Fig. 5, live).

    Where :class:`AdaptiveSelector` deals individual transfers across
    executors by measured goodput, the server-architecture choice is
    regime-defining: thread-per-connection collapses at high
    connection counts no matter how good its per-request latency is.
    The switcher is therefore threshold-driven on the live load
    signals -- active connections and transfer queue depth -- with a
    hysteresis band, and only consults measured per-request goodput
    (an embedded :class:`AdaptiveSelector` fed by the server's
    ``observe_request``) in the low-load regime where both
    architectures are viable:

    * ``connections >= high`` (or queue depth >= high): **events** --
      the per-connection thread cost dominates;
    * ``connections <= low``: whichever model has measured better
      (threads until there is evidence);
    * in between: keep the current choice (no flapping).

    Signals are injected as callables so the policy itself stays pure
    and unit-testable; ``interval`` rate-limits signal reads (0
    re-evaluates on every accept).  ``throughput`` (MB/s) is sampled
    into ``last_signals`` for operator visibility alongside the
    decision inputs.

    ``slo_degraded`` is an optional extra signal: when the appliance's
    error budget is burning (see :mod:`repro.obs.slo`), the switcher
    stops consulting per-request goodput and holds the events model --
    the architecture that degrades most gracefully under pressure --
    until the budget recovers.  ``registry`` and ``tracer`` are
    likewise optional: when given, every flip increments
    ``server_model_switch_total{to=...}`` and records an instant
    ``server.model_switch`` span carrying the signal values that
    triggered it, so a trace timeline shows *why* the server changed
    architecture mid-run.
    """

    def __init__(self, connections, queue_depth=None, throughput=None,
                 high: int = 256, low: int = 32, interval: float = 0.25,
                 models: Sequence[str] = (THREADS, EVENTS), clock=None,
                 slo_degraded=None, registry=None, tracer=None):
        import time as _time

        self.connections = connections
        self.queue_depth = queue_depth or (lambda: 0)
        self.throughput = throughput or (lambda: 0.0)
        self.slo_degraded = slo_degraded or (lambda: False)
        self.high = high
        self.low = low
        self.interval = interval
        self.selector = AdaptiveSelector(models=list(models))
        self.clock = clock or _time.monotonic
        self.model = THREADS
        self.flips = 0
        self.last_signals: dict[str, float] = {}
        self._last_eval: float | None = None
        self.tracer = tracer
        self._m_switches = None
        if registry is not None:
            self._m_switches = registry.counter(
                "server_model_switch_total",
                "Server concurrency-architecture switches, by new model.",
                labelnames=("to",))

    def choose(self) -> str:
        """The architecture for the next accepted connection."""
        now = self.clock()
        if (self._last_eval is not None and self.interval > 0
                and now - self._last_eval < self.interval):
            return self.model
        self._last_eval = now
        conns = self.connections()
        depth = self.queue_depth()
        degraded = bool(self.slo_degraded())
        self.last_signals = {
            "connections": conns,
            "queue_depth": depth,
            "throughput_mbps": self.throughput(),
            "slo_degraded": degraded,
        }
        if degraded or conns >= self.high or depth >= self.high:
            pick = EVENTS
        elif conns <= self.low:
            pick = self.selector.best_model()
        else:
            pick = self.model  # hysteresis: hold in the middle band
        if pick != self.model:
            self.flips += 1
            self.model = pick
            self._observe_switch(pick)
        return self.model

    def _observe_switch(self, to: str) -> None:
        if self._m_switches is not None:
            self._m_switches.inc(to=to)
        if self.tracer is not None:
            self.tracer.span("server.model_switch", to=to,
                             **self.last_signals).end()

    def report(self, model: str, nbytes: int, elapsed: float) -> None:
        """Feed one completed request's service time back (the
        low-load regime's evidence)."""
        self.selector.report(model, nbytes, elapsed)


def make_selector(name: str, models: Sequence[str] = (THREADS, EVENTS)) -> Selector:
    """Factory: ``"adaptive"`` or a fixed model name."""
    if name == "adaptive":
        return AdaptiveSelector(models=models)
    if name in ALL_MODELS:
        return FixedSelector(name)
    raise ValueError(f"unknown concurrency selection {name!r}")
