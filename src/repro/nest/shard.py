"""Multi-process shard layer: N appliance workers behind one port.

Python threads share one GIL, so a single NeST process cannot use
multiple cores for request processing no matter which concurrency
architecture it picks.  The shard layer is the multi-core answer
(CASTOR's multi-daemon decomposition, applied to NeST): a
:class:`ShardGroup` spawns N worker *processes*, each a complete
appliance -- its own StorageManager, TransferManager, event loop --
all accepting Chirp on one shared ``SO_REUSEPORT`` port, so the kernel
spreads incoming connections across the workers with no userspace
proxy on the data path.

Each worker owns a namespace shard (``/shard-<i>``, world-writable),
and :func:`shard_for` computes a path's home shard client-side, so a
client that cares which worker holds a file can route itself by
connecting to that worker's *direct* (per-worker HTTP) port; clients
that don't care just use the shared port.

The control plane is deliberately tiny: one pipe per worker carrying
``ready`` at boot, ``health`` request/reply dicts (pid, ports, live
and total connections), and ``stop``.  Workers also treat a closed
pipe as a stop order, so an orphaned worker shuts down instead of
lingering when the parent dies.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import time
import zlib

from repro.nest.config import NestConfig
from repro.obs.log import get_logger

logger = get_logger(__name__)


def shard_for(path: str, shards: int) -> int:
    """Stable shard index for a path.

    Hashes the top-level name component with CRC32 (stable across
    processes and Python versions, unlike ``hash``), so every client
    and every worker agree on a file's home shard.
    """
    if shards <= 0:
        return 0
    name = path.strip("/").split("/", 1)[0]
    return zlib.crc32(name.encode("utf-8")) % shards


def shard_root(index: int) -> str:
    """The namespace directory worker ``index`` owns."""
    return f"/shard-{index}"


def _allocate_port(host: str) -> int:
    """Reserve an ephemeral port number (bind, read, release).

    SO_REUSEPORT listeners must all name the same concrete port, so
    an ephemeral request is resolved once in the parent and the
    number passed to every worker.
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _worker_main(index: int, config: NestConfig, host: str,
                 chirp_port: int, http_port: int, conn) -> None:
    """Worker-process entry: one full appliance plus the control pipe.

    Module-level on purpose -- the spawn start method pickles the
    callable by qualified name.
    """
    from repro.nest.server import NestServer

    # A terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the parent's job (the "stop" order / closed pipe),
    # so the workers must not die mid-drain on the shared SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass
    try:
        server = NestServer(config, host=host,
                            ports={"chirp": chirp_port, "http": http_port})
        server.start()
        root = shard_root(index)
        server.storage.mkdir("admin", root)
        server.storage.acl_set("admin", root, "*", "rliwd")
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"type": "error", "index": index, "error": repr(exc)})
        except (OSError, BrokenPipeError):
            pass
        return
    conn.send({"type": "ready", "index": index, "pid": os.getpid(),
               "ports": dict(server.ports), "shard_root": root})
    try:
        while True:
            if not conn.poll(0.2):
                continue
            msg = conn.recv()
            if msg == "stop":
                break
            if msg == "health":
                total = server.obs.registry.get("nest_connections_total")
                conn.send({
                    "type": "health", "index": index, "pid": os.getpid(),
                    "shard_root": root, "ports": dict(server.ports),
                    "active_connections": server.active_connections(),
                    "connections_total": int(total.total()) if total else 0,
                })
    except (EOFError, OSError):
        pass  # parent died: treat as a stop order
    finally:
        server.stop(drain_timeout=1.0)
        try:
            conn.send({"type": "stopped", "index": index})
        except (OSError, BrokenPipeError):
            pass
        conn.close()


@dataclasses.dataclass
class ShardWorker:
    """Parent-side record of one worker process."""

    index: int
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    http_port: int
    pid: int = 0
    shard_root: str = ""


class ShardGroup:
    """N appliance processes sharing one SO_REUSEPORT Chirp port."""

    def __init__(self, shards: int, config: NestConfig | None = None,
                 host: str = "127.0.0.1", chirp_port: int = 0):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.host = host
        base = config or NestConfig()
        base.validate()
        self._base_config = base
        self.chirp_port = chirp_port or _allocate_port(host)
        self.workers: list[ShardWorker] = []
        self._ctx = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> "ShardGroup":
        """Spawn every worker and wait until all report ready."""
        if self.workers:
            raise RuntimeError("shard group already started")
        for index in range(self.shards):
            # Each worker is a full appliance: shared-port Chirp plus a
            # direct per-worker HTTP port for shard-addressed access.
            # The management endpoint is off -- health flows over the
            # control pipe -- and the event-driven path is on, so one
            # worker carries thousands of connections per core.
            config = dataclasses.replace(
                self._base_config,
                name=f"{self._base_config.name}-shard{index}",
                protocols=("chirp", "http"),
                reuse_port=True,
                management=False,
                concurrency_server=(
                    self._base_config.concurrency_server
                    if self._base_config.concurrency_server != "threaded"
                    else "events"),
                shards=0,
                state_dir=(os.path.join(self._base_config.state_dir,
                                        f"shard-{index}")
                           if self._base_config.state_dir else None),
            )
            parent_conn, child_conn = self._ctx.Pipe()
            http_port = _allocate_port(self.host)
            process = self._ctx.Process(
                target=_worker_main,
                args=(index, config, self.host, self.chirp_port,
                      http_port, child_conn),
                name=f"nest-shard-{index}", daemon=True)
            process.start()
            child_conn.close()
            self.workers.append(ShardWorker(
                index=index, process=process, conn=parent_conn,
                http_port=http_port))
        deadline = time.monotonic() + ready_timeout
        for worker in self.workers:
            remaining = max(deadline - time.monotonic(), 0.1)
            if not worker.conn.poll(remaining):
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} did not become ready")
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} died during startup")
            if msg.get("type") != "ready":
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} failed: "
                    f"{msg.get('error', msg)}")
            worker.pid = msg["pid"]
            worker.shard_root = msg["shard_root"]
            worker.http_port = msg["ports"].get("http", worker.http_port)
        logger.info("shard group up: %d workers on %s:%d",
                    self.shards, self.host, self.chirp_port)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every worker: polite pipe order, then terminate."""
        for worker in self.workers:
            try:
                worker.conn.send("stop")
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(max(deadline - time.monotonic(), 0.1))
            if worker.process.is_alive():
                logger.warning("shard worker %d unresponsive; terminating",
                               worker.index)
                worker.process.terminate()
                worker.process.join(2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers = []

    def __enter__(self) -> "ShardGroup":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def health(self, timeout: float = 5.0) -> list[dict]:
        """One health dict per worker (index, pid, ports, connection
        counts); unresponsive workers report ``{"alive": False}``."""
        for worker in self.workers:
            try:
                worker.conn.send("health")
            except (OSError, BrokenPipeError):
                pass
        reports = []
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            report = {"index": worker.index, "alive": False,
                      "pid": worker.pid}
            remaining = max(deadline - time.monotonic(), 0.05)
            try:
                while worker.conn.poll(remaining):
                    msg = worker.conn.recv()
                    if msg.get("type") == "health":
                        report = dict(msg)
                        report["alive"] = True
                        break
            except (EOFError, OSError):
                pass
            reports.append(report)
        return reports

    def endpoint(self) -> tuple[str, int]:
        """(host, port) of the shared Chirp port."""
        return self.host, self.chirp_port

    def direct_http_endpoint(self, index: int) -> tuple[str, int]:
        """(host, port) of one worker's own HTTP listener (shard-
        addressed access; pair with :func:`shard_for`)."""
        return self.host, self.workers[index].http_port
