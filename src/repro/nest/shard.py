"""Multi-process shard layer: N appliance workers behind one port.

Python threads share one GIL, so a single NeST process cannot use
multiple cores for request processing no matter which concurrency
architecture it picks.  The shard layer is the multi-core answer
(CASTOR's multi-daemon decomposition, applied to NeST): a
:class:`ShardGroup` spawns N worker *processes*, each a complete
appliance -- its own StorageManager, TransferManager, event loop --
all accepting Chirp on one shared ``SO_REUSEPORT`` port, so the kernel
spreads incoming connections across the workers with no userspace
proxy on the data path.

Each worker owns a namespace shard (``/shard-<i>``, world-writable),
and :func:`shard_for` computes a path's home shard client-side, so a
client that cares which worker holds a file can route itself by
connecting to that worker's *direct* (per-worker HTTP) port; clients
that don't care just use the shared port.

The control plane is deliberately tiny: one pipe per worker carrying
``ready`` at boot, ``health`` request/reply dicts (pid, ports, live
and total connections), ``stop``, and periodic unsolicited
``telemetry`` messages -- each worker's MetricsRegistry snapshot plus
its finished spans, shipped every ``telemetry_interval`` seconds.
Workers also treat a closed pipe as a stop order, so an orphaned
worker shuts down instead of lingering when the parent dies.

The parent aggregates what the workers ship: a collector thread
drains the pipes into a per-worker store, and (when the base config
has ``management`` on) a :class:`repro.obs.fleet.FleetManagementEndpoint`
serves the *merged* fleet view -- ``/metrics`` with counters summed
and gauges labelled ``shard="N"``, ``/trace`` as one Chrome document
with a process row per worker, ``/slo`` with each worker's verdict.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import threading
import time
import zlib

from repro.nest.config import NestConfig
from repro.obs.log import get_logger

logger = get_logger(__name__)

#: Parent-side bound on retained span records per worker; the dedupe
#: store evicts oldest-first past this (workers re-ship their whole
#: ring, so anything recent comes straight back).
SPAN_STORE_LIMIT = 8192


def shard_for(path: str, shards: int) -> int:
    """Stable shard index for a path.

    Hashes the top-level name component with CRC32 (stable across
    processes and Python versions, unlike ``hash``), so every client
    and every worker agree on a file's home shard.
    """
    if shards <= 0:
        return 0
    name = path.strip("/").split("/", 1)[0]
    return zlib.crc32(name.encode("utf-8")) % shards


def shard_root(index: int) -> str:
    """The namespace directory worker ``index`` owns."""
    return f"/shard-{index}"


def _allocate_port(host: str) -> int:
    """Reserve an ephemeral port number (bind, read, release).

    SO_REUSEPORT listeners must all name the same concrete port, so
    an ephemeral request is resolved once in the parent and the
    number passed to every worker.
    """
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _worker_main(index: int, config: NestConfig, host: str,
                 chirp_port: int, http_port: int, conn) -> None:
    """Worker-process entry: one full appliance plus the control pipe.

    Module-level on purpose -- the spawn start method pickles the
    callable by qualified name.
    """
    from repro.nest.server import NestServer

    # A terminal Ctrl-C signals the whole foreground process group;
    # shutdown is the parent's job (the "stop" order / closed pipe),
    # so the workers must not die mid-drain on the shared SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (OSError, ValueError):
        pass
    try:
        server = NestServer(config, host=host,
                            ports={"chirp": chirp_port, "http": http_port})
        server.start()
        root = shard_root(index)
        server.storage.mkdir("admin", root)
        server.storage.acl_set("admin", root, "*", "rliwd")
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        try:
            conn.send({"type": "error", "index": index, "error": repr(exc)})
        except (OSError, BrokenPipeError):
            pass
        return
    conn.send({"type": "ready", "index": index, "pid": os.getpid(),
               "ports": dict(server.ports), "shard_root": root})
    interval = max(config.telemetry_interval, 0.05)
    next_ship = time.monotonic() + interval
    try:
        while True:
            if conn.poll(0.2):
                msg = conn.recv()
                if msg == "stop":
                    break
                if msg == "health":
                    total = server.obs.registry.get("nest_connections_total")
                    conn.send({
                        "type": "health", "index": index, "pid": os.getpid(),
                        "shard_root": root, "ports": dict(server.ports),
                        "active_connections": server.active_connections(),
                        "connections_total": int(total.total()) if total else 0,
                    })
            if time.monotonic() >= next_ship:
                _ship_telemetry(server, index, conn)
                next_ship = time.monotonic() + interval
    except (EOFError, OSError):
        pass  # parent died: treat as a stop order
    finally:
        server.stop(drain_timeout=1.0)
        try:
            conn.send({"type": "stopped", "index": index})
        except (OSError, BrokenPipeError):
            pass
        conn.close()


def _ship_telemetry(server, index: int, conn) -> None:
    """One unsolicited telemetry push: SLO-refreshed metrics snapshot
    plus the worker's whole finished-span ring (the parent dedupes by
    span identity, so re-shipping is idempotent)."""
    try:
        if server.slo is not None:
            server.slo.evaluate()
        conn.send({
            "type": "telemetry", "index": index,
            "service": server.config.name, "pid": os.getpid(),
            "metrics": server.obs.registry.snapshot(),
            "spans": [s.to_dict() for s in server.obs.recorder.spans()],
            "slo": (server.slo.report() if server.slo is not None else None),
        })
    except (OSError, BrokenPipeError):
        raise  # pipe gone: the main loop treats this as a stop order
    except Exception:  # noqa: BLE001 - telemetry must never kill a worker
        logger.warning("shard %d: telemetry snapshot failed", index,
                       exc_info=True)


@dataclasses.dataclass
class ShardWorker:
    """Parent-side record of one worker process."""

    index: int
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    http_port: int
    pid: int = 0
    shard_root: str = ""
    #: serialises pipe use between the telemetry collector thread and
    #: request/reply callers (health, stop).
    lock: threading.Lock = dataclasses.field(default_factory=threading.Lock)


class ShardGroup:
    """N appliance processes sharing one SO_REUSEPORT Chirp port."""

    def __init__(self, shards: int, config: NestConfig | None = None,
                 host: str = "127.0.0.1", chirp_port: int = 0):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.host = host
        base = config or NestConfig()
        base.validate()
        self._base_config = base
        self.chirp_port = chirp_port or _allocate_port(host)
        self.workers: list[ShardWorker] = []
        self._ctx = multiprocessing.get_context("spawn")
        #: fleet telemetry aggregated from worker pushes, all guarded
        #: by one lock: shard label -> metrics snapshot / (service,
        #: pid) / span store (insertion-ordered dict for dedupe +
        #: oldest-first eviction) / last SLO report.
        self._telemetry_lock = threading.Lock()
        self._worker_metrics: dict[str, dict] = {}
        self._worker_meta: dict[str, tuple[str, int]] = {}
        self._worker_spans: dict[str, dict[tuple, dict]] = {}
        self._worker_slo: dict[str, dict] = {}
        self._collector_stop = threading.Event()
        self._collector_thread: threading.Thread | None = None
        self.mgmt = None  # FleetManagementEndpoint when management is on

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> "ShardGroup":
        """Spawn every worker and wait until all report ready."""
        if self.workers:
            raise RuntimeError("shard group already started")
        for index in range(self.shards):
            # Each worker is a full appliance: shared-port Chirp plus a
            # direct per-worker HTTP port for shard-addressed access.
            # The management endpoint is off -- health flows over the
            # control pipe -- and the event-driven path is on, so one
            # worker carries thousands of connections per core.
            config = dataclasses.replace(
                self._base_config,
                name=f"{self._base_config.name}-shard{index}",
                protocols=("chirp", "http"),
                reuse_port=True,
                management=False,
                concurrency_server=(
                    self._base_config.concurrency_server
                    if self._base_config.concurrency_server != "threaded"
                    else "events"),
                shards=0,
                state_dir=(os.path.join(self._base_config.state_dir,
                                        f"shard-{index}")
                           if self._base_config.state_dir else None),
            )
            parent_conn, child_conn = self._ctx.Pipe()
            http_port = _allocate_port(self.host)
            process = self._ctx.Process(
                target=_worker_main,
                args=(index, config, self.host, self.chirp_port,
                      http_port, child_conn),
                name=f"nest-shard-{index}", daemon=True)
            process.start()
            child_conn.close()
            self.workers.append(ShardWorker(
                index=index, process=process, conn=parent_conn,
                http_port=http_port))
        deadline = time.monotonic() + ready_timeout
        for worker in self.workers:
            remaining = max(deadline - time.monotonic(), 0.1)
            if not worker.conn.poll(remaining):
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} did not become ready")
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} died during startup")
            if msg.get("type") != "ready":
                self.stop()
                raise RuntimeError(
                    f"shard worker {worker.index} failed: "
                    f"{msg.get('error', msg)}")
            worker.pid = msg["pid"]
            worker.shard_root = msg["shard_root"]
            worker.http_port = msg["ports"].get("http", worker.http_port)
        self._collector_stop.clear()
        self._collector_thread = threading.Thread(
            target=self._collect_loop, name="shard-telemetry", daemon=True)
        self._collector_thread.start()
        if self._base_config.management:
            from repro.obs.fleet import FleetManagementEndpoint

            self.mgmt = FleetManagementEndpoint(
                snapshots=self.fleet_snapshots,
                spans=self.fleet_spans,
                health=self.health,
                slo=self.fleet_slo,
                host=self.host,
                service=f"{self._base_config.name}-fleet",
            ).start()
        logger.info("shard group up: %d workers on %s:%d",
                    self.shards, self.host, self.chirp_port)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every worker: polite pipe order, then terminate.

        The fleet endpoint and the telemetry collector go down first
        (and are joined), so a stopped group leaks no threads -- the
        drain-hygiene contract the single-process server keeps.
        """
        if self.mgmt is not None:
            self.mgmt.stop()
            self.mgmt = None
        self._collector_stop.set()
        if self._collector_thread is not None:
            self._collector_thread.join(timeout=5.0)
            self._collector_thread = None
        for worker in self.workers:
            with worker.lock:
                try:
                    worker.conn.send("stop")
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(max(deadline - time.monotonic(), 0.1))
            if worker.process.is_alive():
                logger.warning("shard worker %d unresponsive; terminating",
                               worker.index)
                worker.process.terminate()
                worker.process.join(2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers = []

    def __enter__(self) -> "ShardGroup":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def health(self, timeout: float = 5.0) -> list[dict]:
        """One health dict per worker (index, pid, ports, connection
        counts); unresponsive workers report ``{"alive": False}``.

        Each worker's request/reply transaction runs under that
        worker's pipe lock so it cannot interleave with the telemetry
        collector; unsolicited telemetry messages read while waiting
        for the reply are ingested, not dropped.
        """
        reports = []
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            report = {"index": worker.index, "alive": False,
                      "pid": worker.pid}
            with worker.lock:
                try:
                    worker.conn.send("health")
                    while True:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not worker.conn.poll(
                                max(remaining, 0.05)):
                            break
                        msg = worker.conn.recv()
                        if self._ingest(msg):
                            continue
                        if isinstance(msg, dict) and msg.get("type") == "health":
                            report = dict(msg)
                            report["alive"] = True
                            break
                except (EOFError, OSError, BrokenPipeError):
                    pass
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # fleet telemetry
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        """Drain unsolicited worker telemetry into the parent store."""
        while not self._collector_stop.wait(0.05):
            for worker in list(self.workers):
                with worker.lock:
                    try:
                        while worker.conn.poll(0):
                            self._ingest(worker.conn.recv())
                    except (EOFError, OSError, BrokenPipeError):
                        pass  # worker gone; stop() reaps it

    def _ingest(self, msg) -> bool:
        """Store one telemetry message; False if it was something else
        (a reply someone is waiting for)."""
        if not isinstance(msg, dict) or msg.get("type") != "telemetry":
            return False
        label = str(msg.get("index", "?"))
        with self._telemetry_lock:
            self._worker_metrics[label] = msg.get("metrics", {})
            self._worker_meta[label] = (
                str(msg.get("service", f"shard{label}")),
                int(msg.get("pid", 0)))
            if msg.get("slo"):
                self._worker_slo[label] = msg["slo"]
            store = self._worker_spans.setdefault(label, {})
            for rec in msg.get("spans", ()):
                key = (rec.get("trace_id"), rec.get("span_id"))
                if key[0] is None or key[1] is None:
                    continue
                store[key] = rec
            overflow = len(store) - SPAN_STORE_LIMIT
            if overflow > 0:
                for key in list(store)[:overflow]:
                    del store[key]
        return True

    def fleet_snapshots(self) -> dict[str, dict]:
        """Latest metrics snapshot per shard label (for merging)."""
        with self._telemetry_lock:
            return dict(self._worker_metrics)

    def fleet_spans(self) -> dict[str, tuple[str, int, list[dict]]]:
        """Per-shard ``(service, pid, span dicts)`` for the merged
        Chrome trace (one process row per worker)."""
        with self._telemetry_lock:
            return {
                label: (meta[0], meta[1],
                        list(self._worker_spans.get(label, {}).values()))
                for label, meta in self._worker_meta.items()
            }

    def fleet_slo(self) -> dict[str, dict]:
        """Latest per-shard SLO report, keyed by shard label."""
        with self._telemetry_lock:
            return dict(self._worker_slo)

    def endpoint(self) -> tuple[str, int]:
        """(host, port) of the shared Chirp port."""
        return self.host, self.chirp_port

    def direct_http_endpoint(self, index: int) -> tuple[str, int]:
        """(host, port) of one worker's own HTTP listener (shard-
        addressed access; pair with :func:`shard_for`)."""
        return self.host, self.workers[index].http_port
