"""GSI-style authentication (toy PKI substitution).

The paper allows "only Grid Security Infrastructure (GSI)
authentication, which is used by Chirp and GridFTP; connections through
the other protocols are allowed only anonymous access" (section 3).
Real GSI rides on X.509 proxy certificates; building an X.509 stack is
out of scope and adds nothing to the behaviours the paper evaluates, so
we substitute a structurally equivalent toy PKI (see DESIGN.md):

* a :class:`CertificateAuthority` holds a secret and issues
  :class:`Credential` objects: a subject name plus an HMAC "signature"
  over it;
* a challenge-response handshake (:class:`GSIContext`) proves the
  client holds the credential's key without revealing it, and the
  server verifies the certificate chain (one HMAC) and the response;
* the authenticated *subject* maps to a NeST user for ACL and lot
  decisions, exactly the role GSI plays in NeST.

Each protocol handler performs its own authentication -- the paper
notes the trust consequence: a devious handler could falsify the
authenticated identity.  We preserve that structure: handlers call
:func:`GSIContext.accept` themselves and stamp ``request.user``.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass


class AuthError(Exception):
    """Authentication failed (bad signature, wrong response, replay)."""


@dataclass(frozen=True)
class Certificate:
    """The public part of a credential: subject + CA signature."""

    subject: str
    issuer: str
    signature: bytes

    def to_bytes(self) -> bytes:
        """Serialize for the wire."""
        return json.dumps(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "signature": self.signature.hex(),
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        """Parse a wire certificate."""
        try:
            obj = json.loads(data)
            return cls(
                subject=obj["subject"],
                issuer=obj["issuer"],
                signature=bytes.fromhex(obj["signature"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise AuthError(f"malformed certificate: {exc}") from exc


@dataclass(frozen=True)
class Credential:
    """A certificate plus its private key (held by the client)."""

    certificate: Certificate
    key: bytes

    @property
    def subject(self) -> str:
        return self.certificate.subject


class CertificateAuthority:
    """Issues credentials and verifies certificates.

    The CA secret doubles as the trust anchor: a certificate is valid
    iff its signature is the CA's HMAC over (subject, derived key).
    The per-subject key is derived from the CA secret so verification
    needs no state.
    """

    def __init__(self, name: str = "NeST CA", secret: bytes | None = None):
        self.name = name
        self._secret = secret if secret is not None else os.urandom(32)

    def _derive_key(self, subject: str) -> bytes:
        return hmac.new(self._secret, b"key:" + subject.encode(), hashlib.sha256).digest()

    def _sign(self, subject: str, key: bytes) -> bytes:
        body = subject.encode() + b"\x00" + key
        return hmac.new(self._secret, b"cert:" + body, hashlib.sha256).digest()

    def issue(self, subject: str) -> Credential:
        """Issue a credential for ``subject``."""
        key = self._derive_key(subject)
        cert = Certificate(
            subject=subject, issuer=self.name, signature=self._sign(subject, key)
        )
        return Credential(certificate=cert, key=key)

    def verify_certificate(self, cert: Certificate) -> bool:
        """Check the certificate was issued by this CA."""
        expected = self._sign(cert.subject, self._derive_key(cert.subject))
        return hmac.compare_digest(expected, cert.signature)


class GSIContext:
    """The challenge-response handshake, usable from either side.

    Protocol (each message is bytes; transports frame them):

    1. client -> server: certificate
    2. server -> client: 16-byte random challenge
    3. client -> server: HMAC(key, challenge)
    4. server: verify certificate + response; authenticated subject
       becomes the NeST user.
    """

    CHALLENGE_SIZE = 16

    def __init__(self, ca: CertificateAuthority):
        self.ca = ca

    # -- client side --------------------------------------------------------
    @staticmethod
    def initiate(credential: Credential) -> bytes:
        """Message 1: the client's certificate."""
        return credential.certificate.to_bytes()

    @staticmethod
    def respond(credential: Credential, challenge: bytes) -> bytes:
        """Message 3: prove possession of the private key."""
        return hmac.new(credential.key, challenge, hashlib.sha256).digest()

    # -- server side --------------------------------------------------------
    def challenge(self) -> bytes:
        """Message 2: a fresh random challenge."""
        return os.urandom(self.CHALLENGE_SIZE)

    def accept(self, cert_bytes: bytes, challenge: bytes, response: bytes) -> str:
        """Verify the exchange; returns the authenticated subject.

        Raises :exc:`AuthError` on any failure.
        """
        cert = Certificate.from_bytes(cert_bytes)
        if not self.ca.verify_certificate(cert):
            raise AuthError(f"certificate for {cert.subject!r} not issued by {self.ca.name}")
        key = self.ca._derive_key(cert.subject)
        expected = hmac.new(key, challenge, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, response):
            raise AuthError(f"challenge response for {cert.subject!r} invalid")
        return cert.subject
