"""The zero-copy fast transfer layer (data-path performance).

Every byte a NeST moves used to pass through Python ``bytes`` objects:
``source.read()`` allocated a fresh chunk, ``sink.write()`` copied it
out, and checksum verification re-read whole files afterwards.  This
module is the shared hot path that removes those costs:

* **file -> socket sends** go through :func:`sendfile` --
  ``os.sendfile`` moves pages kernel-to-kernel without surfacing a
  single byte into Python -- with a chunked-copy fallback for sources
  and sinks that have no usable file descriptor (``BytesIO``-backed
  memory stores, fault-injection wrappers, platforms without
  sendfile);
* **socket -> file receives** (and every other buffered copy) use a
  pooled ``bytearray``/``memoryview`` ring via :class:`BufferPool` and
  ``readinto``, so a steady-state transfer allocates nothing per
  chunk;
* **incremental ``zlib.crc32``** folds into the buffered streaming
  loop, so the Chirp checksum verb, replica verification, and
  durability reconciliation get a checksum of what was just moved for
  free instead of re-reading the file.

Eligibility checks are deliberately *class-level* (``type(stream)``),
never instance ``getattr``: fault-injection wrappers
(:class:`repro.faults.plan.FaultyStream`) forward unknown attributes
to the raw stream via ``__getattr__``, and an instance-level probe
would route I/O around the fault plan.  A wrapped stream therefore
always takes the honest ``read``/``write`` path, where every injected
reset, short read, and stall still fires.

The module keeps plain-integer counters (the cheapest thing the hot
path can afford, same convention as the sim kernel counters);
:func:`register_metrics` exposes them on a
:class:`~repro.obs.metrics.MetricsRegistry` as gauge callbacks so they
appear in ``/metrics`` scrapes and the ``repro stats`` demo.
"""

from __future__ import annotations

import io as _io
import os
import select as _select
import threading
import zlib
from typing import BinaryIO, Optional

__all__ = [
    "BufferPool",
    "FastPathCounters",
    "COUNTERS",
    "DEFAULT_POOL",
    "real_fileno",
    "supports_readinto",
    "sendfile",
    "sendfile_available",
    "copy_stream",
    "stream_crc32",
    "register_metrics",
]

#: Default pooled-buffer size: large enough that syscall overhead
#: amortizes, small enough that a ring of them is cheap to keep.
DEFAULT_BUFFER_BYTES = 256 * 1024

#: Whether this platform has ``os.sendfile`` at all.
sendfile_available = hasattr(os, "sendfile")


class FastPathCounters:
    """Process-wide hot-path counters (plain ints; read via snapshot)."""

    __slots__ = ("sendfile_sends", "sendfile_bytes", "fallback_sends",
                 "fallback_bytes", "crc_folds", "_lock")

    def __init__(self) -> None:
        self.sendfile_sends = 0
        self.sendfile_bytes = 0
        self.fallback_sends = 0
        self.fallback_bytes = 0
        #: buffered chunks whose CRC32 was folded in-stream.
        self.crc_folds = 0
        self._lock = threading.Lock()

    def count_sendfile(self, nbytes: int) -> None:
        with self._lock:
            self.sendfile_sends += 1
            self.sendfile_bytes += nbytes

    def count_fallback(self, nbytes: int, folded_crc: bool) -> None:
        with self._lock:
            self.fallback_sends += 1
            self.fallback_bytes += nbytes
            if folded_crc:
                self.crc_folds += 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "sendfile_sends": self.sendfile_sends,
                "sendfile_bytes": self.sendfile_bytes,
                "fallback_sends": self.fallback_sends,
                "fallback_bytes": self.fallback_bytes,
                "crc_folds": self.crc_folds,
            }


#: The process-wide counters every fast-path helper feeds.
COUNTERS = FastPathCounters()


class BufferPool:
    """A bounded ring of reusable ``bytearray`` transfer buffers.

    ``acquire`` hands out a free buffer (a *hit*) or allocates a fresh
    one when the ring is empty (a *miss*); ``release`` returns it.
    The ring never holds more than ``max_buffers``, so a burst of
    concurrent transfers allocates what it needs and the steady state
    keeps a warm working set.  Thread-safe; buffers are plain
    ``bytearray`` so callers wrap them in ``memoryview`` for
    zero-copy slicing.
    """

    def __init__(self, buffer_bytes: int = DEFAULT_BUFFER_BYTES,
                 max_buffers: int = 32):
        if buffer_bytes < 1:
            raise ValueError("buffer_bytes must be >= 1")
        self.buffer_bytes = int(buffer_bytes)
        self.max_buffers = int(max_buffers)
        self._free: list[bytearray] = []
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.outstanding = 0

    def acquire(self) -> bytearray:
        with self._lock:
            self.outstanding += 1
            if self._free:
                self.hits += 1
                return self._free.pop()
            self.misses += 1
        return bytearray(self.buffer_bytes)

    def release(self, buf: bytearray) -> None:
        with self._lock:
            self.outstanding -= 1
            if (len(buf) == self.buffer_bytes
                    and len(self._free) < self.max_buffers):
                self._free.append(buf)

    def hit_rate(self) -> float:
        """Fraction of acquisitions served from the ring."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "outstanding": self.outstanding,
                "free": len(self._free),
                "hit_rate": self.hits / total if total else 0.0,
            }


#: The pool the live data path shares.
DEFAULT_POOL = BufferPool()


# ---------------------------------------------------------------------------
# stream eligibility
# ---------------------------------------------------------------------------
def real_fileno(stream) -> Optional[int]:
    """The stream's OS file descriptor, or None.

    Class-level lookup first: a wrapper that merely *forwards*
    ``fileno`` through ``__getattr__`` (the fault-injection streams)
    must not be treated as descriptor-backed, or sendfile would move
    bytes behind the fault plan's back.
    """
    if getattr(type(stream), "fileno", None) is None:
        return None
    try:
        return stream.fileno()
    except (OSError, ValueError, _io.UnsupportedOperation):
        return None


def supports_readinto(stream) -> bool:
    """Whether the stream class itself implements ``readinto``
    (see :func:`real_fileno` for why instance probing is wrong here)."""
    return getattr(type(stream), "readinto", None) is not None


# ---------------------------------------------------------------------------
# zero-copy send
# ---------------------------------------------------------------------------
def sendfile(out_fd: int, in_fd: int, count: int,
             timeout: float = 30.0) -> int:
    """One ``os.sendfile`` call of up to ``count`` bytes at the source
    descriptor's current offset; returns bytes moved (0 at EOF).

    Handles a momentarily full socket buffer (``EAGAIN`` on sockets
    carrying a timeout) by waiting for writability rather than
    spinning.  Raises ``OSError`` for descriptors sendfile cannot
    serve -- callers demote the transfer to the buffered path.
    """
    while True:
        try:
            sent = os.sendfile(out_fd, in_fd, None, count)
        except BlockingIOError:
            ready = _select.select([], [out_fd], [], timeout)[1]
            if not ready:
                raise OSError("sendfile: socket not writable "
                              f"within {timeout}s")
            continue
        if sent:
            COUNTERS.count_sendfile(sent)
        return sent


# ---------------------------------------------------------------------------
# pooled buffered copy (with in-stream CRC folding)
# ---------------------------------------------------------------------------
def copy_stream(source: BinaryIO, sink: BinaryIO, length: int = -1, *,
                crc: int = 0, pool: BufferPool | None = None) -> tuple[int, int]:
    """Copy ``length`` bytes (-1: to EOF) through one pooled buffer,
    folding ``zlib.crc32`` into the loop; returns ``(moved, crc)``.

    Uses ``readinto`` when the source class supports it (no per-chunk
    allocation); falls back to ``read`` for wrapped streams so fault
    injection stays on-path.
    """
    pool = pool or DEFAULT_POOL
    buf = pool.acquire()
    view = memoryview(buf)
    use_readinto = supports_readinto(source)
    moved = 0
    try:
        while length < 0 or moved < length:
            want = len(buf) if length < 0 else min(len(buf), length - moved)
            if use_readinto:
                got = source.readinto(view[:want])
                if not got:
                    break
                chunk = view[:got]
            else:
                data = source.read(want)
                if not data:
                    break
                got = len(data)
                chunk = data
            crc = zlib.crc32(chunk, crc)
            sink.write(chunk)
            moved += got
            COUNTERS.count_fallback(got, folded_crc=True)
    finally:
        view.release()
        pool.release(buf)
    return moved, crc & 0xFFFFFFFF


def stream_crc32(source: BinaryIO, length: int = -1, *, crc: int = 0,
                 pool: BufferPool | None = None) -> tuple[int, int]:
    """CRC32 of up to ``length`` bytes (-1: to EOF) read through one
    pooled buffer; returns ``(crc, nbytes)``.  Single pass, zero
    per-chunk allocations for ``readinto``-capable sources."""
    pool = pool or DEFAULT_POOL
    buf = pool.acquire()
    view = memoryview(buf)
    use_readinto = supports_readinto(source)
    nbytes = 0
    try:
        while length < 0 or nbytes < length:
            want = len(buf) if length < 0 else min(len(buf), length - nbytes)
            if use_readinto:
                got = source.readinto(view[:want])
                if not got:
                    break
                crc = zlib.crc32(view[:got], crc)
                nbytes += got
            else:
                data = source.read(want)
                if not data:
                    break
                crc = zlib.crc32(data, crc)
                nbytes += len(data)
    finally:
        view.release()
        pool.release(buf)
    return crc & 0xFFFFFFFF, nbytes


# ---------------------------------------------------------------------------
# metrics exposure
# ---------------------------------------------------------------------------
def register_metrics(registry, pool: BufferPool | None = None) -> None:
    """Expose the fast-path counters and the buffer pool on a metrics
    registry as gauge callbacks (idempotent per registry: re-registering
    the same names returns the existing series)."""
    pool = pool or DEFAULT_POOL
    registry.gauge_callback(
        "nest_fastpath_sendfile_sends", lambda: float(COUNTERS.sendfile_sends),
        "Transfer quanta moved via os.sendfile (zero-copy).")
    registry.gauge_callback(
        "nest_fastpath_sendfile_bytes", lambda: float(COUNTERS.sendfile_bytes),
        "Bytes moved via os.sendfile.")
    registry.gauge_callback(
        "nest_fastpath_fallback_sends", lambda: float(COUNTERS.fallback_sends),
        "Transfer quanta moved via the pooled-buffer fallback.")
    registry.gauge_callback(
        "nest_fastpath_fallback_bytes", lambda: float(COUNTERS.fallback_bytes),
        "Bytes moved via the pooled-buffer fallback.")
    registry.gauge_callback(
        "nest_fastpath_crc_folds", lambda: float(COUNTERS.crc_folds),
        "Buffered chunks whose CRC32 was folded into the stream loop.")
    registry.gauge_callback(
        "nest_buffer_pool_hits", lambda: float(pool.hits),
        "Buffer-pool acquisitions served from the ring.")
    registry.gauge_callback(
        "nest_buffer_pool_misses", lambda: float(pool.misses),
        "Buffer-pool acquisitions that had to allocate.")
    registry.gauge_callback(
        "nest_buffer_pool_hit_rate", pool.hit_rate,
        "Fraction of buffer acquisitions served from the ring.")
