"""Physical-storage backends for the storage manager.

"The storage manager has been designed to virtualize different types of
physical storage" (paper, section 5): the paper's release used the
local filesystem and planned raw disk and memory.  We provide:

* :class:`MemoryStore` -- files held in RAM (fast, hermetic tests);
* :class:`LocalFSStore` -- files in a directory of the real local
  filesystem, with path sandboxing.

A backend stores only bytes; all namespace, ACL, and lot logic lives in
:class:`repro.nest.storage.StorageManager`, which is what lets the
simulated substrate swap in a time-modelled store without touching
policy code.
"""

from __future__ import annotations

import io
import os
import threading
from typing import BinaryIO, Protocol


class DataStore(Protocol):
    """What the storage manager needs from physical storage."""

    def open_read(self, path: str) -> BinaryIO:
        """A readable binary stream of the file's contents."""
        ...

    def open_write(self, path: str, append: bool = False) -> BinaryIO:
        """A writable binary stream (created/truncated unless append)."""
        ...

    def open_update(self, path: str) -> BinaryIO:
        """A seekable read/write stream for block-granular updates."""
        ...

    def delete(self, path: str) -> None:
        """Remove the file's bytes (missing files are ignored)."""
        ...

    def size(self, path: str) -> int:
        """Current byte size (0 if absent)."""
        ...

    def exists(self, path: str) -> bool:
        """Whether any bytes are stored under ``path``."""
        ...


#: Suffix of in-flight atomic-write temp files (swept at recovery).
TEMP_SUFFIX = ".nest-tmp"


class MemoryStore:
    """Bytes in RAM, keyed by path."""

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}
        self._lock = threading.Lock()

    def open_read(self, path: str) -> BinaryIO:
        with self._lock:
            data = bytes(self._files.get(path, b""))
        return io.BytesIO(data)

    def open_write(self, path: str, append: bool = False) -> BinaryIO:
        store = self

        class _Writer(io.BytesIO):
            def close(inner) -> None:
                with store._lock:
                    if append and path in store._files:
                        store._files[path].extend(inner.getvalue())
                    else:
                        store._files[path] = bytearray(inner.getvalue())
                super(_Writer, inner).close()

        return _Writer()

    def open_update(self, path: str) -> BinaryIO:
        store = self
        with self._lock:
            current = bytes(self._files.get(path, b""))

        class _Updater(io.BytesIO):
            def close(inner) -> None:
                with store._lock:
                    store._files[path] = bytearray(inner.getvalue())
                super(_Updater, inner).close()

        buf = _Updater()
        buf.write(current)
        buf.seek(0)
        return buf

    def delete(self, path: str) -> None:
        with self._lock:
            self._files.pop(path, None)

    def size(self, path: str) -> int:
        with self._lock:
            data = self._files.get(path)
            return len(data) if data is not None else 0

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files


class _AtomicWriter:
    """A write stream that lands atomically: bytes go to a same-directory
    temp file; ``close`` fsyncs and ``os.replace``\\ s it onto the final
    name.  A reader (or a recovery pass) therefore sees the old file or
    the new one, never a torn hybrid -- and a process killed mid-PUT
    leaves only a ``.nest-tmp`` orphan, swept at the next recovery.
    """

    def __init__(self, final: str, append: bool = False):
        self._final = final
        self._tmp = final + TEMP_SUFFIX
        self._f = open(self._tmp, "wb")
        if append and os.path.exists(final):
            with open(final, "rb") as src:
                while True:
                    chunk = src.read(1 << 20)
                    if not chunk:
                        break
                    self._f.write(chunk)

    def write(self, data: bytes) -> int:
        return self._f.write(data)

    def flush(self) -> None:
        self._f.flush()

    def close(self) -> None:
        if self._f.closed:
            return
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        os.replace(self._tmp, self._final)

    def __enter__(self) -> "_AtomicWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._f, name)


class LocalFSStore:
    """Bytes in a sandboxed directory of the host filesystem."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _resolve(self, path: str) -> str:
        rel = path.lstrip("/")
        full = os.path.abspath(os.path.join(self.root, rel))
        if not (full == self.root or full.startswith(self.root + os.sep)):
            raise PermissionError(f"path {path!r} escapes the store root")
        return full

    def open_read(self, path: str) -> BinaryIO:
        return open(self._resolve(path), "rb")

    def open_write(self, path: str, append: bool = False) -> BinaryIO:
        full = self._resolve(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        return _AtomicWriter(full, append=append)

    def open_update(self, path: str) -> BinaryIO:
        full = self._resolve(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        if not os.path.exists(full):
            open(full, "wb").close()
        return open(full, "r+b")

    def delete(self, path: str) -> None:
        try:
            os.unlink(self._resolve(path))
        except FileNotFoundError:
            pass

    def size(self, path: str) -> int:
        try:
            return os.path.getsize(self._resolve(path))
        except OSError:
            return 0

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def sweep_temp(self) -> int:
        """Delete orphaned atomic-write temp files (crash leftovers);
        returns how many were removed."""
        swept = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(TEMP_SUFFIX):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        swept += 1
                    except OSError:
                        pass
        return swept
