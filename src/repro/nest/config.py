"""NeST server configuration.

One dataclass gathers every administrator-visible knob so the live
server, the simulated server, and the benches construct servers the
same way.  Defaults mirror the paper's release 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class NestConfig:
    """Administrator-facing configuration for one NeST instance."""

    #: Server name (used in advertisements).
    name: str = "nest"

    #: Protocols to serve.  All five by default, as in the paper.
    protocols: Sequence[str] = ("chirp", "ftp", "gridftp", "http", "nfs")

    #: Scheduling policy: "fcfs" (default), "stride", or "cache-aware".
    scheduling: str = "fcfs"

    #: Proportional shares per protocol class (stride scheduling only),
    #: e.g. {"chirp": 1, "gridftp": 2, "http": 1, "nfs": 1}.
    shares: dict[str, float] = field(default_factory=dict)

    #: Work-conserving stride (the paper's implementation) or the
    #: anticipatory non-work-conserving variant (its future work).
    work_conserving: bool = True

    #: Stride shares keyed by "protocol" (the paper's implementation)
    #: or "user" (its stated per-user extension).
    share_by: str = "protocol"

    #: Concurrency: "adaptive" (default) or a fixed model
    #: ("threads", "processes", "events").
    concurrency: str = "adaptive"

    #: Concurrency models available to the adaptive selector.
    concurrency_models: Sequence[str] = ("threads", "events")

    #: *Server* concurrency architecture -- how accepted connections
    #: are served (distinct from ``concurrency``, which picks the
    #: executor for transfer quanta): "threaded" dedicates one handler
    #: thread per connection (the original design), "events" parks
    #: idle connections in a selector-driven event loop and serves
    #: ready requests from a small bounded worker pool, and "adaptive"
    #: flips between the two per-listener from live MetricsRegistry
    #: signals (Fig. 5: no single architecture wins at all loads).
    concurrency_server: str = "threaded"

    #: Worker threads behind the event-driven path (the whole point:
    #: this bound is independent of the connection count).
    event_workers: int = 8

    #: Adaptive server switching: at/above this many live connections
    #: the per-connection cost of threads dominates -> events.
    server_switch_high: int = 256

    #: Adaptive server switching: at/below this many live connections
    #: the measured per-request goodput picks the model (threads until
    #: the selector has evidence).  Between low and high the switcher
    #: holds its current choice (hysteresis).
    server_switch_low: int = 32

    #: Seconds between adaptive server-model re-evaluations (0
    #: re-evaluates on every accept; tests use that).
    server_switch_interval: float = 0.25

    #: Bind protocol listeners with SO_REUSEPORT so several processes
    #: (the shard layer) can share one port and let the kernel spread
    #: accepted connections across them.
    reuse_port: bool = False

    #: Multi-process shard fan-out used by the shard layer / CLI; 0
    #: runs the classic single-process appliance.
    shards: int = 0

    #: Worker slots for transfer pumping (threads in a pool / event
    #: loop fan-out).
    transfer_workers: int = 8

    #: Bytes moved per proportional-share scheduling quantum.  Small
    #: quanta give fine-grained control; each one costs an arbitration
    #: pass (the Fig. 4 overhead).
    quantum_bytes: int = 16 * 1024

    #: Bytes granted per quantum when a transfer is *alone* -- no other
    #: ready job and no other in-flight quantum.  Large solo grants
    #: amortize the per-quantum scheduling pass; under contention the
    #: manager always falls back to ``quantum_bytes`` so proportional
    #: shares keep their granularity.  Set equal to ``quantum_bytes``
    #: to disable bursting.
    burst_bytes: int = 4 * 1024 * 1024

    #: Total storage capacity managed by this NeST.
    capacity_bytes: int = 10 * (1 << 30)

    #: Require an active lot for writes (the paper's Grid deployment).
    require_lots: bool = False

    #: Lot enforcement: "quota" (paper's implementation) or "nest"
    #: (NeST-managed; the paper's future work).
    lot_enforcement: str = "quota"

    #: Best-effort reclamation policy: "expired-first", "largest-first",
    #: or "lru".
    reclaim_policy: str = "expired-first"

    #: Rights granted to anonymous users on fresh directories.
    anonymous_rights: str = "rl"

    #: If non-zero, the administrator pre-creates a default lot of this
    #: many bytes for "anonymous", so local-protocol clients (NFS,
    #: HTTP, FTP -- which the paper restricts to anonymous access) can
    #: write under ``require_lots`` (paper, §5: admins "can
    #: simultaneously make a set of default lots for users").
    default_anonymous_lot_bytes: int = 0

    #: Assumed kernel buffer-cache size for the gray-box model.
    graybox_cache_bytes: int = 256 * (1 << 20)

    #: Seconds between ClassAd advertisements to the collector.
    advertise_interval: float = 30.0

    #: Serve the observability management endpoint (/metrics, /healthz,
    #: /trace, /ad) next to the protocol listeners.
    management: bool = True

    #: How many recent per-transfer failure causes the transfer manager
    #: retains (each is timestamped; see TransferManager.failures()).
    failure_history: int = 64

    #: Ring size for finished request spans kept for /trace export.
    span_limit: int = 4096

    #: Rolling window (seconds) for the measured-throughput estimate
    #: advertised in the live-health ClassAd.
    health_window: float = 30.0

    #: Evaluate service-level objectives (repro.obs.slo) against this
    #: server's metrics: publishes slo_* gauges, serves /slo on the
    #: management endpoint, and stamps SloDegraded into the ClassAd.
    slo: bool = True

    #: Burn-rate windows (seconds), fast first.  The paper-era
    #: equivalent of "is the appliance meeting its contract *now* and
    #: over the last stretch".
    slo_windows: Sequence[float] = (60.0, 600.0)

    #: Shard workers: seconds between telemetry snapshots shipped over
    #: the control pipe to the parent for fleet-wide aggregation.
    telemetry_interval: float = 0.5

    #: Directory for durable appliance state (metadata journal +
    #: compacted snapshots + restart epoch).  None runs memory-only,
    #: exactly as before durability existed.
    state_dir: str | None = None

    #: fsync the journal on every append (the durable default); False
    #: trades the tail of history for speed, for tests and benches.
    journal_fsync: bool = True

    #: Fold the journal into a compacted snapshot every N records.
    snapshot_every: int = 512

    #: Group commit: how many journal records one flusher may batch
    #: into a single write+fsync.  1 disables batching (one fsync per
    #: record, the pre-group-commit behaviour).
    journal_batch_records: int = 64

    #: Group commit: how long (seconds) the flusher may dally waiting
    #: for co-batching appenders before flushing a non-full batch.
    #: 0 flushes as soon as the flush lock is free; batching then
    #: arises naturally from fsync backpressure under concurrency.
    journal_batch_delay: float = 0.0

    # -- hierarchical storage tiers (repro.tier) -----------------------
    #: Front the local store with a slow cold tier: per-file residency
    #: is journaled, cold reads recall on miss, and the background
    #: policy loop demotes cold data.  Off by default.
    tiering: bool = False

    #: Directory backing the cold tier when ``state_dir`` is set (a
    #: sibling of the fast store); ignored for memory-only servers,
    #: which get a memory-backed cold tier.
    tier_cold_dir: str | None = None

    #: Cold-tier bandwidth (bytes/sec) of the rate-limited backend
    #: standing in for tape/object storage; 0 disables throttling.
    tier_cold_bandwidth: float = 0.0

    #: Cold-tier per-open mount latency (seconds).
    tier_cold_latency: float = 0.0

    #: Migration policy: demote a file untouched for this many seconds.
    tier_demote_after: float = 300.0

    #: Migration policy: never demote files smaller than this.
    tier_min_size: int = 1

    #: Migration policy: never demote files hotter than this (decayed
    #: read rate from the heat tracker).
    tier_heat_ceiling: float = 0.5

    #: Seconds between background migration scans; 0 disables the loop
    #: (scan_once() can still be driven by hand or by tests).
    tier_scan_interval: float = 30.0

    #: Files demoted at most per scan pass.
    tier_max_per_scan: int = 8

    # -- per-file access heat (repro.tier.heat) ------------------------
    #: Half-life (seconds) of the per-file read-heat EWMA.
    heat_halflife: float = 30.0

    #: Bound on tracked paths (coldest evicted beyond this).
    heat_max_files: int = 1024

    #: How many hottest paths get labeled metrics / ClassAd exposure.
    heat_top_files: int = 4

    # -- decentralized autoscaler (repro.tier.autoscale) ---------------
    #: Seconds between autoscaler evaluations when the loop runs.
    autoscale_interval: float = 2.0

    #: Queue depth at/above which this appliance counts as overloaded.
    autoscale_queue_high: float = 4.0

    #: Worst per-protocol error rate counting as overloaded.
    autoscale_error_high: float = 0.05

    #: Request arrival rate (req/s between ticks) counting as overloaded.
    autoscale_rate_high: float = 50.0

    #: Hottest files considered per scale-out action.
    autoscale_files: int = 3

    #: Ceiling on valid replicas per logical file the scaler will build.
    autoscale_max_replicas: int = 3

    #: Replication actions allowed per sliding budget window.
    autoscale_budget: int = 6

    #: Budget window (seconds).
    autoscale_window: float = 60.0

    #: Grace period after acting before the scaler re-evaluates.
    autoscale_cooldown: float = 10.0

    #: Consecutive overloaded ticks required before acting.
    autoscale_hysteresis: int = 2

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.scheduling not in ("fcfs", "stride", "cache-aware"):
            raise ValueError(f"unknown scheduling policy {self.scheduling!r}")
        if self.share_by not in ("protocol", "user"):
            raise ValueError(f"unknown share key {self.share_by!r}")
        if self.lot_enforcement not in ("quota", "nest"):
            raise ValueError(f"unknown lot enforcement {self.lot_enforcement!r}")
        known = {"chirp", "ftp", "gridftp", "http", "nfs", "ibp"}
        unknown = set(self.protocols) - known
        if unknown:
            raise ValueError(f"unknown protocols {sorted(unknown)!r}")
        if self.concurrency_server not in ("threaded", "events", "adaptive"):
            raise ValueError(
                f"unknown server concurrency {self.concurrency_server!r}")
        if self.event_workers < 1:
            raise ValueError("event_workers must be >= 1")
        if self.server_switch_low < 0:
            raise ValueError("server_switch_low must be >= 0")
        if self.server_switch_high < self.server_switch_low:
            raise ValueError(
                "server_switch_high must be >= server_switch_low")
        if self.server_switch_interval < 0:
            raise ValueError("server_switch_interval must be >= 0")
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.transfer_workers < 1:
            raise ValueError("transfer_workers must be >= 1")
        if self.quantum_bytes < 1:
            raise ValueError("quantum_bytes must be >= 1")
        if self.burst_bytes < self.quantum_bytes:
            raise ValueError("burst_bytes must be >= quantum_bytes")
        if self.journal_batch_records < 1:
            raise ValueError("journal_batch_records must be >= 1")
        if self.journal_batch_delay < 0:
            raise ValueError("journal_batch_delay must be >= 0")
        if self.failure_history < 1:
            raise ValueError("failure_history must be >= 1")
        if self.span_limit < 1:
            raise ValueError("span_limit must be >= 1")
        if self.health_window <= 0:
            raise ValueError("health_window must be > 0")
        if not self.slo_windows or any(w <= 0 for w in self.slo_windows):
            raise ValueError("slo_windows must be positive and non-empty")
        if self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be > 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.tier_cold_bandwidth < 0:
            raise ValueError("tier_cold_bandwidth must be >= 0")
        if self.tier_cold_latency < 0:
            raise ValueError("tier_cold_latency must be >= 0")
        if self.tier_demote_after < 0:
            raise ValueError("tier_demote_after must be >= 0")
        if self.tier_min_size < 0:
            raise ValueError("tier_min_size must be >= 0")
        if self.tier_heat_ceiling < 0:
            raise ValueError("tier_heat_ceiling must be >= 0")
        if self.tier_scan_interval < 0:
            raise ValueError("tier_scan_interval must be >= 0")
        if self.tier_max_per_scan < 1:
            raise ValueError("tier_max_per_scan must be >= 1")
        if self.heat_halflife <= 0:
            raise ValueError("heat_halflife must be > 0")
        if self.heat_max_files < 1:
            raise ValueError("heat_max_files must be >= 1")
        if self.heat_top_files < 1:
            raise ValueError("heat_top_files must be >= 1")
        if self.autoscale_interval <= 0:
            raise ValueError("autoscale_interval must be > 0")
        if self.autoscale_queue_high < 0:
            raise ValueError("autoscale_queue_high must be >= 0")
        if self.autoscale_error_high < 0:
            raise ValueError("autoscale_error_high must be >= 0")
        if self.autoscale_rate_high < 0:
            raise ValueError("autoscale_rate_high must be >= 0")
        if self.autoscale_files < 1:
            raise ValueError("autoscale_files must be >= 1")
        if self.autoscale_max_replicas < 1:
            raise ValueError("autoscale_max_replicas must be >= 1")
        if self.autoscale_budget < 1:
            raise ValueError("autoscale_budget must be >= 1")
        if self.autoscale_window <= 0:
            raise ValueError("autoscale_window must be > 0")
        if self.autoscale_cooldown < 0:
            raise ValueError("autoscale_cooldown must be >= 0")
        if self.autoscale_hysteresis < 1:
            raise ValueError("autoscale_hysteresis must be >= 1")
