"""AFS-style access control built on collections of ClassAds.

"Access control is provided within NeST via a generic framework built
on top of collections of ClassAd.  AFS-style access control lists
determine read, write, modify, insert, and other privileges, and the
typical notions of users and groups are maintained." (paper, section 5)

Each directory carries an ACL: a :class:`ClassAdCollection` whose
member ads name a *subject* (a user, ``group:<name>``, or ``*`` for
anyone including anonymous) and a *rights string*.  Permission checks
are constraint queries over the collection, so the policy language is
the ClassAd language itself.

Rights letters (AFS lineage, adapted to the paper's list):

=======  =============================================
``r``    read file data
``w``    write/overwrite file data
``m``    modify metadata (rename, touch)
``i``    insert new files/directories
``d``    delete files/directories
``l``    lookup / list directory contents
``a``    administer (change this ACL)
=======  =============================================

ACLs are enforced "across any and all protocols that NeST supports"
(section 5): the storage manager consults them for every request, and
only Chirp (or another protocol with ACL semantics) can modify them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.classads import ClassAd, ClassAdCollection

#: All recognised rights letters, in canonical order.
ALL_RIGHTS = "rwmidla"


class AclError(ValueError):
    """Malformed rights string or subject."""


@dataclass(frozen=True)
class Rights:
    """An immutable set of rights letters."""

    letters: frozenset[str]

    @classmethod
    def parse(cls, text: str) -> "Rights":
        """Parse a rights string like ``"rl"`` or ``"all"`` / ``"none"``."""
        lowered = text.strip().lower()
        if lowered == "all":
            return cls(frozenset(ALL_RIGHTS))
        if lowered in ("none", ""):
            return cls(frozenset())
        bad = set(lowered) - set(ALL_RIGHTS)
        if bad:
            raise AclError(f"unknown rights letters {sorted(bad)!r}")
        return cls(frozenset(lowered))

    def __contains__(self, letter: str) -> bool:
        return letter in self.letters

    def __str__(self) -> str:
        return "".join(c for c in ALL_RIGHTS if c in self.letters)

    def union(self, other: "Rights") -> "Rights":
        return Rights(self.letters | other.letters)


#: Convenience instances.
ALL = Rights.parse("all")
NONE = Rights.parse("none")
READ_ONLY = Rights.parse("rl")


def _entry_ad(subject: str, rights: Rights) -> ClassAd:
    """Build the ClassAd for one ACL entry."""
    return ClassAd({"Type": "AclEntry", "Subject": subject, "Rights": str(rights)})


@dataclass
class AccessControl:
    """One directory's ACL plus the shared group map.

    ``groups`` maps group names to member users; it is shared across
    the whole server (typical AFS deployment style) and injected by the
    storage manager.
    """

    entries: ClassAdCollection = field(default_factory=ClassAdCollection)
    groups: dict[str, set[str]] = field(default_factory=dict)
    #: Memoized rights per subject set.  The ACL language is evaluated
    #: per *entry change*, not per request: ``set_entry`` clears this,
    #: and group-membership changes alter the subject-set key, so a hit
    #: is always the same pure function of the same inputs.
    _rights_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- management ----------------------------------------------------------
    def set_entry(self, subject: str, rights: Rights | str) -> None:
        """Set (or replace) the rights for ``subject``."""
        if isinstance(rights, str):
            rights = Rights.parse(rights)
        if not subject:
            raise AclError("empty ACL subject")
        self.entries.remove_if(
            lambda ad: str(ad.eval("Subject")).lower() == subject.lower()
        )
        if rights.letters:
            self.entries.add(_entry_ad(subject, rights))
        self._rights_cache.clear()

    def drop_entry(self, subject: str) -> None:
        """Remove ``subject``'s entry entirely."""
        self.set_entry(subject, NONE)

    def listing(self) -> list[tuple[str, str]]:
        """All (subject, rights) pairs, for ``acl_get``."""
        return [
            (str(ad.eval("Subject")), str(ad.eval("Rights"))) for ad in self.entries
        ]

    def copy(self) -> "AccessControl":
        """Per-directory copy sharing the group map (for mkdir inherit)."""
        dup = AccessControl(groups=self.groups)
        for subject, rights in self.listing():
            dup.set_entry(subject, Rights.parse(rights))
        return dup

    # -- checking ----------------------------------------------------------
    def _subjects_for(self, user: str) -> set[str]:
        subjects = {user.lower(), "*"}
        for group, members in self.groups.items():
            if user in members:
                subjects.add(f"group:{group}".lower())
        return subjects

    def rights_of(self, user: str) -> Rights:
        """The union of rights granted to ``user`` by any applicable entry."""
        subjects = self._subjects_for(user)
        key = frozenset(subjects)
        granted = self._rights_cache.get(key)
        if granted is None:
            granted = NONE
            for ad in self.entries:
                if str(ad.eval("Subject")).lower() in subjects:
                    granted = granted.union(Rights.parse(str(ad.eval("Rights"))))
            self._rights_cache[key] = granted
        return granted

    def allows(self, user: str, letter: str) -> bool:
        """True iff ``user`` holds the right ``letter`` here."""
        if letter not in ALL_RIGHTS:
            raise AclError(f"unknown right {letter!r}")
        allowed = letter in self.rights_of(user)
        _count_check(allowed)
        return allowed


def _count_check(allowed: bool) -> None:
    """Process-wide ACL check/denial tally (ACL objects are per
    directory and carry no registry reference)."""
    from repro.obs.metrics import global_registry

    global_registry().counter(
        "repro_acl_checks_total",
        "ACL checks evaluated, by outcome.",
        labelnames=("outcome",),
    ).inc(outcome="allowed" if allowed else "denied")


def default_acl(owner: str, groups: dict[str, set[str]] | None = None,
                anonymous_rights: str = "rl") -> AccessControl:
    """The ACL a fresh directory gets: owner all, anonymous read/lookup.

    Anonymous read access mirrors the paper's deployment, where
    NFS/HTTP/FTP clients are anonymous yet must be able to read staged
    data; administrators can tighten it per directory via Chirp.
    """
    acl = AccessControl(groups=groups if groups is not None else {})
    acl.set_entry(owner, ALL)
    if anonymous_rights:
        acl.set_entry("*", Rights.parse(anonymous_rights))
    return acl
