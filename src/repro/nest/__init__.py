"""NeST: the Grid storage appliance (the paper's primary contribution).

The four major components of Figure 1, plus their supporting policy
modules:

* **protocol layer** -- live socket handlers in
  :mod:`repro.nest.handlers` translate each wire protocol to the common
  request interface of :mod:`repro.protocols.common`;
* **dispatcher** -- :mod:`repro.nest.dispatcher` routes requests:
  transfers to the transfer manager, everything else synchronously to
  the storage manager, and periodically publishes a ClassAd of
  resource/data availability (:mod:`repro.nest.advertise`);
* **storage manager** -- :mod:`repro.nest.storage` virtualizes physical
  storage behind pluggable backends, enforces ACLs
  (:mod:`repro.nest.acl`) and lots (:mod:`repro.nest.lots`);
* **transfer manager** -- :mod:`repro.nest.transfer` moves data between
  protocol connections under pluggable schedulers
  (:mod:`repro.nest.scheduling`: FCFS, proportional-share stride,
  cache-aware) and concurrency models with adaptive selection
  (:mod:`repro.nest.concurrency`).

The schedulers and the adaptive-concurrency policy are *pure* data
structures, shared verbatim between this live server and the simulated
substrate in :mod:`repro.simnest` -- the reproduction's embodiment of
the paper's claim that transfer-manager optimizations apply to every
protocol at once.
"""

from repro.nest.config import NestConfig
from repro.nest.storage import StorageManager
from repro.nest.lots import Lot, LotManager, LotError
from repro.nest.acl import AccessControl, Rights
from repro.nest.auth import CertificateAuthority, Credential, GSIContext

__all__ = [
    "NestConfig",
    "StorageManager",
    "Lot",
    "LotManager",
    "LotError",
    "AccessControl",
    "Rights",
    "CertificateAuthority",
    "Credential",
    "GSIContext",
]
